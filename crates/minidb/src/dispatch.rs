//! The **one compile-and-dispatch path** every estimation entry point
//! flows through.
//!
//! `ESTIMATE DURABILITY …` statements, the positional stored-procedure
//! shims (`mlss_estimate`, `mlss_submit`), and the native
//! [`crate::session::Session`] API all compile their inputs into a
//! [`QuerySpec`] and call [`execute_spec`]: the spec is validated against
//! the model's schema, the model is built from its effective parameters,
//! and the query runs on the driver its options select — the sequential
//! or parallel driver for `Sync`, the shared scheduler for `Async` (with
//! plan derivation deferred to the query's first slice on a cold cache).
//! Synchronous executions append the standard `results` row here, so
//! every front end records identically.
//!
//! [`explain_spec`] resolves the same spec without running it — the
//! engine behind `EXPLAIN ESTIMATE` — and [`show_models`] renders the
//! registry's parameter schemas as rows for `SHOW MODELS`.

use crate::durability::SessionWal;
use crate::engine::{Database, DbError};
use crate::proc::{rankings_schema, results_schema, ModelRegistry, PlanContext, ProcEstimate};
use crate::sql::exec::ExecResult;
use crate::value::Value;
use mlss_core::plan_cache::PlanCache;
use mlss_core::planner::peek_reuse;
use mlss_core::prelude::SimRng;
use mlss_core::ranking::{RaceArm, RaceOutcome, RaceQuery};
use mlss_core::rng::StreamFactory;
use mlss_core::scheduler::{QueryId, Scheduler};
use mlss_core::shard_store::{shard_key, ShardStore};
use mlss_core::spec::{ExecMode, QuerySpec, RankSpec};
use rand::RngExt;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// What executing a spec produced.
pub enum SpecOutcome {
    /// A synchronous run: the estimate, already recorded in `results`.
    Estimated {
        /// Point estimate `τ̂`.
        tau: f64,
        /// The full outcome (variance, steps, roots, plan provenance).
        est: ProcEstimate,
        /// Wall-clock milliseconds the run took.
        millis: i64,
    },
    /// An asynchronous submission: the scheduler query id.
    Submitted {
        /// Scheduler query id (poll/wait/cancel handle).
        id: QueryId,
        /// The RNG seed the query runs under (pinned or drawn).
        seed: u64,
        /// Plan provenance at submit time: `"hit"` (warm plan), `"miss"`
        /// (plan derivation scheduled as the query's first slice), or
        /// `"none"` (SRS).
        plan_source: &'static str,
        /// Shard-store provenance at submit time: `"stored"` (answered
        /// from the store, the query completed instantly), `"warm"`
        /// (the job resumes a stored checkpoint), `"cold"` (store
        /// consulted, no usable entry), or `"none"` (no store).
        shard_reuse: &'static str,
        /// Plan-cache fingerprint of the query family, so completion
        /// paths can feed the observed steps/root regime back into the
        /// width memo (the drift-triggered re-probe policy).
        fingerprint: u64,
    },
}

/// Execute a validated spec through the single dispatch path. `scheduler`
/// is required for `ASYNC` specs; synchronous specs run on the calling
/// thread (sequential, batched, or parallel driver per the options) and
/// record their `results` row before returning. `store` enables the
/// cross-query reuse planner (serve-from-store / warm-start / cold with
/// checkpoint deposit). With `wal`, synchronous rows are journaled
/// before they become visible and ASYNC submissions are journaled with
/// their full durable identity.
#[allow(clippy::too_many_arguments)]
pub fn execute_spec(
    db: &Database,
    models: &ModelRegistry,
    plans: &Arc<PlanCache>,
    store: Option<&Arc<ShardStore>>,
    scheduler: Option<&Scheduler>,
    wal: Option<&SessionWal>,
    spec: &QuerySpec,
    rng: &mut SimRng,
) -> Result<SpecOutcome, DbError> {
    spec.validate().map_err(DbError::from)?;
    match spec.options.mode {
        ExecMode::Sync => {
            let started = Instant::now();
            let (runner, fp, _) = models.build_spec(db, spec)?;
            let ctx = PlanContext {
                cache: Arc::clone(plans),
                fingerprint: fp,
                store: store.map(Arc::clone),
            };
            // A pinned seed runs on the worker-0-canonical stream, so a
            // sync `WITH (seed=…)` run in budget mode is bit-identical
            // to the async submission with the same seed.
            let mut pinned;
            let rng = match spec.options.seed {
                Some(s) => {
                    pinned = StreamFactory::new(s).stream(0);
                    &mut pinned
                }
                None => rng,
            };
            let est = runner.estimate(spec, &ctx, rng)?;
            let millis = started.elapsed().as_millis() as i64;
            record_estimate_row(db, spec, &est, millis, wal)?;
            Ok(SpecOutcome::Estimated {
                tau: est.tau,
                est,
                millis,
            })
        }
        ExecMode::Async => {
            let scheduler = scheduler.ok_or_else(|| {
                DbError::Proc("ASYNC estimation requires a session scheduler".into())
            })?;
            let seed = spec.options.seed.unwrap_or_else(|| rng.random::<u64>());
            let (runner, fp, _) = models.build_spec(db, spec)?;
            let ctx = PlanContext {
                cache: Arc::clone(plans),
                fingerprint: fp,
                store: store.map(Arc::clone),
            };
            let out = runner.submit(scheduler, spec, seed, &ctx)?;
            if let Some(wal) = wal {
                wal.record_async_submit(out.id, spec, seed, out.plan_source, out.shard_reuse);
            }
            Ok(SpecOutcome::Submitted {
                id: out.id,
                seed,
                plan_source: out.plan_source,
                shard_reuse: out.shard_reuse,
                fingerprint: fp,
            })
        }
    }
}

/// Append the standard `results` row for a synchronous estimate. With a
/// journal, the row is WAL-appended **before** the insert (write-ahead:
/// a visible row is always durable).
pub(crate) fn record_estimate_row(
    db: &Database,
    spec: &QuerySpec,
    est: &ProcEstimate,
    millis: i64,
    wal: Option<&SessionWal>,
) -> Result<(), DbError> {
    if let Some(wal) = wal {
        wal.record_result_row(mlss_store::ResultRow {
            model: spec.model.clone(),
            method: spec.method.name().to_string(),
            beta: spec.beta,
            horizon: spec.horizon as i64,
            tau: est.tau,
            variance: est.variance,
            steps: est.steps as i64,
            n_roots: est.n_roots as i64,
            millis,
            plan_source: est.plan_source.to_string(),
            shard_reuse: est.shard_reuse.to_string(),
            tenant: tenant_column(spec).to_string(),
        })?;
    }
    if !db.has_table("results") {
        db.create_table("results", results_schema())?;
    }
    db.insert(
        "results",
        vec![
            spec.model.as_str().into(),
            spec.method.name().into(),
            spec.beta.into(),
            Value::Int(spec.horizon as i64),
            est.tau.into(),
            est.variance.into(),
            Value::Int(est.steps as i64),
            Value::Int(est.n_roots as i64),
            Value::Int(millis),
            est.plan_source.into(),
            est.shard_reuse.into(),
            tenant_column(spec).into(),
        ],
    )?;
    Ok(())
}

/// The `tenant` column value for a spec (`"-"` for tenantless
/// statements, so the column is always populated).
pub(crate) fn tenant_column(spec: &QuerySpec) -> &str {
    spec.options.tenant.as_deref().unwrap_or("-")
}

/// Resolve a spec without running it: the rows `EXPLAIN ESTIMATE …`
/// returns. Derives the level plan through the shared cache (the pilot
/// runs — once — on a cold cache; re-EXPLAINing or executing afterwards
/// hits), applies the `auto` resolution rule, and reports the driver and
/// effective batch width the statement would execute with.
pub fn explain_spec(
    db: &Database,
    models: &ModelRegistry,
    plans: &Arc<PlanCache>,
    store: Option<&Arc<ShardStore>>,
    scheduler: Option<&Scheduler>,
    spec: &QuerySpec,
    rng: &mut SimRng,
) -> Result<Vec<(String, String)>, DbError> {
    spec.validate().map_err(DbError::from)?;
    let (runner, fp, params) = models.build_spec(db, spec)?;
    let ctx = PlanContext {
        cache: Arc::clone(plans),
        fingerprint: fp,
        store: store.map(Arc::clone),
    };
    let mut pinned;
    let rng = match spec.options.seed {
        Some(s) => {
            pinned = StreamFactory::new(s).stream(0);
            &mut pinned
        }
        None => rng,
    };
    let res = runner.resolve_plan(spec, &ctx, rng)?;

    let asynchronous = spec.options.mode == ExecMode::Async;
    let mut rows: Vec<(String, String)> = Vec::new();
    let mut push = |k: &str, v: String| rows.push((k.to_string(), v));
    push(
        "statement",
        format!(
            "ESTIMATE DURABILITY ({})",
            if asynchronous { "async" } else { "sync" }
        ),
    );
    push("model", spec.model.clone());
    push(
        "params",
        params
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(", "),
    );
    push("beta", format!("{}", spec.beta));
    push("horizon", format!("{}", spec.horizon));
    push("target_re", format!("{}", spec.target_re));
    push("method", spec.method.name().to_string());
    push("resolved_method", res.resolved.name().to_string());
    match res.resolved.plan() {
        Some(plan) => {
            push("levels", format!("{}", plan.num_levels()));
            push(
                "level_plan",
                format!(
                    "[{}]",
                    plan.interior()
                        .iter()
                        .map(|b| format!("{b:.4}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            );
            push("tau_hint", format!("{}", res.tau_hint));
        }
        None => {
            push("levels", "-".into());
            push("level_plan", "none".into());
        }
    }
    push("plan_cache", res.plan_source.to_string());
    // The reuse planner's verdict, previewed against the live store.
    // `peek_reuse` reads without side effects — no hit/miss counters,
    // no LRU touch, no shard clone — so EXPLAIN never perturbs SHOW
    // DIAGNOSTICS or the store's eviction order. The replayability rule
    // mirrors the execution paths': pinned seeds only reuse on the
    // synchronous sequential driver.
    push(
        "reuse",
        match store {
            None => "off".into(),
            Some(s) => {
                let key = shard_key(fp, res.resolved.name(), res.resolved.plan());
                let replayable = !asynchronous && spec.options.threads <= 1;
                peek_reuse(s, &key, spec.target_re, spec.options.seed, replayable).describe(fp)
            }
        },
    );
    push(
        "plan_pilot",
        match (res.plan_source, asynchronous) {
            ("none", _) => "not needed".into(),
            ("hit", _) => "cached".into(),
            (_, true) => "scheduled as the query's first slice".into(),
            (_, false) => "inline before the run".into(),
        },
    );
    let width = if asynchronous {
        spec.options
            .batch_width
            .or_else(|| scheduler.map(|s| s.config().batch_width))
            .unwrap_or(0)
    } else {
        spec.options.batch_width.unwrap_or(0)
    };
    push(
        "driver",
        if asynchronous {
            match scheduler {
                Some(s) => format!("scheduler(workers={})", s.config().workers),
                None => "scheduler (no session pool attached)".into(),
            }
        } else if spec.options.threads > 1 {
            format!("parallel(threads={})", spec.options.threads)
        } else {
            "sequential".into()
        },
    );
    push(
        "batch_width",
        if width == 0 {
            "0 (scalar)".into()
        } else if width == mlss_core::width::AUTO_WIDTH {
            "auto".into()
        } else {
            format!("{width}")
        },
    );
    // The width policy's resolution: what the statement will actually
    // launch at, and where that number came from. For `auto` the probe
    // (or its memoized winner) runs right here, so EXPLAIN warms the
    // width memo exactly like executing would.
    let default_width = if asynchronous {
        scheduler.map(|s| s.config().batch_width).unwrap_or(0)
    } else {
        0
    };
    let (resolved_width, width_src) = runner.resolve_width(spec, &ctx, default_width);
    push(
        "width",
        if width == mlss_core::width::AUTO_WIDTH {
            format!("auto -> {resolved_width} ({width_src})")
        } else {
            format!("{resolved_width} ({width_src})")
        },
    );
    push(
        "seed",
        match spec.options.seed {
            Some(s) => format!("{s}"),
            None => "from session stream".into(),
        },
    );
    if asynchronous {
        push("priority", format!("{}", spec.options.priority));
    }
    Ok(rows)
}

/// What executing a rank spec produced.
pub enum RankOutcome {
    /// A synchronous race: final standings, already recorded — one
    /// `rankings` row per arm plus one standard `results` row per arm.
    Ranked {
        /// The sorted standings, total steps, and rounds raced.
        outcome: RaceOutcome,
        /// Wall-clock milliseconds the race took.
        millis: i64,
    },
    /// An asynchronous submission: the whole race runs as **one**
    /// sliceable scheduler query (each slice advances one arm by one
    /// round budget), so it time-slices, pauses, and fair-shares like
    /// any other scheduled work.
    Submitted {
        /// Scheduler query id (poll/wait/cancel handle).
        id: QueryId,
        /// The race's base seed (pinned or drawn); arm `i` runs under
        /// [`arm_seed`]`(seed, i)`.
        seed: u64,
        /// Where the caller reads the standings once the race is done
        /// (the scheduler itself only hands back the leader's
        /// [`mlss_core::estimate::Estimate`]).
        handle: Arc<Mutex<Option<RaceOutcome>>>,
        /// Per-arm plan-cache provenance at submit time, parallel to
        /// [`RankSpec::labels`] (`"hit"`, `"miss"`, or `"none"`).
        plan_sources: Vec<&'static str>,
    },
}

/// Arm `idx`'s pinned RNG seed, derived from the race's base seed. The
/// salt (the 64-bit golden-ratio constant, scaled by the 1-based arm
/// index) decorrelates sibling arms while keeping the whole race a pure
/// function of one seed — same base seed, same standings, bit for bit.
pub fn arm_seed(base: u64, idx: usize) -> u64 {
    base ^ (idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Execute a `RANK BY` spec through the single dispatch path. Every arm
/// is compiled by the same model-registry construction an `ESTIMATE` of
/// that arm would use — plan cache shared (same-shape arms share one
/// pilot, single-flight), shard store deliberately **not** consulted:
/// the race's pooled per-arm shards are its state, and standings must
/// not depend on what earlier queries deposited. `Sync` drives the race
/// to completion on the calling thread and records the standings;
/// `Async` submits the race as one sliceable query under the spec's
/// priority and tenant.
#[allow(clippy::too_many_arguments)]
pub fn execute_rank(
    db: &Database,
    models: &ModelRegistry,
    plans: &Arc<PlanCache>,
    scheduler: Option<&Scheduler>,
    wal: Option<&SessionWal>,
    rank: &RankSpec,
    rng: &mut SimRng,
) -> Result<RankOutcome, DbError> {
    rank.validate().map_err(DbError::from)?;
    let asynchronous = rank.options.mode == ExecMode::Async;
    let seed = rank.options.seed.unwrap_or_else(|| rng.random::<u64>());
    let default_width = if asynchronous {
        scheduler.map(|s| s.config().batch_width).unwrap_or(0)
    } else {
        0
    };
    let mut arms = Vec::with_capacity(rank.arms.len());
    let mut plan_sources = Vec::with_capacity(rank.arms.len());
    for (i, (spec, label)) in rank.arms.iter().zip(&rank.labels).enumerate() {
        let (runner, fp, _) = models.build_spec(db, spec)?;
        let ctx = PlanContext {
            cache: Arc::clone(plans),
            fingerprint: fp,
            store: None,
        };
        let (job, plan_source) = runner.rank_arm(spec, arm_seed(seed, i), &ctx, default_width)?;
        arms.push(RaceArm {
            label: label.clone(),
            job,
        });
        plan_sources.push(plan_source);
    }
    let mut race = RaceQuery::new(arms, rank.race_config());
    if asynchronous {
        let scheduler = scheduler
            .ok_or_else(|| DbError::Proc("ASYNC ranking requires a session scheduler".into()))?;
        let tenant = rank
            .options
            .tenant
            .as_deref()
            .map(|name| scheduler.ensure_tenant(name));
        let handle = race.outcome_handle();
        let id = scheduler.submit_query_as(Box::new(race), rank.options.priority, tenant);
        Ok(RankOutcome::Submitted {
            id,
            seed,
            handle,
            plan_sources,
        })
    } else {
        let started = Instant::now();
        let outcome = race.run_to_completion();
        let millis = started.elapsed().as_millis() as i64;
        record_rank_rows(db, rank, &plan_sources, &outcome, millis, wal)?;
        Ok(RankOutcome::Ranked { outcome, millis })
    }
}

/// Record a finished race: one standard `results` row per arm (journaled
/// like any estimate — the durable per-arm provenance) plus one
/// `rankings` standings row per arm, in standings order. The `rankings`
/// table itself is **not** WAL-journaled: standings are derivable from
/// the journaled per-arm rows, and re-racing after recovery would
/// re-spend the budget the journal exists to save.
pub(crate) fn record_rank_rows(
    db: &Database,
    rank: &RankSpec,
    plan_sources: &[&'static str],
    outcome: &RaceOutcome,
    millis: i64,
    wal: Option<&SessionWal>,
) -> Result<(), DbError> {
    for standing in &outcome.standings {
        let idx = rank
            .labels
            .iter()
            .position(|l| l == &standing.label)
            .ok_or_else(|| DbError::Proc(format!("unknown race arm `{}`", standing.label)))?;
        let est = ProcEstimate {
            tau: standing.estimate.tau,
            variance: standing.estimate.variance,
            steps: standing.estimate.steps,
            n_roots: standing.estimate.n_roots,
            plan_source: plan_sources.get(idx).copied().unwrap_or("none"),
            shard_reuse: "none",
        };
        record_estimate_row(db, &rank.arms[idx], &est, millis, wal)?;
    }
    if !db.has_table("rankings") {
        db.create_table("rankings", rankings_schema())?;
    }
    let tenant = rank.options.tenant.as_deref().unwrap_or("-");
    for (pos, s) in outcome.standings.iter().enumerate() {
        db.insert(
            "rankings",
            vec![
                Value::Int(pos as i64 + 1),
                s.label.as_str().into(),
                s.estimate.tau.into(),
                s.ci_lo.into(),
                s.ci_hi.into(),
                // 0-based round the arm froze after; -1 = raced to the cap.
                Value::Int(s.frozen_at.map(|r| r as i64).unwrap_or(-1)),
                s.reason.as_str().into(),
                Value::Int(s.estimate.steps as i64),
                tenant.into(),
            ],
        )?;
    }
    Ok(())
}

/// The standings result rows a finished race renders — shared by the
/// sync `RANK BY` response and the serving layer's poll of an ASYNC
/// race.
pub fn standings_rows(outcome: &RaceOutcome) -> ExecResult {
    ExecResult::Rows {
        columns: vec![
            "rank".into(),
            "arm".into(),
            "tau".into(),
            "ci_lo".into(),
            "ci_hi".into(),
            "frozen_round".into(),
            "reason".into(),
            "steps".into(),
        ],
        rows: outcome
            .standings
            .iter()
            .enumerate()
            .map(|(pos, s)| {
                vec![
                    Value::Int(pos as i64 + 1),
                    s.label.as_str().into(),
                    s.estimate.tau.into(),
                    s.ci_lo.into(),
                    s.ci_hi.into(),
                    Value::Int(s.frozen_at.map(|r| r as i64).unwrap_or(-1)),
                    s.reason.as_str().into(),
                    Value::Int(s.estimate.steps as i64),
                ]
            })
            .collect(),
    }
}

/// Resolve a rank spec without racing it: the rows `EXPLAIN ESTIMATE …
/// RANK BY …` returns. Each arm's plan is derived through the shared
/// cache exactly as [`explain_spec`] does (the pilot runs — once per
/// distinct query family — on a cold cache; same-shape arms hit), plus
/// the race's boundary-test parameters and its worst-case budget model.
pub fn explain_rank(
    db: &Database,
    models: &ModelRegistry,
    plans: &Arc<PlanCache>,
    scheduler: Option<&Scheduler>,
    rank: &RankSpec,
    rng: &mut SimRng,
) -> Result<Vec<(String, String)>, DbError> {
    rank.validate().map_err(DbError::from)?;
    let asynchronous = rank.options.mode == ExecMode::Async;
    let mut rows: Vec<(String, String)> = Vec::new();
    let mut push = |k: &str, v: String| rows.push((k.to_string(), v));
    push(
        "statement",
        format!(
            "ESTIMATE DURABILITY … RANK BY ({})",
            if asynchronous { "async" } else { "sync" }
        ),
    );
    push("arms", format!("{}", rank.arms.len()));
    push("top_k", format!("{}", rank.top_k));
    push("confidence", format!("{}", rank.confidence));
    push("rounds", format!("{}", rank.max_rounds));
    push("round_budget", format!("{}", rank.round_budget));
    // Worst case: every arm races every round. The boundary test exists
    // to freeze arms far earlier than this.
    push(
        "budget_worst_case",
        format!(
            "{} g invocations ({} arms x {} rounds x {})",
            rank.round_budget as u128 * rank.arms.len() as u128 * rank.max_rounds as u128,
            rank.arms.len(),
            rank.max_rounds,
            rank.round_budget,
        ),
    );
    let mut fingerprints: Vec<u64> = Vec::new();
    for (i, (spec, label)) in rank.arms.iter().zip(&rank.labels).enumerate() {
        let (runner, fp, _) = models.build_spec(db, spec)?;
        let ctx = PlanContext {
            cache: Arc::clone(plans),
            fingerprint: fp,
            store: None,
        };
        let res = runner.resolve_plan(spec, &ctx, rng)?;
        if !fingerprints.contains(&fp) {
            fingerprints.push(fp);
        }
        push(
            &format!("arm.{i}"),
            format!(
                "{label} (method={}, plan_cache={})",
                res.resolved.name(),
                res.plan_source
            ),
        );
    }
    push(
        "shared_pilots",
        format!(
            "{} arms over {} distinct plan famil{}",
            rank.arms.len(),
            fingerprints.len(),
            if fingerprints.len() == 1 { "y" } else { "ies" }
        ),
    );
    push(
        "shard_reuse",
        "off (race arms pool their own shards)".into(),
    );
    push(
        "driver",
        if asynchronous {
            match scheduler {
                Some(s) => format!(
                    "scheduler(workers={}), one sliceable race query",
                    s.config().workers
                ),
                None => "scheduler (no session pool attached)".into(),
            }
        } else {
            "sequential race loop (same slice order as the scheduler)".into()
        },
    );
    push(
        "seed",
        match rank.options.seed {
            Some(s) => format!("{s} (arm i runs under seed ^ (i+1)*golden)"),
            None => "from session stream".into(),
        },
    );
    if asynchronous {
        push("priority", format!("{}", rank.options.priority));
    }
    Ok(rows)
}

/// The `SHOW MODELS` catalog: one row per declared parameter of every
/// registered model.
pub fn show_models(models: &ModelRegistry) -> ExecResult {
    let mut rows = Vec::new();
    for schema in models.schemas() {
        for p in &schema.params {
            rows.push(vec![
                Value::Text(schema.name.to_string()),
                Value::Text(p.name.to_string()),
                Value::Text(p.ty.name().to_string()),
                Value::Float(p.default),
                Value::Float(p.min),
                Value::Float(p.max),
                Value::Text(p.doc.to_string()),
            ]);
        }
    }
    ExecResult::Rows {
        columns: vec![
            "model".into(),
            "param".into(),
            "type".into(),
            "default".into(),
            "min".into(),
            "max".into(),
            "doc".into(),
        ],
        rows,
    }
}
