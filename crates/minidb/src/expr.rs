//! A small expression tree for filters and computed columns.
//!
//! The mini-DBMS exposes a programmatic query API (no SQL parser); this
//! module is its `WHERE` clause: column references, literals, comparisons,
//! boolean connectives, and arithmetic.

use crate::schema::Schema;
use crate::value::Value;
use std::cmp::Ordering;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Arithmetic operators (numeric only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// An expression over a row.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference by name.
    Col(String),
    /// Literal value.
    Lit(Value),
    /// Comparison.
    Cmp(Box<Expr>, CmpOp, Box<Expr>),
    /// Logical AND.
    And(Box<Expr>, Box<Expr>),
    /// Logical OR.
    Or(Box<Expr>, Box<Expr>),
    /// Logical NOT.
    Not(Box<Expr>),
    /// Arithmetic.
    Arith(Box<Expr>, ArithOp, Box<Expr>),
}

/// Expression evaluation error.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprError {
    /// Unknown column name.
    UnknownColumn(String),
    /// Operator applied to incompatible types.
    TypeError(String),
}

impl std::fmt::Display for ExprError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExprError::UnknownColumn(c) => write!(f, "unknown column '{c}'"),
            ExprError::TypeError(m) => write!(f, "type error: {m}"),
        }
    }
}

impl std::error::Error for ExprError {}

/// Column reference helper.
pub fn col(name: impl Into<String>) -> Expr {
    Expr::Col(name.into())
}

/// Literal helper.
pub fn lit(v: impl Into<Value>) -> Expr {
    Expr::Lit(v.into())
}

impl Expr {
    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Eq, Box::new(other))
    }

    /// `self <> other`.
    pub fn ne(self, other: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Ne, Box::new(other))
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Lt, Box::new(other))
    }

    /// `self <= other`.
    pub fn le(self, other: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Le, Box::new(other))
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Gt, Box::new(other))
    }

    /// `self >= other`.
    pub fn ge(self, other: Expr) -> Expr {
        Expr::Cmp(Box::new(self), CmpOp::Ge, Box::new(other))
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// `self + other`.
    #[allow(clippy::should_implement_trait)] // DSL builder, deliberately by-value
    pub fn add(self, other: Expr) -> Expr {
        Expr::Arith(Box::new(self), ArithOp::Add, Box::new(other))
    }

    /// `self - other`.
    #[allow(clippy::should_implement_trait)] // DSL builder, deliberately by-value
    pub fn sub(self, other: Expr) -> Expr {
        Expr::Arith(Box::new(self), ArithOp::Sub, Box::new(other))
    }

    /// `self * other`.
    #[allow(clippy::should_implement_trait)] // DSL builder, deliberately by-value
    pub fn mul(self, other: Expr) -> Expr {
        Expr::Arith(Box::new(self), ArithOp::Mul, Box::new(other))
    }

    /// `self / other`.
    #[allow(clippy::should_implement_trait)] // DSL builder, deliberately by-value
    pub fn div(self, other: Expr) -> Expr {
        Expr::Arith(Box::new(self), ArithOp::Div, Box::new(other))
    }

    /// Evaluate against a row.
    pub fn eval(&self, schema: &Schema, row: &[Value]) -> Result<Value, ExprError> {
        match self {
            Expr::Col(name) => {
                let idx = schema
                    .index_of(name)
                    .ok_or_else(|| ExprError::UnknownColumn(name.clone()))?;
                Ok(row[idx].clone())
            }
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Cmp(a, op, b) => {
                let va = a.eval(schema, row)?;
                let vb = b.eval(schema, row)?;
                // SQL three-valued logic: comparisons with NULL are NULL.
                if va.is_null() || vb.is_null() {
                    return Ok(Value::Null);
                }
                let ord = va.cmp_sql(&vb);
                let res = match op {
                    CmpOp::Eq => ord == Ordering::Equal,
                    CmpOp::Ne => ord != Ordering::Equal,
                    CmpOp::Lt => ord == Ordering::Less,
                    CmpOp::Le => ord != Ordering::Greater,
                    CmpOp::Gt => ord == Ordering::Greater,
                    CmpOp::Ge => ord != Ordering::Less,
                };
                Ok(Value::Bool(res))
            }
            Expr::And(a, b) => {
                let va = a.eval(schema, row)?;
                let vb = b.eval(schema, row)?;
                Ok(bool3_and(va, vb))
            }
            Expr::Or(a, b) => {
                let va = a.eval(schema, row)?;
                let vb = b.eval(schema, row)?;
                // A OR B = NOT(NOT A AND NOT B).
                Ok(bool3_not(bool3_and(bool3_not(va), bool3_not(vb))))
            }
            Expr::Not(a) => Ok(bool3_not(a.eval(schema, row)?)),
            Expr::Arith(a, op, b) => {
                let va = a.eval(schema, row)?;
                let vb = b.eval(schema, row)?;
                if va.is_null() || vb.is_null() {
                    return Ok(Value::Null);
                }
                match (va.as_i64(), vb.as_i64()) {
                    (Some(x), Some(y)) if *op != ArithOp::Div => Ok(Value::Int(match op {
                        ArithOp::Add => x.wrapping_add(y),
                        ArithOp::Sub => x.wrapping_sub(y),
                        ArithOp::Mul => x.wrapping_mul(y),
                        ArithOp::Div => unreachable!(),
                    })),
                    _ => {
                        let x = va.as_f64().ok_or_else(|| {
                            ExprError::TypeError("arithmetic needs numeric operands".into())
                        })?;
                        let y = vb.as_f64().ok_or_else(|| {
                            ExprError::TypeError("arithmetic needs numeric operands".into())
                        })?;
                        Ok(Value::Float(match op {
                            ArithOp::Add => x + y,
                            ArithOp::Sub => x - y,
                            ArithOp::Mul => x * y,
                            ArithOp::Div => x / y,
                        }))
                    }
                }
            }
        }
    }

    /// Evaluate as a filter predicate: NULL counts as false (SQL `WHERE`).
    pub fn matches(&self, schema: &Schema, row: &[Value]) -> Result<bool, ExprError> {
        match self.eval(schema, row)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            other => Err(ExprError::TypeError(format!(
                "filter must be boolean, got {other}"
            ))),
        }
    }
}

fn bool3_and(a: Value, b: Value) -> Value {
    use Value::*;
    match (a, b) {
        (Bool(false), _) | (_, Bool(false)) => Bool(false),
        (Bool(true), Bool(true)) => Bool(true),
        _ => Null,
    }
}

fn bool3_not(a: Value) -> Value {
    match a {
        Value::Bool(b) => Value::Bool(!b),
        _ => Value::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, Schema};
    use crate::value::DataType::*;

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("id", Int),
            ColumnDef::new("price", Float).nullable(),
            ColumnDef::new("name", Text),
        ])
        .unwrap()
    }

    fn row() -> Vec<Value> {
        vec![Value::Int(7), Value::Float(12.5), "abc".into()]
    }

    #[test]
    fn comparisons() {
        let s = schema();
        let r = row();
        assert_eq!(
            col("id").ge(lit(7i64)).eval(&s, &r).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            col("price").lt(lit(10.0)).eval(&s, &r).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            col("name").eq(lit("abc")).eval(&s, &r).unwrap(),
            Value::Bool(true)
        );
        // Cross-type numeric comparison.
        assert_eq!(
            col("id").lt(lit(7.5)).eval(&s, &r).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn null_three_valued_logic() {
        let s = schema();
        let r = vec![Value::Int(1), Value::Null, "x".into()];
        // NULL comparison → NULL → filter false.
        let e = col("price").gt(lit(0.0));
        assert_eq!(e.eval(&s, &r).unwrap(), Value::Null);
        assert!(!e.matches(&s, &r).unwrap());
        // false AND NULL = false; true AND NULL = NULL.
        let f = lit(false).and(col("price").gt(lit(0.0)));
        assert_eq!(f.eval(&s, &r).unwrap(), Value::Bool(false));
        let t = lit(true).and(col("price").gt(lit(0.0)));
        assert_eq!(t.eval(&s, &r).unwrap(), Value::Null);
        // true OR NULL = true.
        let o = lit(true).or(col("price").gt(lit(0.0)));
        assert_eq!(o.eval(&s, &r).unwrap(), Value::Bool(true));
    }

    #[test]
    fn arithmetic() {
        let s = schema();
        let r = row();
        assert_eq!(
            col("id").add(lit(3i64)).eval(&s, &r).unwrap(),
            Value::Int(10)
        );
        assert_eq!(
            col("price").mul(lit(2.0)).eval(&s, &r).unwrap(),
            Value::Float(25.0)
        );
        // Integer division promotes to float.
        assert_eq!(
            col("id").div(lit(2i64)).eval(&s, &r).unwrap(),
            Value::Float(3.5)
        );
    }

    #[test]
    fn errors() {
        let s = schema();
        let r = row();
        assert!(matches!(
            col("missing").eval(&s, &r),
            Err(ExprError::UnknownColumn(_))
        ));
        assert!(matches!(
            col("name").add(lit(1i64)).eval(&s, &r),
            Err(ExprError::TypeError(_))
        ));
        assert!(matches!(
            col("id").matches(&s, &r),
            Err(ExprError::TypeError(_))
        ));
    }
}
