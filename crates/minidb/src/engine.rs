//! The database engine: a catalog of tables behind a reader-writer lock.

use crate::schema::Schema;
use crate::table::{Table, TableError};
use crate::value::Value;
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// Engine-level errors.
#[derive(Debug)]
pub enum DbError {
    /// Referenced table does not exist.
    NoSuchTable(String),
    /// Table already exists.
    TableExists(String),
    /// Table-level failure.
    Table(TableError),
    /// Stored-procedure failure (runtime error inside a known procedure).
    Proc(String),
    /// No stored procedure registered under this name.
    UnknownProc(String),
    /// A stored procedure was called with the wrong number of arguments.
    ProcArity {
        /// Procedure name.
        proc: String,
        /// Human-readable expected arity (e.g. `"5..=7"`).
        expected: String,
        /// Number of arguments actually supplied.
        got: usize,
    },
    /// A stored-procedure argument had the wrong type.
    ProcArgType {
        /// Procedure name.
        proc: String,
        /// Zero-based argument index.
        index: usize,
        /// Expected SQL-facing type name (e.g. `"text"`).
        expected: &'static str,
    },
    /// A malformed estimation query spec: the typed
    /// [`mlss_core::spec::SpecError`] taxonomy, carrying a byte span
    /// when the spec came from an `ESTIMATE` statement.
    Spec(mlss_core::spec::SpecError),
    /// Persistence failure.
    Io(std::io::Error),
    /// Corrupt persisted data.
    Corrupt(String),
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::NoSuchTable(t) => write!(f, "no such table '{t}'"),
            DbError::TableExists(t) => write!(f, "table '{t}' already exists"),
            DbError::Table(e) => write!(f, "{e}"),
            DbError::Proc(m) => write!(f, "stored procedure error: {m}"),
            DbError::UnknownProc(p) => write!(f, "no stored procedure '{p}'"),
            DbError::ProcArity {
                proc,
                expected,
                got,
            } => write!(
                f,
                "procedure '{proc}' expects {expected} argument(s), got {got}"
            ),
            DbError::ProcArgType {
                proc,
                index,
                expected,
            } => write!(f, "procedure '{proc}': argument {index} must be {expected}"),
            DbError::Spec(e) => write!(f, "{e}"),
            DbError::Io(e) => write!(f, "io error: {e}"),
            DbError::Corrupt(m) => write!(f, "corrupt data: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<TableError> for DbError {
    fn from(e: TableError) -> Self {
        DbError::Table(e)
    }
}

impl From<std::io::Error> for DbError {
    fn from(e: std::io::Error) -> Self {
        DbError::Io(e)
    }
}

impl From<mlss_core::spec::SpecError> for DbError {
    fn from(e: mlss_core::spec::SpecError) -> Self {
        DbError::Spec(e)
    }
}

/// An embedded database: named tables, thread-safe.
#[derive(Debug, Default)]
pub struct Database {
    tables: RwLock<BTreeMap<String, Table>>,
}

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a table.
    pub fn create_table(&self, name: impl Into<String>, schema: Schema) -> Result<(), DbError> {
        let name = name.into();
        let mut tables = self.tables.write();
        if tables.contains_key(&name) {
            return Err(DbError::TableExists(name));
        }
        tables.insert(name, Table::new(schema));
        Ok(())
    }

    /// Create a table, replacing any existing one with the same name.
    pub fn create_or_replace_table(&self, name: impl Into<String>, schema: Schema) {
        self.tables.write().insert(name.into(), Table::new(schema));
    }

    /// Drop a table.
    pub fn drop_table(&self, name: &str) -> Result<(), DbError> {
        self.tables
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| DbError::NoSuchTable(name.into()))
    }

    /// Does a table exist?
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.read().contains_key(name)
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }

    /// Insert a row.
    pub fn insert(&self, table: &str, row: Vec<Value>) -> Result<(), DbError> {
        let mut tables = self.tables.write();
        let t = tables
            .get_mut(table)
            .ok_or_else(|| DbError::NoSuchTable(table.into()))?;
        t.insert(row)?;
        Ok(())
    }

    /// Insert many rows at once (single lock acquisition).
    pub fn insert_many(
        &self,
        table: &str,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> Result<usize, DbError> {
        let mut tables = self.tables.write();
        let t = tables
            .get_mut(table)
            .ok_or_else(|| DbError::NoSuchTable(table.into()))?;
        t.insert_many(rows).map_err(|(_, e)| DbError::Table(e))
    }

    /// Run a read-only closure against a table.
    pub fn with_table<R>(&self, name: &str, f: impl FnOnce(&Table) -> R) -> Result<R, DbError> {
        let tables = self.tables.read();
        let t = tables
            .get(name)
            .ok_or_else(|| DbError::NoSuchTable(name.into()))?;
        Ok(f(t))
    }

    /// Run a mutating closure against a table.
    pub fn with_table_mut<R>(
        &self,
        name: &str,
        f: impl FnOnce(&mut Table) -> R,
    ) -> Result<R, DbError> {
        let mut tables = self.tables.write();
        let t = tables
            .get_mut(name)
            .ok_or_else(|| DbError::NoSuchTable(name.into()))?;
        Ok(f(t))
    }

    /// Snapshot a full table (clone) — used by persistence.
    pub(crate) fn snapshot(&self, name: &str) -> Result<Table, DbError> {
        self.with_table(name, |t| t.clone())
    }

    /// Install a table wholesale (used by recovery).
    pub(crate) fn install(&self, name: String, table: Table) {
        self.tables.write().insert(name, table);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::schema::ColumnDef;
    use crate::value::DataType::*;

    fn db_with_table() -> Database {
        let db = Database::new();
        let schema =
            Schema::new(vec![ColumnDef::new("k", Int), ColumnDef::new("v", Float)]).unwrap();
        db.create_table("kv", schema).unwrap();
        db
    }

    #[test]
    fn create_insert_query() {
        let db = db_with_table();
        db.insert("kv", vec![1i64.into(), 0.5.into()]).unwrap();
        db.insert("kv", vec![2i64.into(), 1.5.into()]).unwrap();
        let n = db.with_table("kv", |t| t.len()).unwrap();
        assert_eq!(n, 2);
        let rows = db
            .with_table("kv", |t| t.filter(&col("v").gt(lit(1.0))).unwrap())
            .unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn duplicate_create_fails() {
        let db = db_with_table();
        let schema = Schema::new(vec![ColumnDef::new("x", Int)]).unwrap();
        assert!(matches!(
            db.create_table("kv", schema),
            Err(DbError::TableExists(_))
        ));
    }

    #[test]
    fn drop_and_missing() {
        let db = db_with_table();
        assert!(db.has_table("kv"));
        db.drop_table("kv").unwrap();
        assert!(!db.has_table("kv"));
        assert!(matches!(db.drop_table("kv"), Err(DbError::NoSuchTable(_))));
        assert!(matches!(
            db.insert("kv", vec![]),
            Err(DbError::NoSuchTable(_))
        ));
    }

    #[test]
    fn insert_many_counts() {
        let db = db_with_table();
        let n = db
            .insert_many(
                "kv",
                (0..10).map(|i| vec![Value::Int(i), Value::Float(i as f64)]),
            )
            .unwrap();
        assert_eq!(n, 10);
    }

    #[test]
    fn concurrent_readers() {
        let db = std::sync::Arc::new(db_with_table());
        db.insert_many(
            "kv",
            (0..100).map(|i| vec![Value::Int(i), Value::Float(0.0)]),
        )
        .unwrap();
        let mut handles = vec![];
        for _ in 0..4 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                db.with_table("kv", |t| t.len()).unwrap()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 100);
        }
    }
}
