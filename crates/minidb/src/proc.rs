//! Stored procedures — the paper's "MLSS inside a DBMS" (§6.4).
//!
//! Predictive-model parameters live in an ordinary table (`models`), the
//! samplers run as registered procedures, results land in a `results`
//! table, and sample paths can be materialized into tables for
//! visualization or downstream analysis — the end-to-end pipeline the
//! paper demonstrates on PostgreSQL, here on the embedded engine.
//!
//! Both built-ins dispatch through [`ModelRegistry`] (every substrate in
//! `mlss_models`) and the `mlss_core::estimator::Estimator` trait (every
//! sampling strategy), so the SQL layer rides the same execution spine as
//! the library: SQL call → method resolution → sequential or parallel
//! driver → sampler.
//!
//! Built-ins:
//! * `mlss_estimate(model, method, beta, horizon, target_re [, threads])`
//!   — answer a durability query to a relative-error target with
//!   `method ∈ {"srs", "smlss", "mlss", "gmlss", "auto"}` over any
//!   registered model; `threads > 1` routes through the parallel driver.
//!   Appends a row to `results` and returns the estimate.
//! * `materialize_paths(model, horizon, n_paths, dest)` — simulate and
//!   store sample paths as `(path_id, t, value)` rows.

use crate::engine::{Database, DbError};
use crate::schema::{ColumnDef, Schema};
use crate::table::Aggregate;
use crate::value::{DataType, Value};
use mlss_core::estimator::{run_sequential, Estimator};
use mlss_core::model::SimulationModel;
use mlss_core::parallel::{run_parallel, ParallelConfig};
use mlss_core::partition::balanced_plan;
use mlss_core::plan_cache::{fingerprint, PlanCache, PlanLookup};
use mlss_core::prelude::{
    GMlssConfig, Problem, QualityTarget, RatioValue, RunControl, SMlssConfig, SimRng, SrsEstimator,
    StateScore,
};
use mlss_core::rng::rng_from_seed;
use mlss_core::scheduler::{QueryId, Scheduler};
use mlss_models::{
    ar_value_score, last_station_score, position_score, price_score, queue2_score, surplus_score,
    ArModel, CompoundPoisson, GeometricBrownian, JumpDistribution, MarkovChain, RandomWalk,
    SeriesNetwork, TandemQueue, Volatile,
};
use rand::RngExt;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A stored procedure.
pub trait StoredProcedure: Sync + Send {
    /// Procedure name used in `call`.
    fn name(&self) -> &str;
    /// Accepted argument-count range `(min, max)`, inclusive. The
    /// registry rejects calls outside the range with
    /// [`DbError::ProcArity`] before `execute` runs. The permissive
    /// default keeps hand-rolled procedures compiling unchanged.
    fn arity(&self) -> (usize, usize) {
        (0, usize::MAX)
    }
    /// Execute with positional arguments.
    fn execute(&self, db: &Database, args: &[Value], rng: &mut SimRng) -> Result<Value, DbError>;
}

/// Registry of stored procedures.
pub struct ProcRegistry {
    procs: BTreeMap<String, Box<dyn StoredProcedure>>,
}

impl Default for ProcRegistry {
    fn default() -> Self {
        Self::with_builtins()
    }
}

impl ProcRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self {
            procs: BTreeMap::new(),
        }
    }

    /// Registry preloaded with the built-in procedures (private plan
    /// cache).
    pub fn with_builtins() -> Self {
        Self::with_builtins_cached(Arc::new(PlanCache::new()))
    }

    /// Registry preloaded with the built-in procedures, sharing `plans`
    /// with the caller (the session layer surfaces its counters).
    pub fn with_builtins_cached(plans: Arc<PlanCache>) -> Self {
        let mut r = Self::new();
        r.register(Box::new(MlssEstimate {
            models: ModelRegistry::with_builtins(),
            plans,
        }));
        r.register(Box::new(MaterializePaths {
            models: ModelRegistry::with_builtins(),
        }));
        r
    }

    /// Register a procedure (replacing any previous one of the same name).
    pub fn register(&mut self, proc_: Box<dyn StoredProcedure>) {
        self.procs.insert(proc_.name().to_string(), proc_);
    }

    /// Registered names.
    pub fn names(&self) -> Vec<&str> {
        self.procs.keys().map(|s| s.as_str()).collect()
    }

    /// Call a procedure by name.
    ///
    /// The three failure modes before the procedure body runs are
    /// distinct error variants so callers can react precisely: an unknown
    /// name is [`DbError::UnknownProc`], a wrong argument count is
    /// [`DbError::ProcArity`], and a wrong argument type (reported by the
    /// procedure's argument readers) is [`DbError::ProcArgType`].
    pub fn call(
        &self,
        db: &Database,
        name: &str,
        args: &[Value],
        rng: &mut SimRng,
    ) -> Result<Value, DbError> {
        let p = self
            .procs
            .get(name)
            .ok_or_else(|| DbError::UnknownProc(name.to_string()))?;
        let (min, max) = p.arity();
        if args.len() < min || args.len() > max {
            let expected = if min == max {
                format!("{min}")
            } else if max == usize::MAX {
                format!("at least {min}")
            } else {
                format!("{min}..={max}")
            };
            return Err(DbError::ProcArity {
                proc: name.to_string(),
                expected,
                got: args.len(),
            });
        }
        p.execute(db, args, rng)
    }
}

/// Schema of the `models` parameter table.
pub fn models_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("model", DataType::Text),
        ColumnDef::new("param", DataType::Text),
        ColumnDef::new("value", DataType::Float),
    ])
    .expect("static schema")
}

/// Schema of the `results` output table.
pub fn results_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("model", DataType::Text),
        ColumnDef::new("method", DataType::Text),
        ColumnDef::new("beta", DataType::Float),
        ColumnDef::new("horizon", DataType::Int),
        ColumnDef::new("tau", DataType::Float),
        ColumnDef::new("variance", DataType::Float),
        ColumnDef::new("steps", DataType::Int),
        ColumnDef::new("n_roots", DataType::Int),
        ColumnDef::new("millis", DataType::Int),
        ColumnDef::new("plan_cache", DataType::Text),
    ])
    .expect("static schema")
}

/// Seed the `models` table with default parameters for every registered
/// model (the paper's queue and CPP rows keep their historical values).
pub fn seed_default_models(db: &Database) -> Result<(), DbError> {
    if !db.has_table("models") {
        db.create_table("models", models_schema())?;
    }
    let rows: Vec<(&str, &str, f64)> = vec![
        ("queue", "arrival_rate", 0.5),
        ("queue", "service_rate1", 0.5),
        ("queue", "service_rate2", 0.5),
        ("cpp", "initial", 15.0),
        ("cpp", "premium", 4.5),
        ("cpp", "intensity", 0.8),
        ("cpp", "jump_lo", 5.0),
        ("cpp", "jump_hi", 10.0),
        ("walk", "up", 0.3),
        ("walk", "down", 0.3),
        ("walk", "start", 0.0),
        ("walk", "reflect", 1.0),
        ("gbm", "initial", 525.0),
        ("gbm", "drift", 0.25),
        ("gbm", "volatility", 0.28),
        ("gbm", "dt", 1.0 / 252.0),
        ("ar", "phi", 0.7),
        ("ar", "sigma", 1.0),
        ("ar", "initial", 0.0),
        ("markov", "states", 32.0),
        ("markov", "p_up", 0.3),
        ("markov", "p_down", 0.3),
        ("markov", "initial", 0.0),
        ("network", "arrival_rate", 0.4),
        ("network", "stations", 3.0),
        ("network", "service_rate", 0.5),
        ("volatile", "initial", 15.0),
        ("volatile", "premium", 4.5),
        ("volatile", "intensity", 0.8),
        ("volatile", "jump_lo", 5.0),
        ("volatile", "jump_hi", 10.0),
        ("volatile", "impulse", 200.0),
        ("volatile", "impulse_prob", 0.005),
    ];
    db.insert_many(
        "models",
        rows.into_iter()
            .map(|(m, p, v)| vec![m.into(), p.into(), v.into()]),
    )?;
    Ok(())
}

/// Parameter bag read back from the `models` table.
fn load_params(db: &Database, model: &str) -> Result<BTreeMap<String, f64>, DbError> {
    let rows = db.with_table("models", |t| {
        t.scan()
            .filter(|r| r[0].as_str() == Some(model))
            .map(|r| {
                (
                    r[1].as_str().unwrap_or("").to_string(),
                    r[2].as_f64().unwrap_or(f64::NAN),
                )
            })
            .collect::<BTreeMap<_, _>>()
    })?;
    if rows.is_empty() {
        return Err(DbError::Proc(format!("no parameters for model '{model}'")));
    }
    Ok(rows)
}

fn need(params: &BTreeMap<String, f64>, key: &str) -> Result<f64, DbError> {
    params
        .get(key)
        .copied()
        .ok_or_else(|| DbError::Proc(format!("missing parameter '{key}'")))
}

fn opt(params: &BTreeMap<String, f64>, key: &str, default: f64) -> f64 {
    params.get(key).copied().unwrap_or(default)
}

pub(crate) fn arg_text<'a>(proc_: &str, args: &'a [Value], i: usize) -> Result<&'a str, DbError> {
    args.get(i)
        .and_then(|v| v.as_str())
        .ok_or_else(|| DbError::ProcArgType {
            proc: proc_.to_string(),
            index: i,
            expected: "text",
        })
}

pub(crate) fn arg_f64(proc_: &str, args: &[Value], i: usize) -> Result<f64, DbError> {
    args.get(i)
        .and_then(|v| v.as_f64())
        .ok_or_else(|| DbError::ProcArgType {
            proc: proc_.to_string(),
            index: i,
            expected: "numeric",
        })
}

pub(crate) fn arg_i64(proc_: &str, args: &[Value], i: usize) -> Result<i64, DbError> {
    args.get(i)
        .and_then(|v| v.as_i64())
        .ok_or_else(|| DbError::ProcArgType {
            proc: proc_.to_string(),
            index: i,
            expected: "an integer",
        })
}

// ---- method dispatch ----------------------------------------------------

/// A sampling method name accepted by `mlss_estimate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Simple random sampling.
    Srs,
    /// s-MLSS over an automatically balanced plan.
    SMlss,
    /// g-MLSS over an automatically balanced plan (`"mlss"`/`"gmlss"`).
    GMlss,
    /// g-MLSS when a level plan is derivable from a pilot, SRS otherwise.
    Auto,
}

impl Method {
    /// Parse a SQL-facing method name.
    pub fn parse(name: &str) -> Result<Self, DbError> {
        match name {
            "srs" => Ok(Method::Srs),
            "smlss" => Ok(Method::SMlss),
            "mlss" | "gmlss" => Ok(Method::GMlss),
            "auto" => Ok(Method::Auto),
            other => Err(DbError::Proc(format!(
                "method must be one of 'srs', 'smlss', 'mlss', 'gmlss', 'auto'; got '{other}'"
            ))),
        }
    }
}

/// Outcome of one in-database estimate.
pub struct ProcEstimate {
    /// Point estimate `τ̂`.
    pub tau: f64,
    /// Estimated variance of `τ̂`.
    pub variance: f64,
    /// `g` invocations spent.
    pub steps: u64,
    /// Independent root paths simulated.
    pub n_roots: u64,
    /// How this query's partition plan was obtained: `"hit"` (served
    /// from the plan cache), `"miss"` (the pilot ran), or `"none"`
    /// (the method needs no plan). Recorded in the `results` row so
    /// cache effectiveness is observable per query, not just in the
    /// aggregate counters.
    pub plan_source: &'static str,
}

/// Everything a runner needs to find (or derive) its partition plan: the
/// session plan cache plus the query fingerprint keying it.
pub struct PlanContext<'a> {
    /// The session's memoized plans.
    pub cache: &'a PlanCache,
    /// Fingerprint of (model name, parameters, β, horizon).
    pub fingerprint: u64,
}

/// Type-erased handle to a concrete model + score pair: the bridge from
/// the dynamically named SQL world to the statically typed estimator
/// spine. Implement this (or register a builder producing the provided
/// generic runner) to expose a custom model to the SQL layer.
pub trait ModelRunner: Send + Sync {
    /// Answer a durability query to a relative-error target, memoizing
    /// derived partition plans through `plans`.
    #[allow(clippy::too_many_arguments)]
    fn estimate(
        &self,
        beta: f64,
        horizon: u64,
        method: Method,
        target_re: f64,
        threads: usize,
        plans: PlanContext<'_>,
        rng: &mut SimRng,
    ) -> Result<ProcEstimate, DbError>;

    /// Submit the same query to a [`Scheduler`] instead of running it
    /// synchronously, consuming the runner (the scheduler job takes
    /// ownership of the model). Returns the scheduler's query id plus
    /// the plan provenance tag (`"hit"`/`"miss"`/`"none"`) for the
    /// eventual `results` row.
    #[allow(clippy::too_many_arguments)]
    fn submit(
        self: Box<Self>,
        scheduler: &Scheduler,
        beta: f64,
        horizon: u64,
        method: Method,
        target_re: f64,
        seed: u64,
        priority: u8,
        plans: PlanContext<'_>,
    ) -> Result<(QueryId, &'static str), DbError>;

    /// Simulate `n_paths` and insert `(path_id, t, score)` rows into
    /// `dest`, one path at a time (peak memory stays O(horizon), not
    /// O(n_paths × horizon)). Returns the number of rows written.
    fn materialize(
        &self,
        db: &Database,
        dest: &str,
        horizon: u64,
        n_paths: u64,
        rng: &mut SimRng,
    ) -> Result<i64, DbError>;
}

struct Runner<M, Z> {
    model: M,
    score: Z,
}

impl<M, Z> Runner<M, Z>
where
    M: SimulationModel + Send + Sync,
    M::State: Send,
    Z: StateScore<M::State> + Copy + Send + Sync,
{
    /// Drive any estimator through the sequential or parallel spine.
    fn drive<E>(
        &self,
        est: &E,
        problem: Problem<'_, M, RatioValue<Z>>,
        control: RunControl,
        threads: usize,
        rng: &mut SimRng,
    ) -> ProcEstimate
    where
        E: Estimator<M, RatioValue<Z>> + Sync,
        E::Shard: Send,
    {
        let e = if threads > 1 {
            let cfg = ParallelConfig {
                threads,
                seed: rng.random::<u64>(),
                ..Default::default()
            };
            run_parallel(problem, est, control, &cfg).estimate
        } else {
            run_sequential(est, problem, control, rng).estimate
        };
        ProcEstimate {
            tau: e.tau,
            variance: e.variance,
            steps: e.steps,
            n_roots: e.n_roots,
            plan_source: "none",
        }
    }
}

/// Plan provenance tag for a traced cache lookup.
fn plan_source_of(lookup: &PlanLookup) -> &'static str {
    if lookup.hit {
        "hit"
    } else {
        "miss"
    }
}

/// Stopping rule shared by the synchronous and scheduled paths.
fn target_control(target_re: f64) -> RunControl {
    RunControl::Target {
        target: QualityTarget::RelativeError {
            target: target_re,
            reference: None,
        },
        check_every: 256,
        max_steps: 2_000_000_000,
    }
}

/// Levels requested from the automatic plan derivation (the paper finds
/// 3-6 optimal; 4 is the serving default and part of the plan-cache key).
const PLAN_LEVELS: usize = 4;

/// Method component of the plan-cache key. The cache keys on
/// (fingerprint, method, levels), but every built-in MLSS method —
/// s-MLSS, g-MLSS, and auto — derives its plan with the *same* balanced
/// pilot, so they share one key: a `gmlss` query after an `auto` query
/// over the same model must not re-run an identical pilot. A future
/// method with its own derivation (e.g. greedy) would use its own key.
const BALANCED_PLAN_KEY: &str = "balanced";

impl<M, Z> ModelRunner for Runner<M, Z>
where
    M: SimulationModel + Send + Sync + 'static,
    M::State: Send,
    Z: StateScore<M::State> + Copy + Send + Sync + 'static,
{
    fn estimate(
        &self,
        beta: f64,
        horizon: u64,
        method: Method,
        target_re: f64,
        threads: usize,
        plans: PlanContext<'_>,
        rng: &mut SimRng,
    ) -> Result<ProcEstimate, DbError> {
        let vf = RatioValue::new(self.score, beta);
        let problem = Problem::new(&self.model, &vf, horizon);
        let control = target_control(target_re);
        // Memoized plan derivation: the pilot + tail fit runs only on a
        // cache miss; repeated queries over the same (model, β, horizon)
        // reuse the stored plan (and skip the pilot's rng draws). The
        // traced lookup also records this query's hit/miss provenance.
        let plan_for = |key: &str, rng: &mut SimRng| {
            plans
                .cache
                .get_or_build_traced(plans.fingerprint, key, PLAN_LEVELS, || {
                    balanced_plan(problem, PLAN_LEVELS, 2000, rng)
                })
        };
        Ok(match method {
            Method::Srs => self.drive(&SrsEstimator, problem, control, threads, rng),
            Method::SMlss => {
                let lookup = plan_for(BALANCED_PLAN_KEY, rng);
                let src = plan_source_of(&lookup);
                let cfg = SMlssConfig::new(lookup.plan, control);
                let mut est = self.drive(&cfg, problem, control, threads, rng);
                est.plan_source = src;
                est
            }
            Method::GMlss => {
                let lookup = plan_for(BALANCED_PLAN_KEY, rng);
                let src = plan_source_of(&lookup);
                let cfg = GMlssConfig::new(lookup.plan, control);
                let mut est = self.drive(&cfg, problem, control, threads, rng);
                est.plan_source = src;
                est
            }
            Method::Auto => {
                // g-MLSS when the pilot derives a usable multi-level plan
                // (finite τ hint and ≥ 2 levels), SRS otherwise.
                let lookup = plan_for(BALANCED_PLAN_KEY, rng);
                let src = plan_source_of(&lookup);
                let mut est = if lookup.tau_hint.is_finite() && lookup.plan.num_levels() >= 2 {
                    let cfg = GMlssConfig::new(lookup.plan, control);
                    self.drive(&cfg, problem, control, threads, rng)
                } else {
                    self.drive(&SrsEstimator, problem, control, threads, rng)
                };
                est.plan_source = src;
                est
            }
        })
    }

    fn submit(
        self: Box<Self>,
        scheduler: &Scheduler,
        beta: f64,
        horizon: u64,
        method: Method,
        target_re: f64,
        seed: u64,
        priority: u8,
        plans: PlanContext<'_>,
    ) -> Result<(QueryId, &'static str), DbError> {
        let control = target_control(target_re);
        // Derive (or fetch) the plan while still borrowing the model; the
        // pilot uses its own seed-derived stream so the job's stream stays
        // worker-0-canonical regardless of cache hits.
        let plan = if matches!(method, Method::Srs) {
            None
        } else {
            let vf = RatioValue::new(self.score, beta);
            let problem = Problem::new(&self.model, &vf, horizon);
            let mut pilot_rng = rng_from_seed(seed ^ 0x9E37_79B9_7F4A_7C15);
            Some(plans.cache.get_or_build_traced(
                plans.fingerprint,
                BALANCED_PLAN_KEY,
                PLAN_LEVELS,
                || balanced_plan(problem, PLAN_LEVELS, 2000, &mut pilot_rng),
            ))
        };
        let Runner { model, score } = *self;
        let vf = RatioValue::new(score, beta);
        Ok(match method {
            Method::Srs => (
                scheduler.submit(model, vf, horizon, SrsEstimator, control, seed, priority),
                "none",
            ),
            Method::SMlss => {
                let lookup = plan.expect("plan derived above");
                let src = plan_source_of(&lookup);
                let cfg = SMlssConfig::new(lookup.plan, control);
                (
                    scheduler.submit(model, vf, horizon, cfg, control, seed, priority),
                    src,
                )
            }
            Method::GMlss => {
                let lookup = plan.expect("plan derived above");
                let src = plan_source_of(&lookup);
                let cfg = GMlssConfig::new(lookup.plan, control);
                (
                    scheduler.submit(model, vf, horizon, cfg, control, seed, priority),
                    src,
                )
            }
            Method::Auto => {
                let lookup = plan.expect("plan derived above");
                let src = plan_source_of(&lookup);
                let id = if lookup.tau_hint.is_finite() && lookup.plan.num_levels() >= 2 {
                    let cfg = GMlssConfig::new(lookup.plan, control);
                    scheduler.submit(model, vf, horizon, cfg, control, seed, priority)
                } else {
                    scheduler.submit(model, vf, horizon, SrsEstimator, control, seed, priority)
                };
                (id, src)
            }
        })
    }

    fn materialize(
        &self,
        db: &Database,
        dest: &str,
        horizon: u64,
        n_paths: u64,
        rng: &mut SimRng,
    ) -> Result<i64, DbError> {
        let mut total = 0i64;
        for pid in 0..n_paths {
            let path = mlss_core::model::simulate_path(&self.model, horizon, rng);
            let rows = path.states.iter().enumerate().map(|(t, s)| {
                vec![
                    Value::Int(pid as i64),
                    Value::Int(t as i64),
                    Value::Float(self.score.score(s)),
                ]
            });
            total += db.insert_many(dest, rows)? as i64;
        }
        Ok(total)
    }
}

type ModelBuilder = fn(&BTreeMap<String, f64>, u64) -> Result<Box<dyn ModelRunner>, DbError>;

/// Registry mapping model names to builders over the `models` parameter
/// table — the SQL layer's pluggable catalog of stochastic substrates.
pub struct ModelRegistry {
    builders: BTreeMap<&'static str, ModelBuilder>,
}

fn markov_state_score(s: &usize) -> f64 {
    *s as f64
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::with_builtins()
    }
}

impl ModelRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self {
            builders: BTreeMap::new(),
        }
    }

    /// Registry preloaded with every `mlss_models` substrate.
    pub fn with_builtins() -> Self {
        let mut r = Self::new();
        r.register("queue", |p, _| {
            Ok(Box::new(Runner {
                model: TandemQueue::new(
                    need(p, "arrival_rate")?,
                    need(p, "service_rate1")?,
                    need(p, "service_rate2")?,
                ),
                score: queue2_score,
            }))
        });
        r.register("cpp", |p, _| {
            Ok(Box::new(Runner {
                model: CompoundPoisson::new(
                    need(p, "initial")?,
                    need(p, "premium")?,
                    need(p, "intensity")?,
                    JumpDistribution::Uniform {
                        lo: need(p, "jump_lo")?,
                        hi: need(p, "jump_hi")?,
                    },
                ),
                score: surplus_score,
            }))
        });
        r.register("walk", |p, _| {
            let mut walk = RandomWalk::new(
                opt(p, "up", 0.3),
                opt(p, "down", 0.3),
                opt(p, "start", 0.0) as i64,
            );
            if opt(p, "reflect", 1.0) != 0.0 {
                walk = walk.reflected();
            }
            Ok(Box::new(Runner {
                model: walk,
                score: position_score,
            }))
        });
        r.register("gbm", |p, _| {
            Ok(Box::new(Runner {
                model: GeometricBrownian::new(
                    opt(p, "initial", 525.0),
                    opt(p, "drift", 0.25),
                    opt(p, "volatility", 0.28),
                    opt(p, "dt", 1.0 / 252.0),
                ),
                score: price_score,
            }))
        });
        r.register("ar", |p, _| {
            Ok(Box::new(Runner {
                model: ArModel::ar1(
                    opt(p, "phi", 0.7),
                    opt(p, "sigma", 1.0),
                    opt(p, "initial", 0.0),
                ),
                score: ar_value_score,
            }))
        });
        r.register("markov", |p, _| {
            let states = opt(p, "states", 32.0).max(2.0) as usize;
            Ok(Box::new(Runner {
                model: MarkovChain::birth_death(
                    states,
                    opt(p, "p_up", 0.3),
                    opt(p, "p_down", 0.3),
                    (opt(p, "initial", 0.0).max(0.0) as usize).min(states - 1),
                ),
                score: markov_state_score,
            }))
        });
        r.register("network", |p, _| {
            let stations = opt(p, "stations", 3.0).max(1.0) as usize;
            Ok(Box::new(Runner {
                model: SeriesNetwork::new(
                    opt(p, "arrival_rate", 0.4),
                    vec![opt(p, "service_rate", 0.5); stations],
                ),
                score: last_station_score,
            }))
        });
        r.register("volatile", |p, horizon| {
            let base = CompoundPoisson::new(
                opt(p, "initial", 15.0),
                opt(p, "premium", 4.5),
                opt(p, "intensity", 0.8),
                JumpDistribution::Uniform {
                    lo: opt(p, "jump_lo", 5.0),
                    hi: opt(p, "jump_hi", 10.0),
                },
            );
            let impulse = opt(p, "impulse", 200.0);
            let prob = opt(p, "impulse_prob", 0.005);
            // The paper's Volatile CPP: impulses only in the last 20% of
            // the horizon — exactly the §6.2 level-skipping regime.
            Ok(Box::new(Runner {
                model: Volatile::new(base, horizon * 8 / 10, prob, move |u: &mut f64| {
                    *u += impulse
                }),
                score: surplus_score,
            }))
        });
        r
    }

    /// Register (or replace) a model builder.
    pub fn register(&mut self, name: &'static str, builder: ModelBuilder) {
        self.builders.insert(name, builder);
    }

    /// Registered model names.
    pub fn names(&self) -> Vec<&'static str> {
        self.builders.keys().copied().collect()
    }

    /// Build a runner for `name` from its parameter rows in `db`, plus
    /// the plan-cache fingerprint of (model name, parameters, β,
    /// horizon).
    pub(crate) fn build(
        &self,
        db: &Database,
        name: &str,
        horizon: u64,
        beta: f64,
    ) -> Result<(Box<dyn ModelRunner>, u64), DbError> {
        let builder = self.builders.get(name).ok_or_else(|| {
            DbError::Proc(format!(
                "unknown model '{name}' (registered: {})",
                self.names().join(", ")
            ))
        })?;
        let params = load_params(db, name)?;
        let fp = fingerprint(
            name,
            params.iter().map(|(k, v)| (k.as_str(), *v)),
            beta,
            horizon,
        );
        Ok((builder(&params, horizon)?, fp))
    }
}

/// `mlss_estimate(model, method, beta, horizon, target_re [, threads])`.
struct MlssEstimate {
    models: ModelRegistry,
    plans: Arc<PlanCache>,
}

impl StoredProcedure for MlssEstimate {
    fn name(&self) -> &str {
        "mlss_estimate"
    }

    fn arity(&self) -> (usize, usize) {
        (5, 6)
    }

    fn execute(&self, db: &Database, args: &[Value], rng: &mut SimRng) -> Result<Value, DbError> {
        let proc_ = self.name();
        let model_name = arg_text(proc_, args, 0)?.to_string();
        let method = Method::parse(arg_text(proc_, args, 1)?)?;
        let method_name = arg_text(proc_, args, 1)?.to_string();
        let beta = arg_f64(proc_, args, 2)?;
        let horizon = arg_i64(proc_, args, 3)?;
        if horizon < 1 {
            return Err(DbError::Proc("horizon must be ≥ 1".into()));
        }
        let target_re = arg_f64(proc_, args, 4)?;
        if !(target_re.is_finite() && target_re > 0.0) {
            return Err(DbError::Proc("target_re must be positive".into()));
        }
        let threads = match args.get(5) {
            None => 1,
            Some(v) => {
                let t = v.as_i64().ok_or(DbError::ProcArgType {
                    proc: proc_.to_string(),
                    index: 5,
                    expected: "an integer (threads)",
                })?;
                if t < 1 {
                    return Err(DbError::Proc("threads must be ≥ 1".into()));
                }
                t as usize
            }
        };

        let started = std::time::Instant::now();
        let (runner, fp) = self.models.build(db, &model_name, horizon as u64, beta)?;
        let est = runner.estimate(
            beta,
            horizon as u64,
            method,
            target_re,
            threads,
            PlanContext {
                cache: &self.plans,
                fingerprint: fp,
            },
            rng,
        )?;
        let millis = started.elapsed().as_millis() as i64;

        if !db.has_table("results") {
            db.create_table("results", results_schema())?;
        }
        db.insert(
            "results",
            vec![
                model_name.into(),
                method_name.into(),
                beta.into(),
                Value::Int(horizon),
                est.tau.into(),
                est.variance.into(),
                Value::Int(est.steps as i64),
                Value::Int(est.n_roots as i64),
                Value::Int(millis),
                est.plan_source.into(),
            ],
        )?;
        Ok(Value::Float(est.tau))
    }
}

/// `materialize_paths(model, horizon, n_paths, dest_table)`.
struct MaterializePaths {
    models: ModelRegistry,
}

impl StoredProcedure for MaterializePaths {
    fn name(&self) -> &str {
        "materialize_paths"
    }

    fn arity(&self) -> (usize, usize) {
        (4, 4)
    }

    fn execute(&self, db: &Database, args: &[Value], rng: &mut SimRng) -> Result<Value, DbError> {
        let proc_ = self.name();
        let model_name = arg_text(proc_, args, 0)?.to_string();
        let horizon = arg_i64(proc_, args, 1)?.max(1) as u64;
        let n_paths = arg_i64(proc_, args, 2)?.max(1) as u64;
        let dest = arg_text(proc_, args, 3)?.to_string();

        let schema = Schema::new(vec![
            ColumnDef::new("path_id", DataType::Int),
            ColumnDef::new("t", DataType::Int),
            ColumnDef::new("value", DataType::Float),
        ])
        .expect("static schema");
        db.create_or_replace_table(dest.clone(), schema);

        let (runner, _) = self.models.build(db, &model_name, horizon, 0.0)?;
        let total = runner.materialize(db, &dest, horizon, n_paths, rng)?;
        Ok(Value::Int(total))
    }
}

/// Convenience: count rows in `results` (used by tests/examples).
pub fn results_count(db: &Database) -> Result<i64, DbError> {
    db.with_table("results", |t| {
        t.aggregate(&Aggregate::CountAll, None)
            .map(|v| v.as_i64().unwrap_or(0))
    })?
    .map_err(DbError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlss_core::rng::rng_from_seed;

    fn db() -> Database {
        let db = Database::new();
        seed_default_models(&db).unwrap();
        db
    }

    fn estimate_args(model: &str, method: &str, beta: f64, horizon: i64, re: f64) -> Vec<Value> {
        vec![
            model.into(),
            method.into(),
            beta.into(),
            Value::Int(horizon),
            re.into(),
        ]
    }

    #[test]
    fn registry_lists_builtins() {
        let r = ProcRegistry::with_builtins();
        let names = r.names();
        assert!(names.contains(&"mlss_estimate"));
        assert!(names.contains(&"materialize_paths"));
    }

    #[test]
    fn model_registry_has_all_substrates() {
        let m = ModelRegistry::with_builtins();
        for name in [
            "queue", "cpp", "walk", "gbm", "ar", "markov", "network", "volatile",
        ] {
            assert!(m.names().contains(&name), "missing model '{name}'");
        }
        assert!(m.names().len() >= 8);
    }

    #[test]
    fn estimate_srs_and_mlss_agree() {
        let db = db();
        let r = ProcRegistry::with_builtins();
        let mut rng = rng_from_seed(5);
        // Loose 25% RE keeps the test fast; queue β=8, s=100.
        let tau_srs = r
            .call(
                &db,
                "mlss_estimate",
                &estimate_args("queue", "srs", 8.0, 100, 0.25),
                &mut rng,
            )
            .unwrap()
            .as_f64()
            .unwrap();
        let tau_mlss = r
            .call(
                &db,
                "mlss_estimate",
                &estimate_args("queue", "mlss", 8.0, 100, 0.25),
                &mut rng,
            )
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(tau_srs > 0.0 && tau_mlss > 0.0);
        let rel = (tau_srs - tau_mlss).abs() / tau_srs;
        assert!(rel < 1.0, "srs {tau_srs} vs mlss {tau_mlss}");
        assert_eq!(results_count(&db).unwrap(), 2);
    }

    #[test]
    fn new_methods_and_models_estimate() {
        let db = db();
        let r = ProcRegistry::with_builtins();
        let mut rng = rng_from_seed(6);
        // Every (model, method) pair below must produce a probability.
        // Note: s-MLSS is paired with a continuous-state model (AR). On
        // coarse discrete scores a balanced plan can create levels no
        // state value lands in; s-MLSS then never advances — the paper's
        // §6.2 "blindly applied s-MLSS" failure, reproduced in
        // tests/volatile_bias.rs. g-MLSS/auto handle those via skips.
        let cases: Vec<(&str, &str, f64, i64)> = vec![
            ("walk", "srs", 5.0, 50),
            ("walk", "auto", 5.0, 50),
            ("markov", "srs", 5.0, 50),
            ("ar", "smlss", 3.0, 40),
            ("ar", "gmlss", 3.0, 40),
            ("network", "auto", 5.0, 60),
            ("volatile", "mlss", 25.0, 80),
            ("gbm", "srs", 550.0, 30),
        ];
        let n_cases = cases.len() as i64;
        for (model, method, beta, horizon) in cases {
            let tau = r
                .call(
                    &db,
                    "mlss_estimate",
                    &estimate_args(model, method, beta, horizon, 0.5),
                    &mut rng,
                )
                .unwrap_or_else(|e| panic!("{model}/{method}: {e}"))
                .as_f64()
                .unwrap();
            assert!(
                (0.0..=1.0).contains(&tau),
                "{model}/{method}: τ̂={tau} out of range"
            );
        }
        assert_eq!(results_count(&db).unwrap(), n_cases);
    }

    #[test]
    fn threads_argument_routes_through_parallel_driver() {
        let db = db();
        let r = ProcRegistry::with_builtins();
        let mut rng = rng_from_seed(7);
        let mut args = estimate_args("walk", "srs", 6.0, 60, 0.3);
        args.push(Value::Int(2));
        let tau = r
            .call(&db, "mlss_estimate", &args, &mut rng)
            .unwrap()
            .as_f64()
            .unwrap();
        assert!((0.0..=1.0).contains(&tau));
        // Bad thread counts are rejected.
        let mut bad = estimate_args("walk", "srs", 6.0, 60, 0.3);
        bad.push(Value::Int(0));
        assert!(r.call(&db, "mlss_estimate", &bad, &mut rng).is_err());
    }

    #[test]
    fn estimate_validates_arguments() {
        let db = db();
        let r = ProcRegistry::with_builtins();
        let mut rng = rng_from_seed(1);
        let bad = estimate_args("queue", "nope", 8.0, 10, 0.5);
        assert!(r.call(&db, "mlss_estimate", &bad, &mut rng).is_err());
        let bad2 = estimate_args("mystery", "srs", 8.0, 10, 0.5);
        assert!(r.call(&db, "mlss_estimate", &bad2, &mut rng).is_err());
        assert!(r.call(&db, "missing_proc", &[], &mut rng).is_err());
    }

    #[test]
    fn unknown_proc_is_a_distinct_error() {
        let db = db();
        let r = ProcRegistry::with_builtins();
        let mut rng = rng_from_seed(1);
        match r.call(&db, "no_such_proc", &[], &mut rng) {
            Err(DbError::UnknownProc(name)) => assert_eq!(name, "no_such_proc"),
            other => panic!("expected UnknownProc, got {other:?}"),
        }
    }

    #[test]
    fn bad_arity_is_a_distinct_error() {
        let db = db();
        let r = ProcRegistry::with_builtins();
        let mut rng = rng_from_seed(1);
        // Too few arguments for mlss_estimate (needs 5..=6).
        match r.call(&db, "mlss_estimate", &["queue".into()], &mut rng) {
            Err(DbError::ProcArity {
                proc,
                expected,
                got,
            }) => {
                assert_eq!(proc, "mlss_estimate");
                assert_eq!(expected, "5..=6");
                assert_eq!(got, 1);
            }
            other => panic!("expected ProcArity, got {other:?}"),
        }
        // Too many arguments for materialize_paths (needs exactly 4).
        let too_many: Vec<Value> = vec![
            "cpp".into(),
            Value::Int(10),
            Value::Int(2),
            "t".into(),
            Value::Int(99),
        ];
        match r.call(&db, "materialize_paths", &too_many, &mut rng) {
            Err(DbError::ProcArity {
                proc,
                expected,
                got,
            }) => {
                assert_eq!(proc, "materialize_paths");
                assert_eq!(expected, "4");
                assert_eq!(got, 5);
            }
            other => panic!("expected ProcArity, got {other:?}"),
        }
    }

    #[test]
    fn bad_arg_type_is_a_distinct_error() {
        let db = db();
        let r = ProcRegistry::with_builtins();
        let mut rng = rng_from_seed(1);
        // Argument 0 must be text, not an integer.
        let mut bad = estimate_args("queue", "srs", 8.0, 10, 0.5);
        bad[0] = Value::Int(1);
        match r.call(&db, "mlss_estimate", &bad, &mut rng) {
            Err(DbError::ProcArgType {
                proc,
                index,
                expected,
            }) => {
                assert_eq!(proc, "mlss_estimate");
                assert_eq!(index, 0);
                assert_eq!(expected, "text");
            }
            other => panic!("expected ProcArgType, got {other:?}"),
        }
        // Argument 3 (horizon) must be an integer, not text.
        let mut bad = estimate_args("queue", "srs", 8.0, 10, 0.5);
        bad[3] = "soon".into();
        match r.call(&db, "mlss_estimate", &bad, &mut rng) {
            Err(DbError::ProcArgType { index: 3, .. }) => {}
            other => panic!("expected ProcArgType at index 3, got {other:?}"),
        }
        // The three variants display distinct, useful messages.
        let msgs = [
            DbError::UnknownProc("p".into()).to_string(),
            DbError::ProcArity {
                proc: "p".into(),
                expected: "4".into(),
                got: 2,
            }
            .to_string(),
            DbError::ProcArgType {
                proc: "p".into(),
                index: 1,
                expected: "text",
            }
            .to_string(),
        ];
        for (i, a) in msgs.iter().enumerate() {
            for b in msgs.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn repeated_estimates_hit_the_plan_cache() {
        let db = db();
        let plans = Arc::new(PlanCache::new());
        let r = ProcRegistry::with_builtins_cached(Arc::clone(&plans));
        let mut rng = rng_from_seed(12);
        for _ in 0..3 {
            let tau = r
                .call(
                    &db,
                    "mlss_estimate",
                    &estimate_args("ar", "gmlss", 3.0, 40, 0.5),
                    &mut rng,
                )
                .unwrap()
                .as_f64()
                .unwrap();
            assert!((0.0..=1.0).contains(&tau));
        }
        assert_eq!(plans.misses(), 1, "one pilot for three identical queries");
        assert_eq!(plans.hits(), 2);
        // A different β is a different fingerprint → new entry.
        r.call(
            &db,
            "mlss_estimate",
            &estimate_args("ar", "gmlss", 4.0, 40, 0.5),
            &mut rng,
        )
        .unwrap();
        assert_eq!(plans.misses(), 2);
    }

    #[test]
    fn results_rows_record_plan_cache_provenance() {
        let db = db();
        let r = ProcRegistry::with_builtins();
        let mut rng = rng_from_seed(31);
        // SRS needs no plan; first gmlss misses; second gmlss hits.
        for (model, method) in [("walk", "srs"), ("ar", "gmlss"), ("ar", "gmlss")] {
            r.call(
                &db,
                "mlss_estimate",
                &estimate_args(model, method, 3.0, 40, 0.5),
                &mut rng,
            )
            .unwrap();
        }
        let sources: Vec<String> = db
            .with_table("results", |t| {
                t.scan()
                    .map(|row| row.last().unwrap().as_str().unwrap().to_string())
                    .collect()
            })
            .unwrap();
        assert_eq!(sources, vec!["none", "miss", "hit"]);
    }

    #[test]
    fn materialize_paths_writes_rows() {
        let db = db();
        let r = ProcRegistry::with_builtins();
        let mut rng = rng_from_seed(9);
        let args: Vec<Value> = vec![
            "cpp".into(),
            Value::Int(50),
            Value::Int(3),
            "cpp_paths".into(),
        ];
        let n = r
            .call(&db, "materialize_paths", &args, &mut rng)
            .unwrap()
            .as_i64()
            .unwrap();
        assert_eq!(n, 3 * 51);
        let stored = db.with_table("cpp_paths", |t| t.len()).unwrap();
        assert_eq!(stored as i64, n);
    }

    #[test]
    fn materialize_paths_supports_registry_models() {
        let db = db();
        let r = ProcRegistry::with_builtins();
        let mut rng = rng_from_seed(10);
        for model in ["walk", "gbm", "markov"] {
            let args: Vec<Value> = vec![
                model.into(),
                Value::Int(20),
                Value::Int(2),
                format!("{model}_paths").into(),
            ];
            let n = r
                .call(&db, "materialize_paths", &args, &mut rng)
                .unwrap()
                .as_i64()
                .unwrap();
            assert_eq!(n, 2 * 21, "{model}: wrong row count");
        }
    }
}
