//! Stored procedures — the paper's "MLSS inside a DBMS" (§6.4).
//!
//! Predictive-model parameters live in an ordinary table (`models`), the
//! samplers run as registered procedures, results land in a `results`
//! table, and sample paths can be materialized into tables for
//! visualization or downstream analysis — the end-to-end pipeline the
//! paper demonstrates on PostgreSQL, here on the embedded engine.
//!
//! Built-ins:
//! * `mlss_estimate(model, method, beta, horizon, target_re)` — answer a
//!   durability query with `method ∈ {"srs", "mlss"}` to a relative-error
//!   target; appends a row to `results` and returns the estimate.
//! * `materialize_paths(model, horizon, n_paths, dest)` — simulate and
//!   store sample paths as `(path_id, t, value)` rows.

use crate::engine::{Database, DbError};
use crate::schema::{ColumnDef, Schema};
use crate::table::Aggregate;
use crate::value::{DataType, Value};
use mlss_core::model::SimulationModel;
use mlss_core::partition::balanced_plan;
use mlss_core::prelude::{
    GMlssConfig, GMlssSampler, Problem, QualityTarget, RatioValue, RunControl, SimRng,
    SrsSampler, StateScore,
};
use mlss_models::{CompoundPoisson, JumpDistribution, TandemQueue};
use std::collections::BTreeMap;

/// A stored procedure.
pub trait StoredProcedure: Sync + Send {
    /// Procedure name used in `call`.
    fn name(&self) -> &str;
    /// Execute with positional arguments.
    fn execute(&self, db: &Database, args: &[Value], rng: &mut SimRng)
        -> Result<Value, DbError>;
}

/// Registry of stored procedures.
pub struct ProcRegistry {
    procs: BTreeMap<String, Box<dyn StoredProcedure>>,
}

impl Default for ProcRegistry {
    fn default() -> Self {
        Self::with_builtins()
    }
}

impl ProcRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self {
            procs: BTreeMap::new(),
        }
    }

    /// Registry preloaded with the built-in procedures.
    pub fn with_builtins() -> Self {
        let mut r = Self::new();
        r.register(Box::new(MlssEstimate));
        r.register(Box::new(MaterializePaths));
        r
    }

    /// Register a procedure (replacing any previous one of the same name).
    pub fn register(&mut self, proc_: Box<dyn StoredProcedure>) {
        self.procs.insert(proc_.name().to_string(), proc_);
    }

    /// Registered names.
    pub fn names(&self) -> Vec<&str> {
        self.procs.keys().map(|s| s.as_str()).collect()
    }

    /// Call a procedure by name.
    pub fn call(
        &self,
        db: &Database,
        name: &str,
        args: &[Value],
        rng: &mut SimRng,
    ) -> Result<Value, DbError> {
        let p = self
            .procs
            .get(name)
            .ok_or_else(|| DbError::Proc(format!("no procedure '{name}'")))?;
        p.execute(db, args, rng)
    }
}

/// Schema of the `models` parameter table.
pub fn models_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("model", DataType::Text),
        ColumnDef::new("param", DataType::Text),
        ColumnDef::new("value", DataType::Float),
    ])
    .expect("static schema")
}

/// Schema of the `results` output table.
pub fn results_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("model", DataType::Text),
        ColumnDef::new("method", DataType::Text),
        ColumnDef::new("beta", DataType::Float),
        ColumnDef::new("horizon", DataType::Int),
        ColumnDef::new("tau", DataType::Float),
        ColumnDef::new("variance", DataType::Float),
        ColumnDef::new("steps", DataType::Int),
        ColumnDef::new("n_roots", DataType::Int),
        ColumnDef::new("millis", DataType::Int),
    ])
    .expect("static schema")
}

/// Seed the `models` table with the paper-default queue and CPP models.
pub fn seed_default_models(db: &Database) -> Result<(), DbError> {
    if !db.has_table("models") {
        db.create_table("models", models_schema())?;
    }
    let rows: Vec<(&str, &str, f64)> = vec![
        ("queue", "arrival_rate", 0.5),
        ("queue", "service_rate1", 0.5),
        ("queue", "service_rate2", 0.5),
        ("cpp", "initial", 15.0),
        ("cpp", "premium", 4.5),
        ("cpp", "intensity", 0.8),
        ("cpp", "jump_lo", 5.0),
        ("cpp", "jump_hi", 10.0),
    ];
    db.insert_many(
        "models",
        rows.into_iter()
            .map(|(m, p, v)| vec![m.into(), p.into(), v.into()]),
    )?;
    Ok(())
}

/// Parameter bag read back from the `models` table.
fn load_params(db: &Database, model: &str) -> Result<BTreeMap<String, f64>, DbError> {
    let rows = db.with_table("models", |t| {
        t.scan()
            .filter(|r| r[0].as_str() == Some(model))
            .map(|r| {
                (
                    r[1].as_str().unwrap_or("").to_string(),
                    r[2].as_f64().unwrap_or(f64::NAN),
                )
            })
            .collect::<BTreeMap<_, _>>()
    })?;
    if rows.is_empty() {
        return Err(DbError::Proc(format!("no parameters for model '{model}'")));
    }
    Ok(rows)
}

fn need(params: &BTreeMap<String, f64>, key: &str) -> Result<f64, DbError> {
    params
        .get(key)
        .copied()
        .ok_or_else(|| DbError::Proc(format!("missing parameter '{key}'")))
}

/// The supported in-database simulation models.
enum DbModel {
    Queue(TandemQueue),
    Cpp(CompoundPoisson),
}

fn build_model(db: &Database, name: &str) -> Result<DbModel, DbError> {
    let params = load_params(db, name)?;
    match name {
        "queue" => Ok(DbModel::Queue(TandemQueue::new(
            need(&params, "arrival_rate")?,
            need(&params, "service_rate1")?,
            need(&params, "service_rate2")?,
        ))),
        "cpp" => Ok(DbModel::Cpp(CompoundPoisson::new(
            need(&params, "initial")?,
            need(&params, "premium")?,
            need(&params, "intensity")?,
            JumpDistribution::Uniform {
                lo: need(&params, "jump_lo")?,
                hi: need(&params, "jump_hi")?,
            },
        ))),
        other => Err(DbError::Proc(format!("unknown model '{other}'"))),
    }
}

fn arg_text(args: &[Value], i: usize) -> Result<&str, DbError> {
    args.get(i)
        .and_then(|v| v.as_str())
        .ok_or_else(|| DbError::Proc(format!("argument {i} must be text")))
}

fn arg_f64(args: &[Value], i: usize) -> Result<f64, DbError> {
    args.get(i)
        .and_then(|v| v.as_f64())
        .ok_or_else(|| DbError::Proc(format!("argument {i} must be numeric")))
}

fn arg_i64(args: &[Value], i: usize) -> Result<i64, DbError> {
    args.get(i)
        .and_then(|v| v.as_i64())
        .ok_or_else(|| DbError::Proc(format!("argument {i} must be an integer")))
}

/// Run one estimate for a concrete model+score.
fn run_estimate<M, Z>(
    model: &M,
    score: Z,
    beta: f64,
    horizon: u64,
    method: &str,
    target_re: f64,
    rng: &mut SimRng,
) -> Result<(f64, f64, u64, u64), DbError>
where
    M: SimulationModel,
    Z: StateScore<M::State>,
{
    let vf = RatioValue::new(score, beta);
    let problem = Problem::new(model, &vf, horizon);
    let control = RunControl::Target {
        target: QualityTarget::RelativeError {
            target: target_re,
            reference: None,
        },
        check_every: 256,
        max_steps: 2_000_000_000,
    };
    match method {
        "srs" => {
            let res = SrsSampler::new(control).run(problem, rng);
            let e = res.estimate;
            Ok((e.tau, e.variance, e.steps, e.n_roots))
        }
        "mlss" => {
            let (plan, _) = balanced_plan(problem, 4, 2000, rng);
            let cfg = GMlssConfig::new(plan, control);
            let res = GMlssSampler::new(cfg).run(problem, rng);
            let e = res.estimate;
            Ok((e.tau, e.variance, e.steps, e.n_roots))
        }
        other => Err(DbError::Proc(format!(
            "method must be 'srs' or 'mlss', got '{other}'"
        ))),
    }
}

/// `mlss_estimate(model, method, beta, horizon, target_re)`.
struct MlssEstimate;

impl StoredProcedure for MlssEstimate {
    fn name(&self) -> &str {
        "mlss_estimate"
    }

    fn execute(
        &self,
        db: &Database,
        args: &[Value],
        rng: &mut SimRng,
    ) -> Result<Value, DbError> {
        let model_name = arg_text(args, 0)?.to_string();
        let method = arg_text(args, 1)?.to_string();
        let beta = arg_f64(args, 2)?;
        let horizon = arg_i64(args, 3)?;
        if horizon < 1 {
            return Err(DbError::Proc("horizon must be ≥ 1".into()));
        }
        let target_re = arg_f64(args, 4)?;
        if !(target_re > 0.0) {
            return Err(DbError::Proc("target_re must be positive".into()));
        }

        let started = std::time::Instant::now();
        let (tau, variance, steps, n_roots) = match build_model(db, &model_name)? {
            DbModel::Queue(q) => run_estimate(
                &q,
                mlss_models::queue2_score,
                beta,
                horizon as u64,
                &method,
                target_re,
                rng,
            )?,
            DbModel::Cpp(c) => run_estimate(
                &c,
                mlss_models::surplus_score,
                beta,
                horizon as u64,
                &method,
                target_re,
                rng,
            )?,
        };
        let millis = started.elapsed().as_millis() as i64;

        if !db.has_table("results") {
            db.create_table("results", results_schema())?;
        }
        db.insert(
            "results",
            vec![
                model_name.into(),
                method.into(),
                beta.into(),
                Value::Int(horizon),
                tau.into(),
                variance.into(),
                Value::Int(steps as i64),
                Value::Int(n_roots as i64),
                Value::Int(millis),
            ],
        )?;
        Ok(Value::Float(tau))
    }
}

/// `materialize_paths(model, horizon, n_paths, dest_table)`.
struct MaterializePaths;

impl StoredProcedure for MaterializePaths {
    fn name(&self) -> &str {
        "materialize_paths"
    }

    fn execute(
        &self,
        db: &Database,
        args: &[Value],
        rng: &mut SimRng,
    ) -> Result<Value, DbError> {
        let model_name = arg_text(args, 0)?.to_string();
        let horizon = arg_i64(args, 1)?.max(1) as u64;
        let n_paths = arg_i64(args, 2)?.max(1) as u64;
        let dest = arg_text(args, 3)?.to_string();

        let schema = Schema::new(vec![
            ColumnDef::new("path_id", DataType::Int),
            ColumnDef::new("t", DataType::Int),
            ColumnDef::new("value", DataType::Float),
        ])
        .expect("static schema");
        db.create_or_replace_table(dest.clone(), schema);

        let mut total = 0i64;
        match build_model(db, &model_name)? {
            DbModel::Queue(q) => {
                for pid in 0..n_paths {
                    let path = mlss_core::model::simulate_path(&q, horizon, rng);
                    let rows = path.states.iter().enumerate().map(|(t, s)| {
                        vec![
                            Value::Int(pid as i64),
                            Value::Int(t as i64),
                            Value::Float(mlss_models::queue2_score(s)),
                        ]
                    });
                    total += db.insert_many(&dest, rows)? as i64;
                }
            }
            DbModel::Cpp(c) => {
                for pid in 0..n_paths {
                    let path = mlss_core::model::simulate_path(&c, horizon, rng);
                    let rows = path.states.iter().enumerate().map(|(t, s)| {
                        vec![
                            Value::Int(pid as i64),
                            Value::Int(t as i64),
                            Value::Float(*s),
                        ]
                    });
                    total += db.insert_many(&dest, rows)? as i64;
                }
            }
        }
        Ok(Value::Int(total))
    }
}

/// Convenience: count rows in `results` (used by tests/examples).
pub fn results_count(db: &Database) -> Result<i64, DbError> {
    db.with_table("results", |t| {
        t.aggregate(&Aggregate::CountAll, None)
            .map(|v| v.as_i64().unwrap_or(0))
    })?
    .map_err(DbError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlss_core::rng::rng_from_seed;

    fn db() -> Database {
        let db = Database::new();
        seed_default_models(&db).unwrap();
        db
    }

    #[test]
    fn registry_lists_builtins() {
        let r = ProcRegistry::with_builtins();
        let names = r.names();
        assert!(names.contains(&"mlss_estimate"));
        assert!(names.contains(&"materialize_paths"));
    }

    #[test]
    fn estimate_srs_and_mlss_agree() {
        let db = db();
        let r = ProcRegistry::with_builtins();
        let mut rng = rng_from_seed(5);
        // Loose 25% RE keeps the test fast; queue β=8, s=100.
        let args_srs: Vec<Value> = vec![
            "queue".into(),
            "srs".into(),
            8.0.into(),
            Value::Int(100),
            0.25.into(),
        ];
        let tau_srs = r
            .call(&db, "mlss_estimate", &args_srs, &mut rng)
            .unwrap()
            .as_f64()
            .unwrap();
        let args_mlss: Vec<Value> = vec![
            "queue".into(),
            "mlss".into(),
            8.0.into(),
            Value::Int(100),
            0.25.into(),
        ];
        let tau_mlss = r
            .call(&db, "mlss_estimate", &args_mlss, &mut rng)
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(tau_srs > 0.0 && tau_mlss > 0.0);
        let rel = (tau_srs - tau_mlss).abs() / tau_srs;
        assert!(rel < 1.0, "srs {tau_srs} vs mlss {tau_mlss}");
        assert_eq!(results_count(&db).unwrap(), 2);
    }

    #[test]
    fn estimate_validates_arguments() {
        let db = db();
        let r = ProcRegistry::with_builtins();
        let mut rng = rng_from_seed(1);
        let bad: Vec<Value> = vec!["queue".into(), "nope".into(), 8.0.into(), Value::Int(10), 0.5.into()];
        assert!(r.call(&db, "mlss_estimate", &bad, &mut rng).is_err());
        let bad2: Vec<Value> = vec!["mystery".into(), "srs".into(), 8.0.into(), Value::Int(10), 0.5.into()];
        assert!(r.call(&db, "mlss_estimate", &bad2, &mut rng).is_err());
        assert!(r.call(&db, "missing_proc", &[], &mut rng).is_err());
    }

    #[test]
    fn materialize_paths_writes_rows() {
        let db = db();
        let r = ProcRegistry::with_builtins();
        let mut rng = rng_from_seed(9);
        let args: Vec<Value> = vec![
            "cpp".into(),
            Value::Int(50),
            Value::Int(3),
            "cpp_paths".into(),
        ];
        let n = r
            .call(&db, "materialize_paths", &args, &mut rng)
            .unwrap()
            .as_i64()
            .unwrap();
        assert_eq!(n, 3 * 51);
        let stored = db.with_table("cpp_paths", |t| t.len()).unwrap();
        assert_eq!(stored as i64, n);
    }
}
