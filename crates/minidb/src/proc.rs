//! Stored procedures — the paper's "MLSS inside a DBMS" (§6.4).
//!
//! Predictive-model parameters live in an ordinary table (`models`), the
//! samplers run as registered procedures, results land in a `results`
//! table, and sample paths can be materialized into tables for
//! visualization or downstream analysis — the end-to-end pipeline the
//! paper demonstrates on PostgreSQL, here on the embedded engine.
//!
//! Since the ESTIMATE-dialect redesign the positional procedures are
//! **thin shims**: each one compiles its arguments into the typed
//! [`QuerySpec`] IR and dispatches through the same
//! [`crate::dispatch::execute_spec`] path as the declarative
//! `ESTIMATE DURABILITY …` statement and the native session API, so every
//! entry point rides one execution spine: spec → model registry → plan
//! cache → sequential / parallel driver or scheduler → sampler.
//!
//! Built-ins:
//! * `mlss_estimate(model, method, beta, horizon, target_re [, threads])`
//!   — answer a durability query to a relative-error target with
//!   `method ∈ {"srs", "smlss", "mlss", "gmlss", "auto"}` over any
//!   registered model; `threads > 1` routes through the parallel driver.
//!   Appends a row to `results` and returns the estimate.
//! * `materialize_paths(model, horizon, n_paths, dest [, batch_width])`
//!   — simulate and store sample paths as `(path_id, t, value)` rows on
//!   the batched frontier kernel (one RNG stream per path, so the rows
//!   are bit-identical at every width).

use crate::durability::SessionWal;
use crate::engine::{Database, DbError};
use crate::schema::{ColumnDef, Schema};
use crate::table::Aggregate;
use crate::value::{DataType, Value};
use mlss_core::estimator::{run_sequential_batched_from, run_sequential_from, Estimator};
use mlss_core::model::SimulationModel;
use mlss_core::parallel::{run_parallel, run_parallel_from, ParallelConfig};
use mlss_core::partition::balanced_plan;
use mlss_core::plan_cache::{fingerprint, PlanCache, PlanLookup};
use mlss_core::planner::{plan_reuse, ReusePlan};
use mlss_core::prelude::{
    GMlssConfig, Problem, RatioValue, SMlssConfig, SimRng, SrsEstimator, StateScore,
};
use mlss_core::quality::RunControl;
use mlss_core::rng::{rng_from_seed, split_rng};
use mlss_core::scheduler::{CompletedQuery, QueryId, Scheduler, SliceableQuery, TenantId};
use mlss_core::shard_store::{shard_key, ShardStore, StoredShard};
use mlss_core::spec::{
    estimator_job, resolve_method, target_control, warm_estimator_job, DeferredPlanQuery,
    ModelSchema, ParamSpec, QuerySpec, ResolvedMethod, SpecError, SpecErrorKind, BALANCED_PLAN_KEY,
    PILOT_PATHS,
};
use mlss_models::{
    ar_value_score, last_station_score, position_score, price_score, queue2_score, surplus_score,
    ArModel, CompoundPoisson, GeometricBrownian, JumpDistribution, MarkovChain, RandomWalk,
    SeriesNetwork, TandemQueue, Volatile,
};
use rand::RngExt;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The SQL-facing method enum — re-exported from the spec IR so the
/// positional shims, the dialect parser, and the dispatch layer agree on
/// one type.
pub use mlss_core::spec::Method;

/// A stored procedure.
pub trait StoredProcedure: Sync + Send {
    /// Procedure name used in `call`.
    fn name(&self) -> &str;
    /// Accepted argument-count range `(min, max)`, inclusive. The
    /// registry rejects calls outside the range with
    /// [`DbError::ProcArity`] before `execute` runs. The permissive
    /// default keeps hand-rolled procedures compiling unchanged.
    fn arity(&self) -> (usize, usize) {
        (0, usize::MAX)
    }
    /// Execute with positional arguments.
    fn execute(&self, db: &Database, args: &[Value], rng: &mut SimRng) -> Result<Value, DbError>;
}

/// Registry of stored procedures.
pub struct ProcRegistry {
    procs: BTreeMap<String, Box<dyn StoredProcedure>>,
}

impl Default for ProcRegistry {
    fn default() -> Self {
        Self::with_builtins()
    }
}

impl ProcRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self {
            procs: BTreeMap::new(),
        }
    }

    /// Registry preloaded with the built-in procedures (private plan
    /// cache).
    pub fn with_builtins() -> Self {
        Self::with_builtins_cached(Arc::new(PlanCache::new()))
    }

    /// Registry preloaded with the built-in procedures, sharing `plans`
    /// with the caller (the session layer surfaces its counters).
    pub fn with_builtins_cached(plans: Arc<PlanCache>) -> Self {
        Self::with_builtins_shared(plans, Arc::new(ModelRegistry::with_builtins()), None, None)
    }

    /// Registry preloaded with the built-in procedures, sharing the plan
    /// cache, the model registry, and (optionally) the cross-query shard
    /// store and the session journal with the caller — the session layer
    /// passes its own objects so every front end validates against one
    /// catalog, reuses one store, and journals through one log.
    pub fn with_builtins_shared(
        plans: Arc<PlanCache>,
        models: Arc<ModelRegistry>,
        store: Option<Arc<ShardStore>>,
        wal: Option<Arc<SessionWal>>,
    ) -> Self {
        let mut r = Self::new();
        r.register(Box::new(MlssEstimate {
            models: Arc::clone(&models),
            plans,
            store,
            wal,
        }));
        r.register(Box::new(MaterializePaths { models }));
        r
    }

    /// Register a procedure (replacing any previous one of the same name).
    pub fn register(&mut self, proc_: Box<dyn StoredProcedure>) {
        self.procs.insert(proc_.name().to_string(), proc_);
    }

    /// Registered names.
    pub fn names(&self) -> Vec<&str> {
        self.procs.keys().map(|s| s.as_str()).collect()
    }

    /// Call a procedure by name.
    ///
    /// The failure modes before the procedure body runs are distinct
    /// error variants so callers can react precisely: an unknown name is
    /// [`DbError::UnknownProc`], a wrong argument count is
    /// [`DbError::ProcArity`], a wrong argument type (reported by the
    /// procedure's argument readers) is [`DbError::ProcArgType`], and a
    /// semantically malformed query spec is [`DbError::Spec`] with the
    /// full [`SpecError`] taxonomy.
    pub fn call(
        &self,
        db: &Database,
        name: &str,
        args: &[Value],
        rng: &mut SimRng,
    ) -> Result<Value, DbError> {
        let p = self
            .procs
            .get(name)
            .ok_or_else(|| DbError::UnknownProc(name.to_string()))?;
        let (min, max) = p.arity();
        if args.len() < min || args.len() > max {
            let expected = if min == max {
                format!("{min}")
            } else if max == usize::MAX {
                format!("at least {min}")
            } else {
                format!("{min}..={max}")
            };
            return Err(DbError::ProcArity {
                proc: name.to_string(),
                expected,
                got: args.len(),
            });
        }
        p.execute(db, args, rng)
    }
}

/// Schema of the `models` parameter table.
pub fn models_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("model", DataType::Text),
        ColumnDef::new("param", DataType::Text),
        ColumnDef::new("value", DataType::Float),
    ])
    .expect("static schema")
}

/// Schema of the `results` output table.
pub fn results_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("model", DataType::Text),
        ColumnDef::new("method", DataType::Text),
        ColumnDef::new("beta", DataType::Float),
        ColumnDef::new("horizon", DataType::Int),
        ColumnDef::new("tau", DataType::Float),
        ColumnDef::new("variance", DataType::Float),
        ColumnDef::new("steps", DataType::Int),
        ColumnDef::new("n_roots", DataType::Int),
        ColumnDef::new("millis", DataType::Int),
        ColumnDef::new("plan_cache", DataType::Text),
        ColumnDef::new("shard_reuse", DataType::Text),
        ColumnDef::new("tenant", DataType::Text),
    ])
    .expect("static schema")
}

/// Schema of the `rankings` output table: one standings row per raced
/// arm, most durable first. Standings are derived output — the per-arm
/// evidence also lands as journaled `results` rows — so this table is
/// not WAL-journaled; a recovering session re-races or re-reads
/// `results`.
pub fn rankings_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("rank", DataType::Int),
        ColumnDef::new("arm", DataType::Text),
        ColumnDef::new("tau", DataType::Float),
        ColumnDef::new("ci_lo", DataType::Float),
        ColumnDef::new("ci_hi", DataType::Float),
        ColumnDef::new("frozen_round", DataType::Int),
        ColumnDef::new("reason", DataType::Text),
        ColumnDef::new("steps", DataType::Int),
        ColumnDef::new("tenant", DataType::Text),
    ])
    .expect("static schema")
}

/// Seed the `models` table with every registered model's schema defaults
/// (the paper's queue and CPP rows keep their historical values — they
/// *are* the schema defaults).
pub fn seed_default_models(db: &Database) -> Result<(), DbError> {
    if !db.has_table("models") {
        db.create_table("models", models_schema())?;
    }
    let registry = ModelRegistry::with_builtins();
    let rows: Vec<Vec<Value>> = registry
        .schemas()
        .iter()
        .flat_map(|s| {
            s.params
                .iter()
                .map(|p| vec![s.name.into(), p.name.into(), p.default.into()])
        })
        .collect();
    db.insert_many("models", rows)?;
    Ok(())
}

/// Parameter rows for one model read back from the `models` table (empty
/// when the table — or the model — is absent; schema defaults fill in).
fn load_params(db: &Database, model: &str) -> BTreeMap<String, f64> {
    if !db.has_table("models") {
        return BTreeMap::new();
    }
    db.with_table("models", |t| {
        t.scan()
            .filter(|r| r[0].as_str() == Some(model))
            .map(|r| {
                (
                    r[1].as_str().unwrap_or("").to_string(),
                    r[2].as_f64().unwrap_or(f64::NAN),
                )
            })
            .collect::<BTreeMap<_, _>>()
    })
    .unwrap_or_default()
}

fn need(params: &BTreeMap<String, f64>, key: &str) -> Result<f64, DbError> {
    params
        .get(key)
        .copied()
        .ok_or_else(|| DbError::Proc(format!("missing parameter '{key}'")))
}

fn opt(params: &BTreeMap<String, f64>, key: &str, default: f64) -> f64 {
    params.get(key).copied().unwrap_or(default)
}

pub(crate) fn arg_text<'a>(proc_: &str, args: &'a [Value], i: usize) -> Result<&'a str, DbError> {
    args.get(i)
        .and_then(|v| v.as_str())
        .ok_or_else(|| DbError::ProcArgType {
            proc: proc_.to_string(),
            index: i,
            expected: "text",
        })
}

pub(crate) fn arg_f64(proc_: &str, args: &[Value], i: usize) -> Result<f64, DbError> {
    args.get(i)
        .and_then(|v| v.as_f64())
        .ok_or_else(|| DbError::ProcArgType {
            proc: proc_.to_string(),
            index: i,
            expected: "numeric",
        })
}

pub(crate) fn arg_i64(proc_: &str, args: &[Value], i: usize) -> Result<i64, DbError> {
    args.get(i)
        .and_then(|v| v.as_i64())
        .ok_or_else(|| DbError::ProcArgType {
            proc: proc_.to_string(),
            index: i,
            expected: "an integer",
        })
}

// ---- the one compile-and-dispatch surface -------------------------------

/// Outcome of one in-database estimate.
pub struct ProcEstimate {
    /// Point estimate `τ̂`.
    pub tau: f64,
    /// Estimated variance of `τ̂`.
    pub variance: f64,
    /// `g` invocations spent.
    pub steps: u64,
    /// Independent root paths simulated.
    pub n_roots: u64,
    /// How this query's partition plan was obtained: `"hit"` (served
    /// from the plan cache), `"miss"` (the pilot ran), or `"none"`
    /// (the method needs no plan). Recorded in the `results` row so
    /// cache effectiveness is observable per query, not just in the
    /// aggregate counters.
    pub plan_source: &'static str,
    /// How the query used the cross-query shard store: `"cold"` (store
    /// consulted, no usable entry), `"warm"` (resumed from a stored
    /// shard, paying only the marginal roots), `"stored"` (answered from
    /// the store without simulating), or `"none"` (no store attached).
    /// Recorded in the `results` row, mirroring `plan_cache`.
    pub shard_reuse: &'static str,
}

/// Everything a runner needs to find (or derive) its partition plan: the
/// session plan cache plus the query fingerprint keying it — and, when
/// the session serves one, the cross-query shard store the reuse planner
/// consults.
pub struct PlanContext {
    /// The session's memoized plans (shared with deferred-pilot jobs).
    pub cache: Arc<PlanCache>,
    /// Fingerprint of (model name, effective parameters, β, horizon).
    pub fingerprint: u64,
    /// The session's shard store (`None` disables cross-query reuse —
    /// every query runs cold and deposits nothing).
    pub store: Option<Arc<ShardStore>>,
}

/// Outcome of an asynchronous submission: the scheduler handle plus the
/// provenance tags the eventual `results` row records.
pub struct SubmitOutcome {
    /// Scheduler query id (poll/wait/cancel handle).
    pub id: QueryId,
    /// Plan-cache provenance (`"hit"`/`"miss"`/`"none"`).
    pub plan_source: &'static str,
    /// Shard-store provenance (`"cold"`/`"warm"`/`"stored"`/`"none"`).
    pub shard_reuse: &'static str,
}

/// The resolved execution plan of a spec — what `EXPLAIN ESTIMATE`
/// reports: the concrete estimator the requested method resolved to
/// (the `auto` rule applied), the level plan, the pilot's τ̂ hint, and
/// the plan-cache provenance of the resolution.
pub struct PlanResolution {
    /// The concrete estimator (with its plan, when it has one).
    pub resolved: ResolvedMethod,
    /// The pilot's τ̂ extrapolation hint (NaN for SRS).
    pub tau_hint: f64,
    /// `"hit"`, `"miss"`, or `"none"`.
    pub plan_source: &'static str,
}

/// Type-erased handle to a concrete model + score pair: the bridge from
/// the dynamically named SQL world to the statically typed estimator
/// spine. Every entry point hands it the same [`QuerySpec`] IR.
pub trait ModelRunner: Send + Sync {
    /// Answer the spec synchronously (sequential, batched, or parallel
    /// driver per its execution options), memoizing derived partition
    /// plans through `plans`.
    fn estimate(
        &self,
        spec: &QuerySpec,
        plans: &PlanContext,
        rng: &mut SimRng,
    ) -> Result<ProcEstimate, DbError>;

    /// Submit the spec to a [`Scheduler`] instead of running it
    /// synchronously, consuming the runner (the scheduler job takes
    /// ownership of the model). On a plan-cache miss the pilot is **not**
    /// run here — plan derivation is scheduled as the query's first
    /// slice. When the plan context carries a shard store, the reuse
    /// planner routes the submission: a stored entry meeting the target
    /// completes immediately, a looser one warm-starts the job. Returns
    /// the scheduler's query id plus the provenance tags for the
    /// eventual `results` row.
    fn submit(
        self: Box<Self>,
        scheduler: &Scheduler,
        spec: &QuerySpec,
        seed: u64,
        plans: &PlanContext,
    ) -> Result<SubmitOutcome, DbError>;

    /// Build one `RANK BY` race arm as a sliceable job — the same
    /// construction [`ModelRunner::submit`] uses, minus the scheduler
    /// and the shard store (arms never reuse or deposit: the race's
    /// pooled per-arm shard *is* its state, and standings must not
    /// depend on what earlier queries left behind). On a plan-cache miss
    /// the pilot is deferred to the arm's first slice, single-flight
    /// through the shared cache — same-shape arms share one pilot.
    /// Returns the job plus its plan-cache provenance.
    fn rank_arm(
        self: Box<Self>,
        spec: &QuerySpec,
        seed: u64,
        plans: &PlanContext,
        default_width: usize,
    ) -> Result<(Box<dyn SliceableQuery>, &'static str), DbError>;

    /// Resubmit a recovered ASYNC query from a durable checkpoint:
    /// `method` is the resolved estimator the checkpoint was cut under
    /// and `entry` its shard + RNG at a slice boundary. Warm-starts
    /// when the plan and shard type line up; any mismatch (plan not in
    /// the cache, foreign shard, non-SQL estimator) falls back to
    /// [`ModelRunner::submit`] — a cold rerun from `seed`, which under
    /// a pinned seed replays the identical stream and is therefore
    /// still bit-exact, just slower. The default implementation is
    /// that fallback.
    fn resume(
        self: Box<Self>,
        scheduler: &Scheduler,
        spec: &QuerySpec,
        seed: u64,
        plans: &PlanContext,
        method: &str,
        entry: &StoredShard,
    ) -> Result<SubmitOutcome, DbError> {
        let _ = (method, entry);
        self.submit(scheduler, spec, seed, plans)
    }

    /// Resolve the spec's execution plan without running the estimator:
    /// the `auto` rule, the level plan (derived through the cache — the
    /// pilot runs on a cold cache), and the cache provenance. This is
    /// the engine behind `EXPLAIN ESTIMATE`.
    fn resolve_plan(
        &self,
        spec: &QuerySpec,
        plans: &PlanContext,
        rng: &mut SimRng,
    ) -> Result<PlanResolution, DbError>;

    /// Resolve the launch width this spec will execute with, plus the
    /// resolution's provenance. `default_width` is the layer fallback
    /// that applies when the spec doesn't say (0 for the sync drivers,
    /// the scheduler's configured width for async). Provenance values:
    /// `"requested"` (an explicit number in the spec), `"default"` (the
    /// inherited layer fallback), `"static"` (auto, picked from the
    /// model's kernel class without measuring), `"probe"` (auto, a
    /// micro-calibration burst ran and its winner was memoized in the
    /// plan cache), `"cached-probe"` (auto, a previous probe answered).
    ///
    /// Probes time throwaway bursts on an RNG derived from the query
    /// fingerprint — never the query's stream — so `batch_width=auto`
    /// stays bit-identical to running the resolved width explicitly.
    fn resolve_width(
        &self,
        spec: &QuerySpec,
        plans: &PlanContext,
        default_width: usize,
    ) -> (usize, &'static str);

    /// Simulate `n_paths` on the batched frontier kernel (cohorts of
    /// `batch_width` lanes, one RNG stream per path — rows are
    /// bit-identical at every width) and insert `(path_id, t, score)`
    /// rows into `dest`. Returns the number of rows written.
    fn materialize(
        &self,
        db: &Database,
        dest: &str,
        horizon: u64,
        n_paths: u64,
        batch_width: usize,
        rng: &mut SimRng,
    ) -> Result<i64, DbError>;
}

/// Resolve the spec's fair-share tenant to a scheduler tenant id
/// (registering the name on first sight; weights are managed by the
/// serving layer).
fn tenant_of(scheduler: &Scheduler, spec: &QuerySpec) -> Option<TenantId> {
    spec.options
        .tenant
        .as_deref()
        .map(|name| scheduler.ensure_tenant(name))
}

/// Feed a completed run's steps/root back to the width policy's drift
/// check (a no-op for families with no memoized probe).
fn observe_regime(plans: &PlanContext, steps: u64, n_roots: u64) {
    if n_roots > 0 {
        plans
            .cache
            .observe_regime(plans.fingerprint, steps as f64 / n_roots as f64);
    }
}

struct Runner<M, Z> {
    model: M,
    score: Z,
}

impl<M, Z> Runner<M, Z>
where
    M: SimulationModel + Send + Sync,
    M::State: Send,
    Z: StateScore<M::State> + Copy + Send + Sync,
{
    /// Drive any estimator through the sequential, batched-sequential,
    /// or parallel spine per the spec's execution options, consulting
    /// the shard store first: a stored entry that already meets the
    /// target is served outright, a looser one warm-starts the run, and
    /// sequential runs deposit their final shard (plus its
    /// chunk-boundary RNG) back for the next query over the same key.
    fn drive_reused<E>(
        &self,
        est: &E,
        spec: &QuerySpec,
        plans: &PlanContext,
        resolved: &ResolvedMethod,
        rng: &mut SimRng,
    ) -> ProcEstimate
    where
        E: Estimator<M, RatioValue<Z>> + Sync,
        E::Shard: Send + Clone + 'static,
    {
        let control = target_control(spec.target_re);
        // `batch_width=auto` resolves here — per model, memoized per
        // fingerprint — before any driver launches.
        let (width, _) = self.width_for(spec, plans, 0);
        let vf = RatioValue::new(self.score, spec.beta);
        let problem = Problem::new(&self.model, &vf, spec.horizon);

        let store = plans.store.as_deref();
        let key = store.map(|_| shard_key(plans.fingerprint, resolved.name(), resolved.plan()));
        // Only the sequential driver replays the target-mode cadence a
        // bit-exact checkpoint was cut at, so only it may reuse under a
        // pinned seed: a pinned parallel run would merge a stored shard
        // a storeless session never holds, changing its bits. Unpinned
        // parallel runs still reuse (statistical pooling is cadence-
        // independent).
        let replayable = spec.options.threads <= 1;
        let plan = match (store, &key) {
            (Some(s), Some(k)) => plan_reuse(s, k, spec.target_re, spec.options.seed, replayable),
            _ => ReusePlan::Cold,
        };

        // Serve-from-store: the stored shard already meets the target.
        if let ReusePlan::Stored { entry } = &plan {
            let e = entry.estimate;
            return ProcEstimate {
                tau: e.tau,
                variance: e.variance,
                steps: e.steps,
                n_roots: e.n_roots,
                plan_source: "none",
                shard_reuse: "stored",
            };
        }

        // Warm-start: continue from the stored checkpoint. Sequential
        // drivers replay the exact stream a longer cold run would have
        // used (bit-identical under a pinned seed); the parallel driver
        // reuses the merged shard under fresh worker streams.
        let warm = match &plan {
            ReusePlan::Warm { entry, .. } => entry
                .shard_as::<E::Shard>()
                .map(|s| (s.clone(), entry.rng.clone())),
            _ => None,
        };
        let shard_reuse: &'static str = if warm.is_some() {
            "warm"
        } else if store.is_some() {
            "cold"
        } else {
            "none"
        };

        if spec.options.threads > 1 {
            let cfg = ParallelConfig {
                threads: spec.options.threads,
                seed: rng.random::<u64>(),
                batch_width: width,
                ..Default::default()
            };
            let e = match warm {
                Some((shard, _)) => run_parallel_from(problem, est, control, &cfg, shard).estimate,
                None => run_parallel(problem, est, control, &cfg).estimate,
            };
            observe_regime(plans, e.steps, e.n_roots);
            return ProcEstimate {
                tau: e.tau,
                variance: e.variance,
                steps: e.steps,
                n_roots: e.n_roots,
                plan_source: "none",
                shard_reuse,
            };
        }

        let (initial, mut warm_rng) = match warm {
            Some((shard, warm_rng)) => (shard, Some(warm_rng)),
            None => (est.shard(), None),
        };
        let rng: &mut SimRng = match warm_rng.as_mut() {
            Some(r) => r,
            None => rng,
        };
        let run = if width == 0 {
            run_sequential_from(est, problem, control, rng, initial)
        } else {
            run_sequential_batched_from(est, problem, control, rng, initial, width)
        };
        if let (Some(s), Some(k)) = (store, key) {
            // The resume RNG sits at the final chunk boundary, so the
            // deposit is the exact state a longer run would continue
            // from — bit-exact for same-seed warm starts.
            s.deposit(
                k,
                StoredShard::new(
                    &run.shard,
                    run.resume_rng,
                    run.estimate,
                    spec.options.seed,
                    spec.target_re,
                    true,
                ),
            );
        }
        let e = run.estimate;
        observe_regime(plans, e.steps, e.n_roots);
        ProcEstimate {
            tau: e.tau,
            variance: e.variance,
            steps: e.steps,
            n_roots: e.n_roots,
            plan_source: "none",
            shard_reuse,
        }
    }

    /// The traced plan lookup every plan-needing path shares: the
    /// pilot-plus-tail-fit runs only on a cache miss (drawing from
    /// `rng`); repeated queries over the same (model, params, β,
    /// horizon) reuse the stored plan and skip the pilot's draws.
    fn plan_for(
        &self,
        spec: &QuerySpec,
        plans: &PlanContext,
        rng: &mut SimRng,
    ) -> (PlanLookup, &'static str) {
        let vf = RatioValue::new(self.score, spec.beta);
        let problem = Problem::new(&self.model, &vf, spec.horizon);
        let lookup = plans.cache.get_or_build_traced(
            plans.fingerprint,
            BALANCED_PLAN_KEY,
            spec.levels,
            || balanced_plan(problem, spec.levels, PILOT_PATHS, rng),
        );
        let src = if lookup.hit { "hit" } else { "miss" };
        (lookup, src)
    }

    /// Width resolution shared by every execution path (see
    /// [`ModelRunner::resolve_width`] for the provenance contract).
    fn width_for(
        &self,
        spec: &QuerySpec,
        plans: &PlanContext,
        default_width: usize,
    ) -> (usize, &'static str) {
        let requested = spec.options.batch_width.unwrap_or(default_width);
        if requested != mlss_core::width::AUTO_WIDTH {
            return (
                requested,
                if spec.options.batch_width.is_some() {
                    "requested"
                } else {
                    "default"
                },
            );
        }
        let mut reprobe_baseline = None;
        if let Some(memo) = plans.cache.width_memo(plans.fingerprint) {
            if !memo.drifted(WIDTH_REGIME_DRIFT) {
                return (memo.width, "cached-probe");
            }
            // The family's observed steps/root has drifted >2x from the
            // regime the memoized probe was measured in: the winner may
            // no longer be the winner. Re-calibrate, anchoring the new
            // entry's baseline at the drifted (observed) regime.
            reprobe_baseline = memo.observed_regime;
        }
        let class = self.model.kernel_class();
        if class == mlss_core::width::KernelClass::Cheap {
            // Nothing to measure: a cheap kernel's width curve is flat
            // past the narrow pick, and probing would cost more than a
            // wrong answer ever could.
            return (
                mlss_core::width::static_width(class, spec.horizon),
                "static",
            );
        }
        // Micro-calibration: time a fixed step burst per candidate width
        // on a throwaway stream derived from the fingerprint. Every
        // candidate replays the identical paths (the RNG reseeds per
        // call), so the comparison isolates width. The winner is
        // memoized in the plan cache — repeats of this query family
        // resolve as "cached-probe" without ever probing again.
        let vf = RatioValue::new(self.score, spec.beta);
        let problem = Problem::new(&self.model, &vf, spec.horizon);
        let est = SrsEstimator;
        let picked = mlss_core::width::calibrate(class.probe_candidates(), |w| {
            let mut rng = rng_from_seed(plans.fingerprint ^ WIDTH_PROBE_SEED_SALT);
            let mut shard = <SrsEstimator as Estimator<M, RatioValue<Z>>>::shard(&est);
            est.run_chunk_batched(problem, &mut shard, WIDTH_PROBE_BUDGET, &mut rng, w);
        });
        plans
            .cache
            .memo_width(plans.fingerprint, picked, reprobe_baseline);
        if reprobe_baseline.is_some() {
            mlss_core::width::record_reprobe();
            (picked, "re-probe")
        } else {
            (picked, "probe")
        }
    }
}

impl<M, Z> ModelRunner for Runner<M, Z>
where
    M: SimulationModel + Send + Sync + 'static,
    M::State: Send,
    Z: StateScore<M::State> + Copy + Send + Sync + 'static,
{
    fn estimate(
        &self,
        spec: &QuerySpec,
        plans: &PlanContext,
        rng: &mut SimRng,
    ) -> Result<ProcEstimate, DbError> {
        let resolution = self.resolve_plan(spec, plans, rng)?;
        let control = target_control(spec.target_re);
        let resolved = &resolution.resolved;
        let mut est = match resolved {
            ResolvedMethod::Srs => self.drive_reused(&SrsEstimator, spec, plans, resolved, rng),
            ResolvedMethod::SMlss(plan) => {
                let cfg = SMlssConfig::new(plan.clone(), control);
                self.drive_reused(&cfg, spec, plans, resolved, rng)
            }
            ResolvedMethod::GMlss(plan) => {
                let cfg = GMlssConfig::new(plan.clone(), control);
                self.drive_reused(&cfg, spec, plans, resolved, rng)
            }
        };
        est.plan_source = resolution.plan_source;
        Ok(est)
    }

    fn submit(
        self: Box<Self>,
        scheduler: &Scheduler,
        spec: &QuerySpec,
        seed: u64,
        plans: &PlanContext,
    ) -> Result<SubmitOutcome, DbError> {
        /// Route one resolved method through the reuse planner: a
        /// stored entry meeting the target becomes an
        /// instantly-finished [`CompletedQuery`], a looser one
        /// warm-starts the estimator job, and a miss (or storeless
        /// session) runs cold — tagged for checkpoint deposit whenever
        /// a store is attached.
        #[allow(clippy::too_many_arguments)]
        fn route<M, Z>(
            model: M,
            score: Z,
            spec: &QuerySpec,
            resolved: &ResolvedMethod,
            control: RunControl,
            seed: u64,
            width: usize,
            store: Option<&ShardStore>,
            fp: u64,
        ) -> (Box<dyn SliceableQuery>, &'static str)
        where
            M: SimulationModel + Send + 'static,
            M::State: Send,
            Z: StateScore<M::State> + Copy + Send + Sync + 'static,
        {
            let Some(store) = store else {
                let job = estimator_job(
                    model,
                    score,
                    spec.beta,
                    spec.horizon,
                    resolved,
                    control,
                    seed,
                    width,
                    None,
                );
                return (job, "none");
            };
            let key = shard_key(fp, resolved.name(), resolved.plan());
            // Scheduler slices check quality at slice boundaries, not
            // the sequential driver's check cadence, so an async run is
            // never a bit-exact replay: a pinned-seed submission plans
            // cold (replayable = false keeps the planner from even
            // consulting the store), preserving store-on/store-off
            // bit-identity. Unpinned submissions reuse freely.
            match plan_reuse(store, &key, spec.target_re, spec.options.seed, false) {
                ReusePlan::Stored { entry } => (
                    Box::new(CompletedQuery::new(entry.estimate)) as Box<dyn SliceableQuery>,
                    "stored",
                ),
                ReusePlan::Warm { entry, .. } => {
                    let (job, warmed) = warm_estimator_job(
                        model,
                        score,
                        spec.beta,
                        spec.horizon,
                        resolved,
                        control,
                        &entry,
                        seed,
                        width,
                        fp,
                    );
                    (job, if warmed { "warm" } else { "cold" })
                }
                ReusePlan::Cold => {
                    let job = estimator_job(
                        model,
                        score,
                        spec.beta,
                        spec.horizon,
                        resolved,
                        control,
                        seed,
                        width,
                        Some(fp),
                    );
                    (job, "cold")
                }
            }
        }

        let control = target_control(spec.target_re);
        // Per-query batch width: the spec's, falling back to the pool's;
        // `auto` (from either) resolves to a concrete width here so the
        // job is built with the width it will run at.
        let (width, _) = self.width_for(spec, plans, scheduler.config().batch_width);
        let priority = spec.options.priority;
        let tenant = tenant_of(scheduler, spec);
        let store = plans.store.as_deref();
        let fp = plans.fingerprint;
        let Runner { model, score } = *self;
        if !spec.method.needs_plan() {
            let (job, shard_reuse) = route(
                model,
                score,
                spec,
                &ResolvedMethod::Srs,
                control,
                seed,
                width,
                store,
                fp,
            );
            return Ok(SubmitOutcome {
                id: scheduler.submit_query_as(job, priority, tenant),
                plan_source: "none",
                shard_reuse,
            });
        }
        // Warm plan: dispatch the concrete estimator immediately. Cold
        // plan: admit a deferred job whose *first slice* derives the
        // plan (single-flight through the shared cache), so a cold
        // submit never blocks the caller on the pilot.
        match plans
            .cache
            .lookup_traced(fp, BALANCED_PLAN_KEY, spec.levels)
        {
            Some(lookup) => {
                let resolved = resolve_method(spec.method, Some(&lookup));
                let (job, shard_reuse) = route(
                    model, score, spec, &resolved, control, seed, width, store, fp,
                );
                Ok(SubmitOutcome {
                    id: scheduler.submit_query_as(job, priority, tenant),
                    plan_source: "hit",
                    shard_reuse,
                })
            }
            None => {
                let job = Box::new(DeferredPlanQuery::new(
                    model,
                    score,
                    spec.beta,
                    spec.horizon,
                    spec.method,
                    spec.levels,
                    control,
                    seed,
                    width,
                    Arc::clone(&plans.cache),
                    fp,
                ));
                Ok(SubmitOutcome {
                    id: scheduler.submit_query_as(job, priority, tenant),
                    plan_source: "miss",
                    shard_reuse: if store.is_some() { "cold" } else { "none" },
                })
            }
        }
    }

    fn rank_arm(
        self: Box<Self>,
        spec: &QuerySpec,
        seed: u64,
        plans: &PlanContext,
        default_width: usize,
    ) -> Result<(Box<dyn SliceableQuery>, &'static str), DbError> {
        let control = target_control(spec.target_re);
        let (width, _) = self.width_for(spec, plans, default_width);
        let fp = plans.fingerprint;
        let Runner { model, score } = *self;
        if !spec.method.needs_plan() {
            let job = estimator_job(
                model,
                score,
                spec.beta,
                spec.horizon,
                &ResolvedMethod::Srs,
                control,
                seed,
                width,
                None,
            );
            return Ok((job, "none"));
        }
        match plans
            .cache
            .lookup_traced(fp, BALANCED_PLAN_KEY, spec.levels)
        {
            Some(lookup) => {
                let resolved = resolve_method(spec.method, Some(&lookup));
                let job = estimator_job(
                    model,
                    score,
                    spec.beta,
                    spec.horizon,
                    &resolved,
                    control,
                    seed,
                    width,
                    None,
                );
                Ok((job, "hit"))
            }
            None => {
                let job = Box::new(DeferredPlanQuery::new(
                    model,
                    score,
                    spec.beta,
                    spec.horizon,
                    spec.method,
                    spec.levels,
                    control,
                    seed,
                    width,
                    Arc::clone(&plans.cache),
                    fp,
                ));
                Ok((job, "miss"))
            }
        }
    }

    fn resume(
        self: Box<Self>,
        scheduler: &Scheduler,
        spec: &QuerySpec,
        seed: u64,
        plans: &PlanContext,
        method: &str,
        entry: &StoredShard,
    ) -> Result<SubmitOutcome, DbError> {
        let control = target_control(spec.target_re);
        let (width, _) = self.width_for(spec, plans, scheduler.config().batch_width);
        // Rebuild the resolved method the checkpoint was cut under. The
        // plan must come from the (replay-seeded) cache: deriving a
        // fresh one could shift level boundaries and desync the shard.
        let resolved = match method {
            "srs" => Some(ResolvedMethod::Srs),
            "smlss" | "gmlss" => plans
                .cache
                .lookup_traced(plans.fingerprint, BALANCED_PLAN_KEY, spec.levels)
                .map(|l| {
                    if method == "smlss" {
                        ResolvedMethod::SMlss(l.plan)
                    } else {
                        ResolvedMethod::GMlss(l.plan)
                    }
                }),
            _ => None,
        };
        let Some(resolved) = resolved else {
            // Plan lost with the log tail (or a non-SQL estimator):
            // cold rerun from the recorded seed.
            return self.submit(scheduler, spec, seed, plans);
        };
        let Runner { model, score } = *self;
        let (job, _warmed) = warm_estimator_job(
            model,
            score,
            spec.beta,
            spec.horizon,
            &resolved,
            control,
            entry,
            seed,
            width,
            plans.fingerprint,
        );
        Ok(SubmitOutcome {
            id: scheduler.submit_query_as(job, spec.options.priority, tenant_of(scheduler, spec)),
            plan_source: "hit",
            shard_reuse: "warm",
        })
    }

    fn resolve_plan(
        &self,
        spec: &QuerySpec,
        plans: &PlanContext,
        rng: &mut SimRng,
    ) -> Result<PlanResolution, DbError> {
        if !spec.method.needs_plan() {
            return Ok(PlanResolution {
                resolved: ResolvedMethod::Srs,
                tau_hint: f64::NAN,
                plan_source: "none",
            });
        }
        let (lookup, src) = self.plan_for(spec, plans, rng);
        Ok(PlanResolution {
            resolved: resolve_method(spec.method, Some(&lookup)),
            tau_hint: lookup.tau_hint,
            plan_source: src,
        })
    }

    fn resolve_width(
        &self,
        spec: &QuerySpec,
        plans: &PlanContext,
        default_width: usize,
    ) -> (usize, &'static str) {
        self.width_for(spec, plans, default_width)
    }

    fn materialize(
        &self,
        db: &Database,
        dest: &str,
        horizon: u64,
        n_paths: u64,
        batch_width: usize,
        rng: &mut SimRng,
    ) -> Result<i64, DbError> {
        let width = batch_width.max(1);
        let mut total = 0i64;
        let mut pid = 0u64;
        while pid < n_paths {
            let k = width.min((n_paths - pid) as usize);
            // One child stream per path, split in path order: the rows
            // for path i are a function of i alone, never of the cohort
            // width — `batch_width` is purely a throughput knob.
            let mut rngs: Vec<SimRng> = (0..k).map(|_| split_rng(rng)).collect();
            let mut lanes: Vec<M::State> = (0..k).map(|_| self.model.initial_state()).collect();
            let alive: Vec<usize> = (0..k).collect();
            let mut traces: Vec<Vec<f64>> = lanes
                .iter()
                .map(|s| {
                    let mut trace = Vec::with_capacity(horizon as usize + 1);
                    trace.push(self.score.score(s));
                    trace
                })
                .collect();
            let mut ts = vec![0u64; k];
            for t in 1..=horizon {
                ts.iter_mut().for_each(|x| *x = t);
                self.model.step_batch(&mut lanes, &ts, &mut rngs, &alive);
                for (trace, s) in traces.iter_mut().zip(&lanes) {
                    trace.push(self.score.score(s));
                }
            }
            for (i, trace) in traces.iter().enumerate() {
                let path_id = (pid + i as u64) as i64;
                let rows = trace.iter().enumerate().map(|(t, v)| {
                    vec![Value::Int(path_id), Value::Int(t as i64), Value::Float(*v)]
                });
                total += db.insert_many(dest, rows)? as i64;
            }
            pid += k as u64;
        }
        Ok(total)
    }
}

type ModelBuilder = fn(&BTreeMap<String, f64>, u64) -> Result<Box<dyn ModelRunner>, DbError>;

/// Registry mapping model names to their named-parameter [`ModelSchema`]
/// plus a builder over the effective parameter map — the SQL layer's
/// pluggable catalog of stochastic substrates. The schema drives
/// override validation, `SHOW MODELS`, and `seed_default_models`.
pub struct ModelRegistry {
    entries: BTreeMap<&'static str, (ModelSchema, ModelBuilder)>,
}

fn markov_state_score(s: &usize) -> f64 {
    *s as f64
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::with_builtins()
    }
}

impl ModelRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self {
            entries: BTreeMap::new(),
        }
    }

    /// Registry preloaded with every `mlss_models` substrate.
    pub fn with_builtins() -> Self {
        let mut r = Self::new();
        r.register(
            ModelSchema::new(
                "queue",
                "tandem M/M/1 queues; score = second queue length",
                vec![
                    ParamSpec::float("arrival_rate", 0.5, 1e-9, 1e6, "Poisson arrival rate"),
                    ParamSpec::float("service_rate1", 0.5, 1e-9, 1e6, "station-1 service rate"),
                    ParamSpec::float("service_rate2", 0.5, 1e-9, 1e6, "station-2 service rate"),
                ],
            ),
            |p, _| {
                Ok(Box::new(Runner {
                    model: TandemQueue::new(
                        need(p, "arrival_rate")?,
                        need(p, "service_rate1")?,
                        need(p, "service_rate2")?,
                    ),
                    score: queue2_score,
                }))
            },
        );
        r.register(
            ModelSchema::new(
                "cpp",
                "compound-Poisson insurance surplus; score = deficit below 0",
                vec![
                    ParamSpec::float("initial", 15.0, 0.0, 1e12, "initial surplus"),
                    ParamSpec::float("premium", 4.5, 0.0, 1e6, "premium income per step"),
                    ParamSpec::float("intensity", 0.8, 1e-9, 1e6, "claim arrival intensity"),
                    ParamSpec::float("jump_lo", 5.0, 0.0, 1e9, "claim size lower bound"),
                    ParamSpec::float("jump_hi", 10.0, 0.0, 1e9, "claim size upper bound"),
                ],
            ),
            |p, _| {
                Ok(Box::new(Runner {
                    model: CompoundPoisson::new(
                        need(p, "initial")?,
                        need(p, "premium")?,
                        need(p, "intensity")?,
                        JumpDistribution::Uniform {
                            lo: need(p, "jump_lo")?,
                            hi: need(p, "jump_hi")?,
                        },
                    ),
                    score: surplus_score,
                }))
            },
        );
        r.register(
            ModelSchema::new(
                "walk",
                "±1 lattice random walk; score = position",
                vec![
                    ParamSpec::float("up", 0.3, 0.0, 1.0, "up-step probability"),
                    ParamSpec::float("down", 0.3, 0.0, 1.0, "down-step probability"),
                    ParamSpec::int("start", 0.0, -1e9, 1e9, "starting position"),
                    ParamSpec::flag("reflect", 1.0, "reflect at 0 instead of absorbing"),
                ],
            ),
            |p, _| {
                let mut walk = RandomWalk::new(
                    opt(p, "up", 0.3),
                    opt(p, "down", 0.3),
                    opt(p, "start", 0.0) as i64,
                );
                if opt(p, "reflect", 1.0) != 0.0 {
                    walk = walk.reflected();
                }
                Ok(Box::new(Runner {
                    model: walk,
                    score: position_score,
                }))
            },
        );
        r.register(
            ModelSchema::new(
                "gbm",
                "geometric Brownian motion; score = price",
                vec![
                    ParamSpec::float("initial", 525.0, 1e-9, 1e12, "initial price"),
                    ParamSpec::float("drift", 0.25, -100.0, 100.0, "annualized drift"),
                    ParamSpec::float("volatility", 0.28, 0.0, 100.0, "annualized volatility"),
                    ParamSpec::float("dt", 1.0 / 252.0, 1e-9, 1e3, "time increment per step"),
                ],
            ),
            |p, _| {
                Ok(Box::new(Runner {
                    model: GeometricBrownian::new(
                        opt(p, "initial", 525.0),
                        opt(p, "drift", 0.25),
                        opt(p, "volatility", 0.28),
                        opt(p, "dt", 1.0 / 252.0),
                    ),
                    score: price_score,
                }))
            },
        );
        r.register(
            ModelSchema::new(
                "ar",
                "AR(1) autoregressive process; score = value",
                vec![
                    ParamSpec::float("phi", 0.7, -1.0, 1.0, "autoregression coefficient"),
                    ParamSpec::float("sigma", 1.0, 0.0, 1e6, "innovation std deviation"),
                    ParamSpec::float("initial", 0.0, -1e9, 1e9, "starting value"),
                ],
            ),
            |p, _| {
                Ok(Box::new(Runner {
                    model: ArModel::ar1(
                        opt(p, "phi", 0.7),
                        opt(p, "sigma", 1.0),
                        opt(p, "initial", 0.0),
                    ),
                    score: ar_value_score,
                }))
            },
        );
        r.register(
            ModelSchema::new(
                "markov",
                "birth-death Markov chain; score = state index",
                vec![
                    ParamSpec::int("states", 32.0, 2.0, 1e6, "number of states"),
                    ParamSpec::float("p_up", 0.3, 0.0, 1.0, "up-transition probability"),
                    ParamSpec::float("p_down", 0.3, 0.0, 1.0, "down-transition probability"),
                    ParamSpec::int("initial", 0.0, 0.0, 1e6, "starting state"),
                ],
            ),
            |p, _| {
                let states = opt(p, "states", 32.0).max(2.0) as usize;
                Ok(Box::new(Runner {
                    model: MarkovChain::birth_death(
                        states,
                        opt(p, "p_up", 0.3),
                        opt(p, "p_down", 0.3),
                        (opt(p, "initial", 0.0).max(0.0) as usize).min(states - 1),
                    ),
                    score: markov_state_score,
                }))
            },
        );
        r.register(
            ModelSchema::new(
                "network",
                "series queueing network; score = last-station queue length",
                vec![
                    ParamSpec::float("arrival_rate", 0.4, 1e-9, 1e6, "external arrival rate"),
                    ParamSpec::int("stations", 3.0, 1.0, 1024.0, "stations in series"),
                    ParamSpec::float("service_rate", 0.5, 1e-9, 1e6, "per-station service rate"),
                ],
            ),
            |p, _| {
                let stations = opt(p, "stations", 3.0).max(1.0) as usize;
                Ok(Box::new(Runner {
                    model: SeriesNetwork::new(
                        opt(p, "arrival_rate", 0.4),
                        vec![opt(p, "service_rate", 0.5); stations],
                    ),
                    score: last_station_score,
                }))
            },
        );
        r.register(
            ModelSchema::new(
                "volatile",
                "CPP with late-horizon impulses (§6.2 level-skipping regime)",
                vec![
                    ParamSpec::float("initial", 15.0, 0.0, 1e12, "initial surplus"),
                    ParamSpec::float("premium", 4.5, 0.0, 1e6, "premium income per step"),
                    ParamSpec::float("intensity", 0.8, 1e-9, 1e6, "claim arrival intensity"),
                    ParamSpec::float("jump_lo", 5.0, 0.0, 1e9, "claim size lower bound"),
                    ParamSpec::float("jump_hi", 10.0, 0.0, 1e9, "claim size upper bound"),
                    ParamSpec::float("impulse", 200.0, 0.0, 1e9, "impulse claim size"),
                    ParamSpec::float(
                        "impulse_prob",
                        0.005,
                        0.0,
                        1.0,
                        "per-step impulse probability",
                    ),
                ],
            ),
            |p, horizon| {
                let base = CompoundPoisson::new(
                    opt(p, "initial", 15.0),
                    opt(p, "premium", 4.5),
                    opt(p, "intensity", 0.8),
                    JumpDistribution::Uniform {
                        lo: opt(p, "jump_lo", 5.0),
                        hi: opt(p, "jump_hi", 10.0),
                    },
                );
                let impulse = opt(p, "impulse", 200.0);
                let prob = opt(p, "impulse_prob", 0.005);
                // The paper's Volatile CPP: impulses only in the last 20% of
                // the horizon — exactly the §6.2 level-skipping regime.
                Ok(Box::new(Runner {
                    model: Volatile::new(base, horizon * 8 / 10, prob, move |u: &mut f64| {
                        *u += impulse
                    }),
                    score: surplus_score,
                }))
            },
        );
        r
    }

    /// Register (or replace) a model: its parameter schema plus a
    /// builder over the effective parameter map.
    pub fn register(&mut self, schema: ModelSchema, builder: ModelBuilder) {
        self.entries.insert(schema.name, (schema, builder));
    }

    /// Registered model names.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.keys().copied().collect()
    }

    /// The parameter schema of a registered model.
    pub fn schema(&self, name: &str) -> Option<&ModelSchema> {
        self.entries.get(name).map(|(s, _)| s)
    }

    /// All registered schemas (the `SHOW MODELS` catalog and the parser's
    /// validation catalog).
    pub fn schemas(&self) -> Vec<&ModelSchema> {
        self.entries.values().map(|(s, _)| s).collect()
    }

    /// The effective parameters of a model for a spec: schema defaults,
    /// overlaid with the model's `models`-table rows, overlaid with the
    /// spec's named overrides (validated against the schema).
    pub fn effective_params(
        &self,
        db: &Database,
        spec: &QuerySpec,
    ) -> Result<BTreeMap<String, f64>, DbError> {
        let (schema, _) = self.entries.get(spec.model.as_str()).ok_or_else(|| {
            SpecError::new(SpecErrorKind::UnknownModel {
                name: spec.model.clone(),
                known: self.names().iter().map(|s| s.to_string()).collect(),
            })
        })?;
        schema.validate_overrides(&spec.params)?;
        let mut params = schema.defaults();
        params.extend(load_params(db, &spec.model));
        params.extend(spec.params.iter().map(|(k, v)| (k.clone(), *v)));
        Ok(params)
    }

    /// Build a runner for a spec from its effective parameters, plus the
    /// plan-cache fingerprint of (model name, parameters, β, horizon)
    /// and the effective parameter map itself (so callers like
    /// `EXPLAIN` don't recompute the overlay).
    #[allow(clippy::type_complexity)]
    pub fn build_spec(
        &self,
        db: &Database,
        spec: &QuerySpec,
    ) -> Result<(Box<dyn ModelRunner>, u64, BTreeMap<String, f64>), DbError> {
        let params = self.effective_params(db, spec)?;
        let (_, builder) = self
            .entries
            .get(spec.model.as_str())
            .expect("checked by effective_params");
        let fp = fingerprint(
            &spec.model,
            params.iter().map(|(k, v)| (k.as_str(), *v)),
            spec.beta,
            spec.horizon,
        );
        Ok((builder(&params, spec.horizon)?, fp, params))
    }
}

/// `mlss_estimate(model, method, beta, horizon, target_re [, threads])` —
/// the positional shim over the spec dispatch path.
struct MlssEstimate {
    models: Arc<ModelRegistry>,
    plans: Arc<PlanCache>,
    store: Option<Arc<ShardStore>>,
    wal: Option<Arc<SessionWal>>,
}

impl StoredProcedure for MlssEstimate {
    fn name(&self) -> &str {
        "mlss_estimate"
    }

    fn arity(&self) -> (usize, usize) {
        (5, 6)
    }

    fn execute(&self, db: &Database, args: &[Value], rng: &mut SimRng) -> Result<Value, DbError> {
        let proc_ = self.name();
        let mut spec = QuerySpec::new(
            arg_text(proc_, args, 0)?,
            arg_f64(proc_, args, 2)?,
            arg_i64(proc_, args, 3)?.max(0) as u64,
            arg_f64(proc_, args, 4)?,
        );
        spec.method = Method::parse(arg_text(proc_, args, 1)?).map_err(DbError::from)?;
        if arg_i64(proc_, args, 3)? < 1 {
            return Err(DbError::Proc("horizon must be ≥ 1".into()));
        }
        if let Some(v) = args.get(5) {
            let t = v.as_i64().ok_or(DbError::ProcArgType {
                proc: proc_.to_string(),
                index: 5,
                expected: "an integer (threads)",
            })?;
            if t < 1 {
                return Err(DbError::Proc("threads must be ≥ 1".into()));
            }
            spec.options.threads = t as usize;
        }
        if !(spec.target_re.is_finite() && spec.target_re > 0.0) {
            return Err(DbError::Proc("target_re must be positive".into()));
        }
        match crate::dispatch::execute_spec(
            db,
            &self.models,
            &self.plans,
            self.store.as_ref(),
            None,
            self.wal.as_deref(),
            &spec,
            rng,
        )? {
            crate::dispatch::SpecOutcome::Estimated { tau, .. } => Ok(Value::Float(tau)),
            crate::dispatch::SpecOutcome::Submitted { .. } => {
                unreachable!("sync spec cannot submit")
            }
        }
    }
}

/// `materialize_paths(model, horizon, n_paths, dest [, batch_width])`.
struct MaterializePaths {
    models: Arc<ModelRegistry>,
}

/// Default cohort width for `materialize_paths` (rows are bit-identical
/// at every width; this is a throughput default).
const MATERIALIZE_BATCH_WIDTH: usize = 64;

/// `g` invocations per candidate in a `batch_width=auto` micro-probe:
/// enough steps to fill and recycle several cohorts at the widest
/// candidate, small enough that the one-time calibration stays in the
/// low milliseconds.
const WIDTH_PROBE_BUDGET: u64 = 4096;

/// Salt XORed into the query fingerprint to seed probe streams, so the
/// throwaway calibration draws can never collide with any stream a real
/// run derives from a user seed.
const WIDTH_PROBE_SEED_SALT: u64 = 0x5749_4454_4841_5554;

/// Re-probe threshold: when a family's observed steps/root moves more
/// than this factor (either direction) from the regime its memoized
/// width probe was measured in, the probe is re-run — a short query
/// tuned narrow may want a wide cohort once its runs grow 2x deeper,
/// and vice versa.
const WIDTH_REGIME_DRIFT: f64 = 2.0;

impl StoredProcedure for MaterializePaths {
    fn name(&self) -> &str {
        "materialize_paths"
    }

    fn arity(&self) -> (usize, usize) {
        (4, 5)
    }

    fn execute(&self, db: &Database, args: &[Value], rng: &mut SimRng) -> Result<Value, DbError> {
        let proc_ = self.name();
        let model_name = arg_text(proc_, args, 0)?.to_string();
        let horizon = arg_i64(proc_, args, 1)?.max(1) as u64;
        let n_paths = arg_i64(proc_, args, 2)?.max(1) as u64;
        let dest = arg_text(proc_, args, 3)?.to_string();
        let width = match args.get(4) {
            None => MATERIALIZE_BATCH_WIDTH,
            Some(_) => {
                let w = arg_i64(proc_, args, 4)?;
                if w < 1 {
                    return Err(DbError::Proc("batch_width must be ≥ 1".into()));
                }
                w as usize
            }
        };

        let schema = Schema::new(vec![
            ColumnDef::new("path_id", DataType::Int),
            ColumnDef::new("t", DataType::Int),
            ColumnDef::new("value", DataType::Float),
        ])
        .expect("static schema");
        db.create_or_replace_table(dest.clone(), schema);

        let spec = QuerySpec::new(model_name, 0.0, horizon, 1.0);
        let (runner, _, _) = self.models.build_spec(db, &spec)?;
        let total = runner.materialize(db, &dest, horizon, n_paths, width, rng)?;
        Ok(Value::Int(total))
    }
}

/// Convenience: count rows in `results` (used by tests/examples).
pub fn results_count(db: &Database) -> Result<i64, DbError> {
    db.with_table("results", |t| {
        t.aggregate(&Aggregate::CountAll, None)
            .map(|v| v.as_i64().unwrap_or(0))
    })?
    .map_err(DbError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlss_core::rng::rng_from_seed;

    fn db() -> Database {
        let db = Database::new();
        seed_default_models(&db).unwrap();
        db
    }

    fn estimate_args(model: &str, method: &str, beta: f64, horizon: i64, re: f64) -> Vec<Value> {
        vec![
            model.into(),
            method.into(),
            beta.into(),
            Value::Int(horizon),
            re.into(),
        ]
    }

    #[test]
    fn registry_lists_builtins() {
        let r = ProcRegistry::with_builtins();
        let names = r.names();
        assert!(names.contains(&"mlss_estimate"));
        assert!(names.contains(&"materialize_paths"));
    }

    #[test]
    fn model_registry_has_all_substrates() {
        let m = ModelRegistry::with_builtins();
        for name in [
            "queue", "cpp", "walk", "gbm", "ar", "markov", "network", "volatile",
        ] {
            assert!(m.names().contains(&name), "missing model '{name}'");
            let schema = m.schema(name).unwrap();
            assert!(!schema.params.is_empty(), "{name}: empty schema");
        }
        assert!(m.names().len() >= 8);
    }

    #[test]
    fn seeded_table_matches_schema_defaults() {
        // seed_default_models writes exactly the schema defaults, so the
        // effective-parameter overlay is the identity on a fresh table
        // (and so plan-cache fingerprints are stable).
        let db = db();
        let m = ModelRegistry::with_builtins();
        for schema in m.schemas() {
            let spec = QuerySpec::new(schema.name, 1.0, 10, 0.5);
            let params = m.effective_params(&db, &spec).unwrap();
            for p in &schema.params {
                assert_eq!(params.get(p.name), Some(&p.default), "{}", p.name);
            }
        }
    }

    #[test]
    fn estimate_srs_and_mlss_agree() {
        let db = db();
        let r = ProcRegistry::with_builtins();
        let mut rng = rng_from_seed(5);
        // Loose 25% RE keeps the test fast; queue β=8, s=100.
        let tau_srs = r
            .call(
                &db,
                "mlss_estimate",
                &estimate_args("queue", "srs", 8.0, 100, 0.25),
                &mut rng,
            )
            .unwrap()
            .as_f64()
            .unwrap();
        let tau_mlss = r
            .call(
                &db,
                "mlss_estimate",
                &estimate_args("queue", "mlss", 8.0, 100, 0.25),
                &mut rng,
            )
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(tau_srs > 0.0 && tau_mlss > 0.0);
        let rel = (tau_srs - tau_mlss).abs() / tau_srs;
        assert!(rel < 1.0, "srs {tau_srs} vs mlss {tau_mlss}");
        assert_eq!(results_count(&db).unwrap(), 2);
    }

    #[test]
    fn new_methods_and_models_estimate() {
        let db = db();
        let r = ProcRegistry::with_builtins();
        let mut rng = rng_from_seed(6);
        // Every (model, method) pair below must produce a probability.
        // Note: s-MLSS is paired with a continuous-state model (AR). On
        // coarse discrete scores a balanced plan can create levels no
        // state value lands in; s-MLSS then never advances — the paper's
        // §6.2 "blindly applied s-MLSS" failure, reproduced in
        // tests/volatile_bias.rs. g-MLSS/auto handle those via skips.
        let cases: Vec<(&str, &str, f64, i64)> = vec![
            ("walk", "srs", 5.0, 50),
            ("walk", "auto", 5.0, 50),
            ("markov", "srs", 5.0, 50),
            ("ar", "smlss", 3.0, 40),
            ("ar", "gmlss", 3.0, 40),
            ("network", "auto", 5.0, 60),
            ("volatile", "mlss", 25.0, 80),
            ("gbm", "srs", 550.0, 30),
        ];
        let n_cases = cases.len() as i64;
        for (model, method, beta, horizon) in cases {
            let tau = r
                .call(
                    &db,
                    "mlss_estimate",
                    &estimate_args(model, method, beta, horizon, 0.5),
                    &mut rng,
                )
                .unwrap_or_else(|e| panic!("{model}/{method}: {e}"))
                .as_f64()
                .unwrap();
            assert!(
                (0.0..=1.0).contains(&tau),
                "{model}/{method}: τ̂={tau} out of range"
            );
        }
        assert_eq!(results_count(&db).unwrap(), n_cases);
    }

    #[test]
    fn threads_argument_routes_through_parallel_driver() {
        let db = db();
        let r = ProcRegistry::with_builtins();
        let mut rng = rng_from_seed(7);
        let mut args = estimate_args("walk", "srs", 6.0, 60, 0.3);
        args.push(Value::Int(2));
        let tau = r
            .call(&db, "mlss_estimate", &args, &mut rng)
            .unwrap()
            .as_f64()
            .unwrap();
        assert!((0.0..=1.0).contains(&tau));
        // Bad thread counts are rejected.
        let mut bad = estimate_args("walk", "srs", 6.0, 60, 0.3);
        bad.push(Value::Int(0));
        assert!(r.call(&db, "mlss_estimate", &bad, &mut rng).is_err());
    }

    #[test]
    fn estimate_validates_arguments() {
        let db = db();
        let r = ProcRegistry::with_builtins();
        let mut rng = rng_from_seed(1);
        let bad = estimate_args("queue", "nope", 8.0, 10, 0.5);
        assert!(matches!(
            r.call(&db, "mlss_estimate", &bad, &mut rng),
            Err(DbError::Spec(SpecError {
                kind: SpecErrorKind::UnknownMethod { .. },
                ..
            }))
        ));
        let bad2 = estimate_args("mystery", "srs", 8.0, 10, 0.5);
        assert!(matches!(
            r.call(&db, "mlss_estimate", &bad2, &mut rng),
            Err(DbError::Spec(SpecError {
                kind: SpecErrorKind::UnknownModel { .. },
                ..
            }))
        ));
        assert!(r.call(&db, "missing_proc", &[], &mut rng).is_err());
    }

    #[test]
    fn unknown_proc_is_a_distinct_error() {
        let db = db();
        let r = ProcRegistry::with_builtins();
        let mut rng = rng_from_seed(1);
        match r.call(&db, "no_such_proc", &[], &mut rng) {
            Err(DbError::UnknownProc(name)) => assert_eq!(name, "no_such_proc"),
            other => panic!("expected UnknownProc, got {other:?}"),
        }
    }

    #[test]
    fn bad_arity_is_a_distinct_error() {
        let db = db();
        let r = ProcRegistry::with_builtins();
        let mut rng = rng_from_seed(1);
        // Too few arguments for mlss_estimate (needs 5..=6).
        match r.call(&db, "mlss_estimate", &["queue".into()], &mut rng) {
            Err(DbError::ProcArity {
                proc,
                expected,
                got,
            }) => {
                assert_eq!(proc, "mlss_estimate");
                assert_eq!(expected, "5..=6");
                assert_eq!(got, 1);
            }
            other => panic!("expected ProcArity, got {other:?}"),
        }
        // Too many arguments for materialize_paths (needs 4..=5).
        let too_many: Vec<Value> = vec![
            "cpp".into(),
            Value::Int(10),
            Value::Int(2),
            "t".into(),
            Value::Int(8),
            Value::Int(99),
        ];
        match r.call(&db, "materialize_paths", &too_many, &mut rng) {
            Err(DbError::ProcArity {
                proc,
                expected,
                got,
            }) => {
                assert_eq!(proc, "materialize_paths");
                assert_eq!(expected, "4..=5");
                assert_eq!(got, 6);
            }
            other => panic!("expected ProcArity, got {other:?}"),
        }
    }

    #[test]
    fn bad_arg_type_is_a_distinct_error() {
        let db = db();
        let r = ProcRegistry::with_builtins();
        let mut rng = rng_from_seed(1);
        // Argument 0 must be text, not an integer.
        let mut bad = estimate_args("queue", "srs", 8.0, 10, 0.5);
        bad[0] = Value::Int(1);
        match r.call(&db, "mlss_estimate", &bad, &mut rng) {
            Err(DbError::ProcArgType {
                proc,
                index,
                expected,
            }) => {
                assert_eq!(proc, "mlss_estimate");
                assert_eq!(index, 0);
                assert_eq!(expected, "text");
            }
            other => panic!("expected ProcArgType, got {other:?}"),
        }
        // Argument 3 (horizon) must be an integer, not text.
        let mut bad = estimate_args("queue", "srs", 8.0, 10, 0.5);
        bad[3] = "soon".into();
        match r.call(&db, "mlss_estimate", &bad, &mut rng) {
            Err(DbError::ProcArgType { index: 3, .. }) => {}
            other => panic!("expected ProcArgType at index 3, got {other:?}"),
        }
        // The variants display distinct, useful messages.
        let msgs = [
            DbError::UnknownProc("p".into()).to_string(),
            DbError::ProcArity {
                proc: "p".into(),
                expected: "4".into(),
                got: 2,
            }
            .to_string(),
            DbError::ProcArgType {
                proc: "p".into(),
                index: 1,
                expected: "text",
            }
            .to_string(),
            DbError::Spec(SpecError::new(SpecErrorKind::MissingClause {
                clause: "beta",
            }))
            .to_string(),
        ];
        for (i, a) in msgs.iter().enumerate() {
            for b in msgs.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn repeated_estimates_hit_the_plan_cache() {
        let db = db();
        let plans = Arc::new(PlanCache::new());
        let r = ProcRegistry::with_builtins_cached(Arc::clone(&plans));
        let mut rng = rng_from_seed(12);
        for _ in 0..3 {
            let tau = r
                .call(
                    &db,
                    "mlss_estimate",
                    &estimate_args("ar", "gmlss", 3.0, 40, 0.5),
                    &mut rng,
                )
                .unwrap()
                .as_f64()
                .unwrap();
            assert!((0.0..=1.0).contains(&tau));
        }
        assert_eq!(plans.misses(), 1, "one pilot for three identical queries");
        assert_eq!(plans.hits(), 2);
        // A different β is a different fingerprint → new entry.
        r.call(
            &db,
            "mlss_estimate",
            &estimate_args("ar", "gmlss", 4.0, 40, 0.5),
            &mut rng,
        )
        .unwrap();
        assert_eq!(plans.misses(), 2);
    }

    #[test]
    fn results_rows_record_plan_cache_provenance() {
        let db = db();
        let r = ProcRegistry::with_builtins();
        let mut rng = rng_from_seed(31);
        // SRS needs no plan; first gmlss misses; second gmlss hits.
        for (model, method) in [("walk", "srs"), ("ar", "gmlss"), ("ar", "gmlss")] {
            r.call(
                &db,
                "mlss_estimate",
                &estimate_args(model, method, 3.0, 40, 0.5),
                &mut rng,
            )
            .unwrap();
        }
        let rows: Vec<(String, String)> = db
            .with_table("results", |t| {
                t.scan()
                    .map(|row| {
                        (
                            row[9].as_str().unwrap().to_string(),
                            row[10].as_str().unwrap().to_string(),
                        )
                    })
                    .collect()
            })
            .unwrap();
        let sources: Vec<&str> = rows.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(sources, vec!["none", "miss", "hit"]);
        // No store attached to the bare proc registry: every row says so.
        assert!(rows.iter().all(|(_, r)| r == "none"), "{rows:?}");
    }

    #[test]
    fn materialize_paths_writes_rows() {
        let db = db();
        let r = ProcRegistry::with_builtins();
        let mut rng = rng_from_seed(9);
        let args: Vec<Value> = vec![
            "cpp".into(),
            Value::Int(50),
            Value::Int(3),
            "cpp_paths".into(),
        ];
        let n = r
            .call(&db, "materialize_paths", &args, &mut rng)
            .unwrap()
            .as_i64()
            .unwrap();
        assert_eq!(n, 3 * 51);
        let stored = db.with_table("cpp_paths", |t| t.len()).unwrap();
        assert_eq!(stored as i64, n);
    }

    #[test]
    fn materialize_paths_supports_registry_models() {
        let db = db();
        let r = ProcRegistry::with_builtins();
        let mut rng = rng_from_seed(10);
        for model in ["walk", "gbm", "markov"] {
            let args: Vec<Value> = vec![
                model.into(),
                Value::Int(20),
                Value::Int(2),
                format!("{model}_paths").into(),
            ];
            let n = r
                .call(&db, "materialize_paths", &args, &mut rng)
                .unwrap()
                .as_i64()
                .unwrap();
            assert_eq!(n, 2 * 21, "{model}: wrong row count");
        }
    }

    #[test]
    fn materialize_paths_is_bit_identical_across_widths() {
        // One RNG stream per path, split in path order ⇒ the materialized
        // rows are a function of the path id alone, never of the cohort
        // width. Widths 1, 3, and 64 must write identical tables.
        let r = ProcRegistry::with_builtins();
        let mut tables: Vec<Vec<Vec<Value>>> = Vec::new();
        for width in [1i64, 3, 64] {
            let db = db();
            let mut rng = rng_from_seed(40);
            let args: Vec<Value> = vec![
                "gbm".into(),
                Value::Int(30),
                Value::Int(5),
                "paths".into(),
                Value::Int(width),
            ];
            let n = r
                .call(&db, "materialize_paths", &args, &mut rng)
                .unwrap()
                .as_i64()
                .unwrap();
            assert_eq!(n, 5 * 31);
            tables.push(
                db.with_table("paths", |t| t.scan().map(|r| r.to_vec()).collect())
                    .unwrap(),
            );
        }
        assert_eq!(tables[0], tables[1], "width 1 vs 3");
        assert_eq!(tables[0], tables[2], "width 1 vs 64");
        // Bad widths are rejected.
        let db = db();
        let mut rng = rng_from_seed(41);
        let bad: Vec<Value> = vec![
            "gbm".into(),
            Value::Int(10),
            Value::Int(2),
            "p".into(),
            Value::Int(0),
        ];
        assert!(r.call(&db, "materialize_paths", &bad, &mut rng).is_err());
    }

    #[test]
    fn spec_overrides_reach_the_model() {
        // A named override must change the simulated process: a walk with
        // up=0.9 reaches β=5 within 50 steps far more often than the
        // default up=0.3.
        let db = db();
        let models = ModelRegistry::with_builtins();
        let plans = Arc::new(PlanCache::new());
        let mut spec = QuerySpec::new("walk", 5.0, 50, 0.3).with_method(Method::Srs);
        spec.params.insert("up".into(), 0.9);
        spec.params.insert("down".into(), 0.05);
        let mut rng = rng_from_seed(50);
        let out =
            crate::dispatch::execute_spec(&db, &models, &plans, None, None, None, &spec, &mut rng)
                .unwrap();
        let crate::dispatch::SpecOutcome::Estimated { tau: hot, .. } = out else {
            panic!("sync spec");
        };
        let base = QuerySpec::new("walk", 5.0, 50, 0.3).with_method(Method::Srs);
        let out =
            crate::dispatch::execute_spec(&db, &models, &plans, None, None, None, &base, &mut rng)
                .unwrap();
        let crate::dispatch::SpecOutcome::Estimated { tau: cold, .. } = out else {
            panic!("sync spec");
        };
        assert!(hot > cold, "override ignored: hot={hot} cold={cold}");
        // Unknown override names and out-of-range values are typed errors.
        let mut bad = base.clone();
        bad.params.insert("nope".into(), 1.0);
        assert!(matches!(
            models.effective_params(&db, &bad),
            Err(DbError::Spec(SpecError {
                kind: SpecErrorKind::UnknownParam { .. },
                ..
            }))
        ));
        let mut bad = base;
        bad.params.insert("up".into(), 2.0);
        assert!(matches!(
            models.effective_params(&db, &bad),
            Err(DbError::Spec(SpecError {
                kind: SpecErrorKind::ParamOutOfRange { .. },
                ..
            }))
        ));
    }
}
