//! Row-store tables with filtering, projection, ordering, and aggregation.

use crate::expr::{Expr, ExprError};
use crate::schema::{Schema, SchemaError};
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// A heap table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    schema: Schema,
    rows: Vec<Vec<Value>>,
}

/// Errors from table operations.
#[derive(Debug, Clone, PartialEq)]
pub enum TableError {
    /// Row failed schema validation.
    Schema(SchemaError),
    /// Expression failed to evaluate.
    Expr(ExprError),
    /// Unknown column in projection/ordering/aggregation.
    UnknownColumn(String),
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::Schema(e) => write!(f, "{e}"),
            TableError::Expr(e) => write!(f, "{e}"),
            TableError::UnknownColumn(c) => write!(f, "unknown column '{c}'"),
        }
    }
}

impl std::error::Error for TableError {}

impl From<SchemaError> for TableError {
    fn from(e: SchemaError) -> Self {
        TableError::Schema(e)
    }
}

impl From<ExprError> for TableError {
    fn from(e: ExprError) -> Self {
        TableError::Expr(e)
    }
}

/// Aggregate functions over a column (or `*` for count).
#[derive(Debug, Clone, PartialEq)]
pub enum Aggregate {
    /// `COUNT(*)`.
    CountAll,
    /// `COUNT(col)` (non-NULL).
    Count(String),
    /// `SUM(col)`.
    Sum(String),
    /// `AVG(col)`.
    Avg(String),
    /// `MIN(col)`.
    Min(String),
    /// `MAX(col)`.
    Max(String),
}

impl Table {
    /// Empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        Self {
            schema,
            rows: Vec::new(),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Insert one validated row.
    pub fn insert(&mut self, row: Vec<Value>) -> Result<(), TableError> {
        self.schema.check_row(&row)?;
        self.rows.push(row);
        Ok(())
    }

    /// Insert many rows; stops at the first invalid row, reporting how
    /// many were inserted.
    pub fn insert_many(
        &mut self,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> Result<usize, (usize, TableError)> {
        let mut n = 0;
        for row in rows {
            match self.insert(row) {
                Ok(()) => n += 1,
                Err(e) => return Err((n, e)),
            }
        }
        Ok(n)
    }

    /// Iterate over rows.
    pub fn scan(&self) -> impl Iterator<Item = &[Value]> {
        self.rows.iter().map(|r| r.as_slice())
    }

    /// Rows matching the predicate.
    pub fn filter(&self, pred: &Expr) -> Result<Vec<Vec<Value>>, TableError> {
        let mut out = Vec::new();
        for row in &self.rows {
            if pred.matches(&self.schema, row)? {
                out.push(row.clone());
            }
        }
        Ok(out)
    }

    /// Delete rows matching the predicate, returning the count removed.
    pub fn delete_where(&mut self, pred: &Expr) -> Result<usize, TableError> {
        let schema = &self.schema;
        let mut err = None;
        let before = self.rows.len();
        self.rows.retain(|row| match pred.matches(schema, row) {
            Ok(m) => !m,
            Err(e) => {
                err.get_or_insert(e);
                true
            }
        });
        if let Some(e) = err {
            return Err(e.into());
        }
        Ok(before - self.rows.len())
    }

    /// Project columns by name over the given rows.
    pub fn project(
        &self,
        rows: &[Vec<Value>],
        columns: &[&str],
    ) -> Result<Vec<Vec<Value>>, TableError> {
        let idx: Vec<usize> = columns
            .iter()
            .map(|c| {
                self.schema
                    .index_of(c)
                    .ok_or_else(|| TableError::UnknownColumn((*c).into()))
            })
            .collect::<Result<_, _>>()?;
        Ok(rows
            .iter()
            .map(|r| idx.iter().map(|&i| r[i].clone()).collect())
            .collect())
    }

    /// Sort rows by a column (ascending unless `desc`).
    pub fn order_by(
        &self,
        mut rows: Vec<Vec<Value>>,
        column: &str,
        desc: bool,
    ) -> Result<Vec<Vec<Value>>, TableError> {
        let i = self
            .schema
            .index_of(column)
            .ok_or_else(|| TableError::UnknownColumn(column.into()))?;
        rows.sort_by(|a, b| {
            let ord = a[i].cmp_sql(&b[i]);
            if desc {
                ord.reverse()
            } else {
                ord
            }
        });
        Ok(rows)
    }

    /// Evaluate an aggregate over rows matching `pred` (`None` = all).
    pub fn aggregate(&self, agg: &Aggregate, pred: Option<&Expr>) -> Result<Value, TableError> {
        let col_idx = |name: &str| {
            self.schema
                .index_of(name)
                .ok_or_else(|| TableError::UnknownColumn(name.into()))
        };
        let mut count = 0u64;
        let mut sum = 0.0f64;
        let mut min: Option<Value> = None;
        let mut max: Option<Value> = None;
        let idx = match agg {
            Aggregate::CountAll => None,
            Aggregate::Count(c)
            | Aggregate::Sum(c)
            | Aggregate::Avg(c)
            | Aggregate::Min(c)
            | Aggregate::Max(c) => Some(col_idx(c)?),
        };

        for row in &self.rows {
            if let Some(p) = pred {
                if !p.matches(&self.schema, row)? {
                    continue;
                }
            }
            match idx {
                None => count += 1,
                Some(i) => {
                    let v = &row[i];
                    if v.is_null() {
                        continue;
                    }
                    count += 1;
                    if let Some(x) = v.as_f64() {
                        sum += x;
                    }
                    if min
                        .as_ref()
                        .is_none_or(|m| v.cmp_sql(m) == std::cmp::Ordering::Less)
                    {
                        min = Some(v.clone());
                    }
                    if max
                        .as_ref()
                        .is_none_or(|m| v.cmp_sql(m) == std::cmp::Ordering::Greater)
                    {
                        max = Some(v.clone());
                    }
                }
            }
        }

        Ok(match agg {
            Aggregate::CountAll | Aggregate::Count(_) => Value::Int(count as i64),
            Aggregate::Sum(_) => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum)
                }
            }
            Aggregate::Avg(_) => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / count as f64)
                }
            }
            Aggregate::Min(_) => min.unwrap_or(Value::Null),
            Aggregate::Max(_) => max.unwrap_or(Value::Null),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::schema::ColumnDef;
    use crate::value::DataType::*;

    fn people() -> Table {
        let schema = Schema::new(vec![
            ColumnDef::new("id", Int),
            ColumnDef::new("name", Text),
            ColumnDef::new("age", Int).nullable(),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        t.insert(vec![1i64.into(), "ann".into(), 34i64.into()])
            .unwrap();
        t.insert(vec![2i64.into(), "bob".into(), 28i64.into()])
            .unwrap();
        t.insert(vec![3i64.into(), "cat".into(), Value::Null])
            .unwrap();
        t.insert(vec![4i64.into(), "dan".into(), 41i64.into()])
            .unwrap();
        t
    }

    #[test]
    fn insert_validates() {
        let mut t = people();
        assert!(t
            .insert(vec![5i64.into(), "eve".into(), 30i64.into()])
            .is_ok());
        assert!(t
            .insert(vec!["oops".into(), "eve".into(), 30i64.into()])
            .is_err());
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn filter_and_project() {
        let t = people();
        let rows = t.filter(&col("age").ge(lit(30i64))).unwrap();
        assert_eq!(rows.len(), 2); // NULL age excluded by 3VL
        let names = t.project(&rows, &["name"]).unwrap();
        let got: Vec<String> = names
            .iter()
            .map(|r| r[0].as_str().unwrap().to_string())
            .collect();
        assert_eq!(got, vec!["ann", "dan"]);
    }

    #[test]
    fn order_and_limit_style() {
        let t = people();
        let rows = t.filter(&lit(true)).unwrap();
        let sorted = t.order_by(rows, "age", true).unwrap();
        // NULL sorts first ascending → last on descending.
        assert_eq!(sorted[0][1], Value::Text("dan".into()));
        assert_eq!(sorted.last().unwrap()[1], Value::Text("cat".into()));
    }

    #[test]
    fn aggregates() {
        let t = people();
        assert_eq!(
            t.aggregate(&Aggregate::CountAll, None).unwrap(),
            Value::Int(4)
        );
        assert_eq!(
            t.aggregate(&Aggregate::Count("age".into()), None).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            t.aggregate(&Aggregate::Sum("age".into()), None).unwrap(),
            Value::Float(103.0)
        );
        assert_eq!(
            t.aggregate(&Aggregate::Min("age".into()), None).unwrap(),
            Value::Int(28)
        );
        assert_eq!(
            t.aggregate(&Aggregate::Max("age".into()), None).unwrap(),
            Value::Int(41)
        );
        let avg = t
            .aggregate(
                &Aggregate::Avg("age".into()),
                Some(&col("id").le(lit(2i64))),
            )
            .unwrap();
        assert_eq!(avg, Value::Float(31.0));
    }

    #[test]
    fn aggregate_over_empty_is_null() {
        let t = people();
        let none = col("id").gt(lit(100i64));
        assert_eq!(
            t.aggregate(&Aggregate::Sum("age".into()), Some(&none))
                .unwrap(),
            Value::Null
        );
        assert_eq!(
            t.aggregate(&Aggregate::CountAll, Some(&none)).unwrap(),
            Value::Int(0)
        );
    }

    #[test]
    fn delete_where_removes_matching() {
        let mut t = people();
        let n = t.delete_where(&col("age").lt(lit(35i64))).unwrap();
        assert_eq!(n, 2);
        assert_eq!(t.len(), 2); // cat (NULL) kept, dan kept
    }

    #[test]
    fn unknown_columns_error() {
        let t = people();
        assert!(t.project(&[], &["nope"]).is_err());
        assert!(t.order_by(vec![], "nope", false).is_err());
        assert!(t.aggregate(&Aggregate::Sum("nope".into()), None).is_err());
    }
}
