//! Table schemas.

use crate::value::{DataType, Value};
use serde::{Deserialize, Serialize};

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name (case-sensitive).
    pub name: String,
    /// Column type.
    pub dtype: DataType,
    /// Whether NULLs are allowed.
    pub nullable: bool,
}

impl ColumnDef {
    /// Non-nullable column.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Self {
            name: name.into(),
            dtype,
            nullable: false,
        }
    }

    /// Mark the column nullable.
    pub fn nullable(mut self) -> Self {
        self.nullable = true;
        self
    }
}

/// An ordered set of columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

/// Schema validation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SchemaError {
    /// Row arity differs from the schema.
    WrongArity {
        /// Expected column count.
        expected: usize,
        /// Provided value count.
        got: usize,
    },
    /// A value does not fit its column type.
    TypeMismatch {
        /// Offending column name.
        column: String,
    },
    /// NULL in a non-nullable column.
    NullViolation {
        /// Offending column name.
        column: String,
    },
    /// Duplicate column name at definition time.
    DuplicateColumn(String),
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemaError::WrongArity { expected, got } => {
                write!(f, "row has {got} values, schema has {expected} columns")
            }
            SchemaError::TypeMismatch { column } => {
                write!(f, "value does not fit type of column '{column}'")
            }
            SchemaError::NullViolation { column } => {
                write!(f, "NULL in non-nullable column '{column}'")
            }
            SchemaError::DuplicateColumn(c) => write!(f, "duplicate column '{c}'"),
        }
    }
}

impl std::error::Error for SchemaError {}

impl Schema {
    /// Build a schema; column names must be unique.
    pub fn new(columns: Vec<ColumnDef>) -> Result<Self, SchemaError> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|p| p.name == c.name) {
                return Err(SchemaError::DuplicateColumn(c.name.clone()));
            }
        }
        Ok(Self { columns })
    }

    /// Column definitions in order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Validate a row against the schema.
    pub fn check_row(&self, row: &[Value]) -> Result<(), SchemaError> {
        if row.len() != self.columns.len() {
            return Err(SchemaError::WrongArity {
                expected: self.columns.len(),
                got: row.len(),
            });
        }
        for (v, c) in row.iter().zip(&self.columns) {
            if v.is_null() {
                if !c.nullable {
                    return Err(SchemaError::NullViolation {
                        column: c.name.clone(),
                    });
                }
            } else if !v.fits(c.dtype) {
                return Err(SchemaError::TypeMismatch {
                    column: c.name.clone(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType::*;

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("id", Int),
            ColumnDef::new("name", Text),
            ColumnDef::new("score", Float).nullable(),
        ])
        .unwrap()
    }

    #[test]
    fn index_lookup() {
        let s = schema();
        assert_eq!(s.index_of("name"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.arity(), 3);
    }

    #[test]
    fn row_validation() {
        let s = schema();
        assert!(s
            .check_row(&[Value::Int(1), "a".into(), Value::Float(0.5)])
            .is_ok());
        assert!(s
            .check_row(&[Value::Int(1), "a".into(), Value::Null])
            .is_ok());
        assert!(matches!(
            s.check_row(&[Value::Int(1), "a".into()]),
            Err(SchemaError::WrongArity { .. })
        ));
        assert!(matches!(
            s.check_row(&[Value::Float(1.0), "a".into(), Value::Null]),
            Err(SchemaError::TypeMismatch { .. })
        ));
        assert!(matches!(
            s.check_row(&[Value::Null, "a".into(), Value::Null]),
            Err(SchemaError::NullViolation { .. })
        ));
    }

    #[test]
    fn duplicate_columns_rejected() {
        assert!(matches!(
            Schema::new(vec![ColumnDef::new("x", Int), ColumnDef::new("x", Int)]),
            Err(SchemaError::DuplicateColumn(_))
        ));
    }
}
