//! WAL-backed session durability: the bridge between the scheduler's
//! [`DurabilityHook`] and the [`mlss_store`] write-ahead log.
//!
//! A session opened with [`Durability::Wal`] journals every externally
//! visible event — `results` rows, plan-cache builds, shard-store
//! deposits, and the ASYNC query lifecycle (submit → periodic
//! checkpoints → done | end) — through one append-only, CRC-framed log.
//! On reopen the log is replayed: completed queries are served from
//! durable state, and interrupted ASYNC queries are **resubmitted** —
//! warm from their last durable checkpoint when one exists, cold from
//! their recorded seed otherwise. Either way a pinned-seed query
//! recovers to the same estimate bits an uninterrupted run produces
//! (the checkpoint captures the shard and the exact RNG position at a
//! slice boundary; a cold rerun replays the identical stream from the
//! seed).
//!
//! ## Ordering contract
//!
//! * `AsyncDone` is journaled from [`DurabilityHook::finishing`],
//!   which the scheduler calls **before** publishing the `Done` status
//!   — write-ahead: a result a client observed can never vanish on
//!   restart (it may be *re-derived* if the crash beat the record to
//!   disk, but then no client observed it either).
//! * Synchronous `results` rows are journaled **before** the table
//!   insert, for the same reason.
//! * Worker-side events that race submission (a query can finish
//!   before the submitting thread journals `AsyncSubmit`) are buffered
//!   per scheduler id and flushed, in arrival order, once the mapping
//!   registers — so the log always reads submit → checkpoints → done.
//! * A cancellation racing a finish journals `AsyncEnd` *after*
//!   `AsyncDone`; replay is last-wins, so the query is not resurrected
//!   and its row is not synthesized — cancel-after-finish is
//!   at-least-once, never duplicated.
//!
//! What is deliberately **not** durable: `PAUSE` state (a paused query
//! recovers as running), in-flight slices past the last checkpoint
//! (recovery re-runs them bit-identically), wall-clock `millis`
//! (latency is a measurement, not a result), and plain SQL
//! `INSERT INTO results` rows issued outside the estimation paths.

use crate::engine::DbError;
use crate::proc::Method;
use mlss_core::estimate::Estimate;
use mlss_core::estimator::Diagnostics;
use mlss_core::plan_cache::CachedPlan;
use mlss_core::scheduler::{DurabilityHook, QueryId, SliceableQuery};
use mlss_core::shard_store::{ShardKey, StoredShard};
use mlss_core::spec::{ExecMode, QuerySpec};
use mlss_store::{
    CrashPlan, FsyncPolicy, Record, ResultRow, SubmitSpec, Wal, WalOptions, WalStats,
};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Session durability mode.
#[derive(Debug, Clone, Default)]
pub enum Durability {
    /// No journal: the session state dies with the process (the
    /// pre-WAL behavior, byte-for-byte).
    #[default]
    Off,
    /// Journal through a write-ahead log in the given directory.
    Wal(WalSessionConfig),
}

/// Configuration for a WAL-backed session.
#[derive(Debug, Clone)]
pub struct WalSessionConfig {
    /// Log directory (created if missing; `snapshot.wal` + `tail.wal`).
    pub dir: PathBuf,
    /// Fsync cadence for appends.
    pub fsync: FsyncPolicy,
    /// Journal an ASYNC query checkpoint every this many committed
    /// slices (0 disables periodic checkpoints: recovery falls back to
    /// a cold rerun from the recorded seed).
    pub checkpoint_every: u64,
    /// Crash-point injection for tests: wedge the log after N records
    /// (optionally leaving a torn prefix of the next frame) while the
    /// in-memory session keeps running — a simulated `kill -9` whose
    /// recovery the test can then assert on.
    pub crash: Option<CrashPlan>,
}

impl WalSessionConfig {
    /// Durable defaults: fsync every record, checkpoint every 4 slices.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            checkpoint_every: 4,
            crash: None,
        }
    }

    /// Set the fsync policy (builder style).
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// Set the checkpoint cadence (builder style).
    pub fn with_checkpoint_every(mut self, every: u64) -> Self {
        self.checkpoint_every = every;
        self
    }

    /// Arm a crash plan (builder style; tests only).
    pub fn with_crash(mut self, crash: CrashPlan) -> Self {
        self.crash = Some(crash);
        self
    }
}

/// An ASYNC query reconstructed from the log, awaiting resubmission.
pub(crate) struct RecoveredQuery {
    /// Durable query id (for re-registering with the new log).
    pub qid: u64,
    /// The recorded submission identity.
    pub spec: SubmitSpec,
    /// Plan provenance at original submit time.
    pub plan_source: String,
    /// Shard-reuse provenance at original submit time.
    pub shard_reuse: String,
    /// Latest durable checkpoint: (resolved method, slices, state).
    pub checkpoint: Option<(String, u64, StoredShard)>,
}

/// Everything replay reconstructed, ready for the session to seed its
/// in-memory state from.
pub(crate) struct RecoveredState {
    /// `results` rows: journaled rows first, then rows synthesized from
    /// `AsyncDone` records whose table insert the crash beat.
    pub rows: Vec<ResultRow>,
    /// Plain SQL statements that mutated user tables, in log order —
    /// re-executed verbatim on open so `CREATE TABLE`/`INSERT` state
    /// survives restarts.
    pub sql: Vec<String>,
    /// Plan-cache entries: (fingerprint, method, levels, tau_hint, plan).
    pub plans: Vec<(u64, String, u64, f64, mlss_core::levels::PartitionPlan)>,
    /// Shard-store deposits, in log order.
    pub deposits: Vec<(ShardKey, StoredShard)>,
    /// Interrupted ASYNC queries to resubmit, in qid order.
    pub resubmit: Vec<RecoveredQuery>,
    /// First unused durable query id.
    pub next_qid: u64,
    /// Valid records replayed.
    pub replayed_records: u64,
}

/// In-flight replay bookkeeping for one ASYNC query.
struct PendingQuery {
    spec: SubmitSpec,
    plan_source: String,
    shard_reuse: String,
    checkpoint: Option<(String, u64, StoredShard)>,
    done: Option<(Estimate, i64)>,
}

fn parse_records(records: Vec<Record>) -> RecoveredState {
    let replayed_records = records.len() as u64;
    let mut rows = Vec::new();
    let mut sql = Vec::new();
    let mut plans = Vec::new();
    let mut deposits = Vec::new();
    let mut pending: BTreeMap<u64, PendingQuery> = BTreeMap::new();
    let mut next_qid = 1u64;
    for rec in records {
        match rec {
            Record::ResultRow(row) => rows.push(row),
            Record::PlanEntry {
                fingerprint,
                method,
                levels,
                tau_hint,
                plan,
            } => plans.push((fingerprint, method, levels, tau_hint, plan)),
            Record::ShardDeposit { key, entry } => deposits.push((key, entry)),
            Record::AsyncSubmit {
                qid,
                spec,
                plan_source,
                shard_reuse,
            } => {
                next_qid = next_qid.max(qid + 1);
                pending.insert(
                    qid,
                    PendingQuery {
                        spec,
                        plan_source,
                        shard_reuse,
                        checkpoint: None,
                        done: None,
                    },
                );
            }
            Record::AsyncCheckpoint {
                qid,
                method,
                slices,
                entry,
            } => {
                if let Some(p) = pending.get_mut(&qid) {
                    p.checkpoint = Some((method, slices, entry));
                }
            }
            Record::AsyncDone {
                qid,
                estimate,
                millis,
            } => {
                if let Some(p) = pending.get_mut(&qid) {
                    p.done = Some((estimate, millis));
                }
            }
            // Last-wins: an end record suppresses the query entirely,
            // even after a done record (cancel raced the finish).
            Record::AsyncEnd { qid } => {
                pending.remove(&qid);
            }
            Record::SqlStatement { sql: stmt } => sql.push(stmt),
        }
    }
    let mut resubmit = Vec::new();
    for (qid, p) in pending {
        match p.done {
            Some((est, millis)) => rows.push(ResultRow {
                model: p.spec.model.clone(),
                method: p.spec.method.clone(),
                beta: p.spec.beta,
                horizon: p.spec.horizon as i64,
                tau: est.tau,
                variance: est.variance,
                steps: est.steps as i64,
                n_roots: est.n_roots as i64,
                millis,
                plan_source: p.plan_source.clone(),
                shard_reuse: p.shard_reuse.clone(),
                tenant: p.spec.tenant.clone().unwrap_or_else(|| "-".into()),
            }),
            None => resubmit.push(RecoveredQuery {
                qid,
                spec: p.spec,
                plan_source: p.plan_source,
                shard_reuse: p.shard_reuse,
                checkpoint: p.checkpoint,
            }),
        }
    }
    RecoveredState {
        rows,
        sql,
        plans,
        deposits,
        resubmit,
        next_qid,
        replayed_records,
    }
}

/// Rebuild the [`QuerySpec`] an ASYNC submission ran under from its
/// durable identity. Pinned-ness is preserved exactly — reuse routing
/// depends on it.
pub(crate) fn rebuild_spec(sub: &SubmitSpec) -> Result<QuerySpec, DbError> {
    let mut spec = QuerySpec::new(sub.model.clone(), sub.beta, sub.horizon, sub.target_re);
    spec.method = Method::parse(&sub.method).map_err(DbError::from)?;
    spec.levels = sub.levels as usize;
    spec.params = sub.params.iter().cloned().collect();
    spec.options.priority = sub.priority;
    spec.options.batch_width = sub.batch_width.map(|w| w as usize);
    spec.options.seed = sub.pinned_seed;
    spec.options.mode = ExecMode::Async;
    spec.options.tenant = sub.tenant.clone();
    Ok(spec)
}

/// Intern a recorded provenance string back to the `&'static str` set
/// the live submit paths use; unknown spellings degrade to `"none"`.
pub(crate) fn intern_provenance(s: &str) -> &'static str {
    match s {
        "hit" => "hit",
        "miss" => "miss",
        "cold" => "cold",
        "warm" => "warm",
        "stored" => "stored",
        _ => "none",
    }
}

/// A worker-side event that arrived before its query's `AsyncSubmit`
/// was journaled; replayed in order once the mapping registers.
enum Orphan {
    Checkpoint {
        method: String,
        slices: u64,
        entry: StoredShard,
    },
    Finished {
        est: Estimate,
    },
    Discarded,
}

struct ActiveQuery {
    submitted: Instant,
}

/// Scheduler-id ↔ durable-qid bookkeeping. Lock order: `active` is
/// held **across** WAL appends (the WAL's internal lock nests inside),
/// which is what makes the journaled lifecycle order deterministic;
/// nothing takes `active` while holding the WAL lock.
struct ActiveState {
    next_qid: u64,
    by_sched: BTreeMap<QueryId, u64>,
    queries: BTreeMap<u64, ActiveQuery>,
    /// Queries whose `AsyncDone` is already journaled, kept so a
    /// late `discarded` (cancel racing the finish) can still journal
    /// the overriding `AsyncEnd`. Bounded; oldest entries age out.
    finished: BTreeMap<QueryId, u64>,
    orphans: BTreeMap<QueryId, Vec<Orphan>>,
}

/// Finished-map bound: entries only matter for the tiny
/// cancel-racing-finish window, so aging out old ones is safe.
const FINISHED_CAP: usize = 1024;
/// Orphan-buffer bound (ids). Orphans for ids that never register —
/// e.g. raw `submit_query` jobs bypassing the session — age out.
const ORPHAN_CAP: usize = 64;

/// The session's journal: owns the [`Wal`], implements
/// [`DurabilityHook`] for the scheduler, and receives the plan-cache
/// and shard-store observer callbacks.
///
/// Hook- and observer-side appends are best-effort: an I/O error
/// cannot propagate out of a worker thread, so it is swallowed (the
/// armed [`CrashPlan`] exercises exactly this path — appends silently
/// dropped while the in-memory run continues). The session-side paths
/// (`results` rows, compaction) surface errors normally.
pub struct SessionWal {
    wal: Wal,
    checkpoint_every: u64,
    replayed_records: u64,
    replayed_rows: u64,
    resumed: u64,
    truncated: bool,
    active: Mutex<ActiveState>,
}

impl std::fmt::Debug for SessionWal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionWal")
            .field("dir", &self.wal.dir())
            .field("stats", &self.wal.stats())
            .finish_non_exhaustive()
    }
}

impl SessionWal {
    /// Open (or create) the log and replay it. Returns the journal and
    /// the reconstructed state the session must seed itself from;
    /// `replayed_rows`/`resumed` counters are finalized by
    /// [`SessionWal::note_replayed`] once the session has done so.
    pub(crate) fn open(cfg: &WalSessionConfig) -> std::io::Result<(Self, RecoveredState)> {
        let (wal, replay) = Wal::open(
            &cfg.dir,
            WalOptions {
                fsync: cfg.fsync,
                crash: cfg.crash,
            },
        )?;
        let truncated = replay.truncated;
        let state = parse_records(replay.records);
        let sw = Self {
            wal,
            checkpoint_every: cfg.checkpoint_every,
            replayed_records: state.replayed_records,
            replayed_rows: 0,
            resumed: 0,
            truncated,
            active: Mutex::new(ActiveState {
                next_qid: state.next_qid,
                by_sched: BTreeMap::new(),
                queries: BTreeMap::new(),
                finished: BTreeMap::new(),
                orphans: BTreeMap::new(),
            }),
        };
        Ok((sw, state))
    }

    /// Record how much replayed state the session actually seeded.
    pub(crate) fn note_replayed(&mut self, rows: u64, resumed: u64) {
        self.replayed_rows = rows;
        self.resumed = resumed;
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ActiveState> {
        self.active.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn append(&self, rec: &Record) {
        // Best-effort by contract (see type docs); the wedged/dropped
        // counters in `stats()` account for every suppressed append.
        let _ = self.wal.append(rec);
    }

    /// Journal an ASYNC submission and register its scheduler id.
    /// Returns the durable query id. Any worker events that raced the
    /// registration are flushed here, in arrival order.
    pub(crate) fn record_async_submit(
        &self,
        sched_id: QueryId,
        spec: &QuerySpec,
        seed: u64,
        plan_source: &str,
        shard_reuse: &str,
    ) -> u64 {
        let mut st = self.lock();
        let qid = st.next_qid;
        st.next_qid += 1;
        self.append(&Record::AsyncSubmit {
            qid,
            spec: SubmitSpec {
                model: spec.model.clone(),
                params: spec.params.iter().map(|(k, v)| (k.clone(), *v)).collect(),
                method: spec.method.name().to_string(),
                levels: spec.levels as u64,
                beta: spec.beta,
                horizon: spec.horizon,
                target_re: spec.target_re,
                priority: spec.options.priority,
                batch_width: spec.options.batch_width.map(|w| w as u64),
                pinned_seed: spec.options.seed,
                seed,
                tenant: spec.options.tenant.clone(),
            },
            plan_source: plan_source.to_string(),
            shard_reuse: shard_reuse.to_string(),
        });
        self.register_locked(&mut st, sched_id, qid);
        qid
    }

    /// Re-register a recovered query under its original durable id (no
    /// new `AsyncSubmit` record: compaction already rewrote it).
    pub(crate) fn register_recovered(&self, sched_id: QueryId, qid: u64) {
        let mut st = self.lock();
        let next = st.next_qid.max(qid + 1);
        st.next_qid = next;
        self.register_locked(&mut st, sched_id, qid);
    }

    fn register_locked(&self, st: &mut ActiveState, sched_id: QueryId, qid: u64) {
        st.queries.insert(
            qid,
            ActiveQuery {
                submitted: Instant::now(),
            },
        );
        st.by_sched.insert(sched_id, qid);
        if let Some(orphans) = st.orphans.remove(&sched_id) {
            for o in orphans {
                match o {
                    Orphan::Checkpoint {
                        method,
                        slices,
                        entry,
                    } => self.append(&Record::AsyncCheckpoint {
                        qid,
                        method,
                        slices,
                        entry,
                    }),
                    Orphan::Finished { est } => self.finish_locked(st, sched_id, &est),
                    Orphan::Discarded => self.discard_locked(st, sched_id),
                }
            }
        }
    }

    fn finish_locked(&self, st: &mut ActiveState, sched_id: QueryId, est: &Estimate) {
        let Some(qid) = st.by_sched.remove(&sched_id) else {
            return;
        };
        let millis = st
            .queries
            .remove(&qid)
            .map(|q| q.submitted.elapsed().as_millis() as i64)
            .unwrap_or(0);
        self.append(&Record::AsyncDone {
            qid,
            estimate: *est,
            millis,
        });
        st.finished.insert(sched_id, qid);
        while st.finished.len() > FINISHED_CAP {
            st.finished.pop_first();
        }
    }

    fn discard_locked(&self, st: &mut ActiveState, sched_id: QueryId) {
        let qid = match st.by_sched.remove(&sched_id) {
            Some(qid) => {
                st.queries.remove(&qid);
                qid
            }
            None => match st.finished.remove(&sched_id) {
                Some(qid) => qid,
                None => return,
            },
        };
        self.append(&Record::AsyncEnd { qid });
    }

    fn orphan(&self, st: &mut ActiveState, sched_id: QueryId, o: Orphan) {
        st.orphans.entry(sched_id).or_default().push(o);
        while st.orphans.len() > ORPHAN_CAP {
            st.orphans.pop_first();
        }
    }

    /// Journal a synchronous `results` row (write-ahead: callers append
    /// **before** the table insert). Surfaces I/O errors — a row the
    /// log refused must not become visible.
    pub(crate) fn record_result_row(&self, row: ResultRow) -> Result<(), DbError> {
        self.wal
            .append(&Record::ResultRow(row))
            .map(|_| ())
            .map_err(|e| DbError::Proc(format!("wal append failed: {e}")))
    }

    /// Journal a plain SQL statement that mutated user-table state.
    /// Callers append **after** a successful execute (a failed statement
    /// must not be replayed); the window where a crash loses the very
    /// last user-table statement is the documented at-most-once-behind
    /// contract for plain SQL — `results` rows keep the stricter
    /// write-ahead ordering.
    pub(crate) fn record_sql(&self, sql: &str) -> Result<(), DbError> {
        self.wal
            .append(&Record::SqlStatement {
                sql: sql.to_string(),
            })
            .map(|_| ())
            .map_err(|e| DbError::Proc(format!("wal append failed: {e}")))
    }

    /// Journal a fresh plan-cache build (observer callback).
    pub(crate) fn record_plan_entry(
        &self,
        fingerprint: u64,
        method: &str,
        levels: usize,
        cached: &CachedPlan,
    ) {
        self.append(&Record::PlanEntry {
            fingerprint,
            method: method.to_string(),
            levels: levels as u64,
            tau_hint: cached.tau_hint,
            plan: cached.plan.clone(),
        });
    }

    /// Journal an accepted shard-store deposit (observer callback).
    pub(crate) fn record_deposit(&self, key: &ShardKey, entry: &StoredShard) {
        self.append(&Record::ShardDeposit {
            key: key.clone(),
            entry: entry.clone(),
        });
    }

    /// Rewrite the snapshot from the given records and truncate the
    /// tail — the startup compaction, run after replayed state is
    /// seeded and before any new work is admitted.
    pub(crate) fn compact(&self, records: &[Record]) -> Result<(), DbError> {
        self.wal
            .compact(records)
            .map_err(|e| DbError::Proc(format!("wal compaction failed: {e}")))
    }

    /// Live log counters.
    pub fn stats(&self) -> WalStats {
        self.wal.stats()
    }

    /// The `SHOW DIAGNOSTICS` block: live log counters plus what the
    /// last replay reconstructed.
    pub fn diagnostics(&self) -> Diagnostics {
        let s = self.wal.stats();
        Diagnostics {
            estimator: "wal",
            skip_events: 0,
            details: vec![
                ("wal_records".into(), s.records as f64),
                ("wal_bytes".into(), s.bytes as f64),
                ("wal_fsyncs".into(), s.fsyncs as f64),
                ("wal_compactions".into(), s.compactions as f64),
                ("wal_replayed_records".into(), self.replayed_records as f64),
                ("wal_replayed_rows".into(), self.replayed_rows as f64),
                ("wal_resumed".into(), self.resumed as f64),
                ("wal_truncated".into(), self.truncated as u64 as f64),
            ],
        }
    }
}

impl DurabilityHook for SessionWal {
    fn slice_committed(&self, id: QueryId, slices: u64, job: &mut dyn SliceableQuery) {
        if self.checkpoint_every == 0 || !slices.is_multiple_of(self.checkpoint_every) {
            return;
        }
        let Some((method, entry)) = job.checkpoint() else {
            return;
        };
        let mut st = self.lock();
        match st.by_sched.get(&id).copied() {
            Some(qid) => self.append(&Record::AsyncCheckpoint {
                qid,
                method: method.to_string(),
                slices,
                entry,
            }),
            None => self.orphan(
                &mut st,
                id,
                Orphan::Checkpoint {
                    method: method.to_string(),
                    slices,
                    entry,
                },
            ),
        }
    }

    fn finishing(&self, id: QueryId, est: &Estimate) {
        let mut st = self.lock();
        if st.by_sched.contains_key(&id) {
            self.finish_locked(&mut st, id, est);
        } else {
            self.orphan(&mut st, id, Orphan::Finished { est: *est });
        }
    }

    fn discarded(&self, id: QueryId) {
        let mut st = self.lock();
        if st.by_sched.contains_key(&id) || st.finished.contains_key(&id) {
            self.discard_locked(&mut st, id);
        } else {
            self.orphan(&mut st, id, Orphan::Discarded);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submit_spec(seed: u64) -> SubmitSpec {
        SubmitSpec {
            model: "walk".into(),
            params: vec![],
            method: "srs".into(),
            levels: 4,
            beta: 6.0,
            horizon: 50,
            target_re: 0.3,
            priority: 0,
            batch_width: None,
            pinned_seed: Some(seed),
            seed,
            tenant: None,
        }
    }

    #[test]
    fn replay_synthesizes_rows_for_done_queries() {
        let est = Estimate {
            tau: 0.25,
            variance: 1e-4,
            n_roots: 100,
            steps: 5000,
            hits: 25,
        };
        let records = vec![
            Record::AsyncSubmit {
                qid: 1,
                spec: submit_spec(7),
                plan_source: "none".into(),
                shard_reuse: "cold".into(),
            },
            Record::AsyncDone {
                qid: 1,
                estimate: est,
                millis: 12,
            },
        ];
        let state = parse_records(records);
        assert_eq!(state.rows.len(), 1);
        assert!(state.resubmit.is_empty());
        assert_eq!(state.next_qid, 2);
        let row = &state.rows[0];
        assert_eq!(row.tau.to_bits(), 0.25f64.to_bits());
        assert_eq!(row.shard_reuse, "cold");
    }

    #[test]
    fn replay_end_suppresses_even_after_done() {
        let est = Estimate {
            tau: 0.5,
            variance: 1e-3,
            n_roots: 10,
            steps: 100,
            hits: 5,
        };
        let records = vec![
            Record::AsyncSubmit {
                qid: 3,
                spec: submit_spec(1),
                plan_source: "none".into(),
                shard_reuse: "none".into(),
            },
            Record::AsyncDone {
                qid: 3,
                estimate: est,
                millis: 1,
            },
            Record::AsyncEnd { qid: 3 },
        ];
        let state = parse_records(records);
        assert!(state.rows.is_empty(), "cancel overrides the finish");
        assert!(state.resubmit.is_empty());
        assert_eq!(state.next_qid, 4);
    }

    #[test]
    fn replay_keeps_interrupted_queries_for_resubmission() {
        let records = vec![Record::AsyncSubmit {
            qid: 9,
            spec: submit_spec(42),
            plan_source: "miss".into(),
            shard_reuse: "cold".into(),
        }];
        let state = parse_records(records);
        assert!(state.rows.is_empty());
        assert_eq!(state.resubmit.len(), 1);
        let q = &state.resubmit[0];
        assert_eq!(q.qid, 9);
        assert!(q.checkpoint.is_none());
        let spec = rebuild_spec(&q.spec).unwrap();
        assert_eq!(spec.options.seed, Some(42));
        assert_eq!(spec.options.mode, ExecMode::Async);
    }

    #[test]
    fn provenance_interning_covers_the_live_set() {
        for s in ["hit", "miss", "cold", "warm", "stored", "none"] {
            assert_eq!(intern_provenance(s), s);
        }
        assert_eq!(intern_provenance("wat"), "none");
    }
}
