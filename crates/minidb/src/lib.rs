//! # mlss-db
//!
//! An embedded mini-DBMS hosting the full durability-query pipeline —
//! the reproduction of the paper's "Implementations inside DBMS" (§6.4),
//! where PostgreSQL stored model parameters in tables, ran MLSS as a
//! stored procedure, and materialized sample paths for inspection.
//!
//! * [`value`] / [`schema`] — typed cells and table schemas;
//! * [`expr`] — filter/computed-column expressions with SQL
//!   three-valued-logic semantics;
//! * [`table`] — row-store tables: scan, filter, project, order,
//!   aggregate, delete;
//! * [`engine`] — the thread-safe catalog;
//! * [`storage`] — crash-safe JSON persistence with corruption recovery;
//! * [`durability`] — WAL-backed session durability: journaled results,
//!   plan-cache entries, shard deposits, and crash-recoverable ASYNC
//!   queries ([`Session::open`] replays the log);
//! * [`proc`] — stored procedures (`mlss_estimate`, `materialize_paths`)
//!   as thin shims over the spec dispatch path, plus the model registry
//!   with per-model parameter schemas;
//! * [`dispatch`] — the one compile-and-dispatch path every estimation
//!   entry point flows through ([`dispatch::execute_spec`],
//!   [`dispatch::explain_spec`], [`dispatch::show_models`]);
//! * [`session`] — concurrent serving sessions: `mlss_submit`,
//!   `mlss_poll`, `mlss_cancel` over a shared scheduler and plan cache,
//!   and [`Session::execute`] running the declarative ESTIMATE dialect;
//! * [`sql`] — a SQL front end (SELECT/INSERT/CREATE/DELETE/DROP) plus
//!   the ESTIMATE dialect parser ([`sql::estimate`]).

#![warn(missing_docs)]

pub mod dispatch;
pub mod durability;
pub mod engine;
pub mod expr;
pub mod proc;
pub mod schema;
pub mod session;
pub mod sql;
pub mod storage;
pub mod table;
pub mod value;

pub use dispatch::{
    arm_seed, execute_rank, execute_spec, explain_rank, explain_spec, show_models, standings_rows,
    RankOutcome, SpecOutcome,
};
pub use durability::{Durability, SessionWal, WalSessionConfig};
pub use engine::{Database, DbError};
pub use expr::{col, lit, Expr};
pub use proc::{seed_default_models, Method, ModelRegistry, ProcRegistry, StoredProcedure};
pub use schema::{ColumnDef, Schema};
pub use session::{DiagnosticsSource, Session, SessionConfig};
pub use sql::{execute, is_dialect, parse_dialect, DialectStatement, ExecResult};
pub use storage::{load, save, LoadReport};
pub use table::{Aggregate, Table, TableError};
pub use value::{DataType, Value};
