//! SQL tokenizer.

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword (uppercased) or bare identifier (original case).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, '' unescaped).
    Str(String),
    /// Punctuation / operator.
    Symbol(Sym),
}

/// Punctuation and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `;`
    Semi,
}

/// Tokenization error with byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Byte position in the input.
    pub at: usize,
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lex error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize SQL text.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token::Symbol(Sym::LParen));
                i += 1;
            }
            ')' => {
                out.push(Token::Symbol(Sym::RParen));
                i += 1;
            }
            ',' => {
                out.push(Token::Symbol(Sym::Comma));
                i += 1;
            }
            '*' => {
                out.push(Token::Symbol(Sym::Star));
                i += 1;
            }
            '+' => {
                out.push(Token::Symbol(Sym::Plus));
                i += 1;
            }
            '-' => {
                out.push(Token::Symbol(Sym::Minus));
                i += 1;
            }
            '/' => {
                out.push(Token::Symbol(Sym::Slash));
                i += 1;
            }
            ';' => {
                out.push(Token::Symbol(Sym::Semi));
                i += 1;
            }
            '=' => {
                out.push(Token::Symbol(Sym::Eq));
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token::Symbol(Sym::Ne));
                i += 2;
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    out.push(Token::Symbol(Sym::Le));
                    i += 2;
                }
                Some(&b'>') => {
                    out.push(Token::Symbol(Sym::Ne));
                    i += 2;
                }
                _ => {
                    out.push(Token::Symbol(Sym::Lt));
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Symbol(Sym::Ge));
                    i += 2;
                } else {
                    out.push(Token::Symbol(Sym::Gt));
                    i += 1;
                }
            }
            '\'' => {
                // String literal with '' escaping.
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(LexError {
                                at: start,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(&b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(&b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            '0'..='9' | '.' => {
                let start = i;
                let mut saw_dot = false;
                let mut saw_exp = false;
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    if b.is_ascii_digit() {
                        i += 1;
                    } else if b == '.' && !saw_dot && !saw_exp {
                        saw_dot = true;
                        i += 1;
                    } else if (b == 'e' || b == 'E') && !saw_exp && i > start {
                        saw_exp = true;
                        i += 1;
                        if matches!(bytes.get(i), Some(&b'+') | Some(&b'-')) {
                            i += 1;
                        }
                    } else {
                        break;
                    }
                }
                let text = &input[start..i];
                if saw_dot || saw_exp {
                    let v = text.parse::<f64>().map_err(|e| LexError {
                        at: start,
                        message: format!("bad float '{text}': {e}"),
                    })?;
                    out.push(Token::Float(v));
                } else {
                    let v = text.parse::<i64>().map_err(|e| LexError {
                        at: start,
                        message: format!("bad integer '{text}': {e}"),
                    })?;
                    out.push(Token::Int(v));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Token::Ident(input[start..i].to_string()));
            }
            other => {
                return Err(LexError {
                    at: i,
                    message: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_select() {
        let toks = tokenize("SELECT a, b FROM t WHERE x >= 1.5;").unwrap();
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
        assert!(toks.contains(&Token::Symbol(Sym::Ge)));
        assert!(toks.contains(&Token::Float(1.5)));
        assert_eq!(*toks.last().unwrap(), Token::Symbol(Sym::Semi));
    }

    #[test]
    fn string_escaping() {
        let toks = tokenize("'it''s'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's".into())]);
    }

    #[test]
    fn comparison_operators() {
        let toks = tokenize("< <= > >= = <> !=").unwrap();
        use Sym::*;
        let syms: Vec<Sym> = toks
            .iter()
            .map(|t| match t {
                Token::Symbol(s) => *s,
                _ => panic!(),
            })
            .collect();
        assert_eq!(syms, vec![Lt, Le, Gt, Ge, Eq, Ne, Ne]);
    }

    #[test]
    fn numbers() {
        let toks = tokenize("42 -7 3.25 1e-4").unwrap();
        assert_eq!(toks[0], Token::Int(42));
        // Leading minus is a separate symbol (unary handled by parser).
        assert_eq!(toks[1], Token::Symbol(Sym::Minus));
        assert_eq!(toks[2], Token::Int(7));
        assert_eq!(toks[3], Token::Float(3.25));
        assert_eq!(toks[4], Token::Float(1e-4));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("SELECT -- hidden\n1").unwrap();
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1], Token::Int(1));
    }

    #[test]
    fn errors_carry_position() {
        let err = tokenize("SELECT @").unwrap_err();
        assert_eq!(err.at, 7);
        let err = tokenize("'oops").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }
}
