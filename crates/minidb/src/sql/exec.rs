//! SQL execution against the [`Database`] engine.

use crate::engine::{Database, DbError};
use crate::schema::{ColumnDef, Schema};
use crate::sql::parser::{parse, Projection, SelectStmt, Statement};
use crate::value::Value;

/// Result of executing a statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecResult {
    /// Rows with named columns (SELECT).
    Rows {
        /// Output column names.
        columns: Vec<String>,
        /// Output rows.
        rows: Vec<Vec<Value>>,
    },
    /// Number of rows affected (INSERT/DELETE).
    Affected(usize),
    /// DDL acknowledged (CREATE/DROP).
    Ok,
}

impl ExecResult {
    /// Convenience accessor for SELECT results.
    pub fn rows(&self) -> &[Vec<Value>] {
        match self {
            ExecResult::Rows { rows, .. } => rows,
            _ => &[],
        }
    }

    /// First cell of the first row (common for aggregates).
    pub fn scalar(&self) -> Option<&Value> {
        self.rows().first().and_then(|r| r.first())
    }
}

/// Parse and execute one SQL statement against the database.
///
/// `ESTIMATE` dialect statements need an engine context (model registry,
/// plan cache, scheduler, RNG) and are rejected here — run them through
/// [`crate::session::Session::execute`].
pub fn execute(db: &Database, sql: &str) -> Result<ExecResult, DbError> {
    if crate::sql::estimate::is_dialect(sql) {
        return Err(DbError::Proc(
            "ESTIMATE/EXPLAIN/SHOW statements require a session (use Session::execute)".into(),
        ));
    }
    let stmt = parse(sql).map_err(|e| DbError::Proc(e.to_string()))?;
    execute_statement(db, stmt)
}

/// Execute a parsed statement.
pub fn execute_statement(db: &Database, stmt: Statement) -> Result<ExecResult, DbError> {
    match stmt {
        Statement::Select(s) => select(db, s),
        Statement::Insert { table, rows } => {
            let n = db.insert_many(&table, rows)?;
            Ok(ExecResult::Affected(n))
        }
        Statement::CreateTable { table, columns } => {
            let defs = columns
                .into_iter()
                .map(|(name, dtype, nullable)| {
                    let def = ColumnDef::new(name, dtype);
                    if nullable {
                        def.nullable()
                    } else {
                        def
                    }
                })
                .collect();
            let schema = Schema::new(defs).map_err(crate::table::TableError::Schema)?;
            db.create_table(table, schema)?;
            Ok(ExecResult::Ok)
        }
        Statement::Delete { table, predicate } => {
            let n = db.with_table_mut(&table, |t| match predicate {
                Some(p) => t.delete_where(&p),
                None => {
                    let all = crate::expr::lit(true);
                    t.delete_where(&all)
                }
            })??;
            Ok(ExecResult::Affected(n))
        }
        Statement::DropTable { table } => {
            db.drop_table(&table)?;
            Ok(ExecResult::Ok)
        }
    }
}

fn select(db: &Database, s: SelectStmt) -> Result<ExecResult, DbError> {
    db.with_table(&s.table, |t| -> Result<ExecResult, DbError> {
        // Aggregate short-circuit.
        if let Projection::Aggregate(agg) = &s.projection {
            let v = t.aggregate(agg, s.predicate.as_ref())?;
            return Ok(ExecResult::Rows {
                columns: vec![format!("{agg:?}").to_lowercase()],
                rows: vec![vec![v]],
            });
        }

        let mut rows = match &s.predicate {
            Some(p) => t.filter(p)?,
            None => t.scan().map(|r| r.to_vec()).collect(),
        };
        if let Some((col, desc)) = &s.order_by {
            rows = t.order_by(rows, col, *desc)?;
        }
        if let Some(limit) = s.limit {
            rows.truncate(limit);
        }
        match &s.projection {
            Projection::All => Ok(ExecResult::Rows {
                columns: t
                    .schema()
                    .columns()
                    .iter()
                    .map(|c| c.name.clone())
                    .collect(),
                rows,
            }),
            Projection::Columns(cols) => {
                let names: Vec<&str> = cols.iter().map(|c| c.as_str()).collect();
                let projected = t.project(&rows, &names)?;
                Ok(ExecResult::Rows {
                    columns: cols.clone(),
                    rows: projected,
                })
            }
            Projection::Aggregate(_) => unreachable!("handled above"),
        }
    })?
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let db = Database::new();
        execute(
            &db,
            "CREATE TABLE stocks (sym TEXT, day INT, price FLOAT NULL)",
        )
        .unwrap();
        execute(
            &db,
            "INSERT INTO stocks VALUES \
             ('goog', 1, 100.0), ('goog', 2, 104.0), ('goog', 3, 101.5), \
             ('msft', 1, 50.0), ('msft', 2, NULL)",
        )
        .unwrap();
        db
    }

    #[test]
    fn end_to_end_select() {
        let db = db();
        let res = execute(
            &db,
            "SELECT day, price FROM stocks WHERE sym = 'goog' AND price > 100 ORDER BY price DESC",
        )
        .unwrap();
        let ExecResult::Rows { columns, rows } = res else {
            panic!()
        };
        assert_eq!(columns, vec!["day", "price"]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][1], Value::Float(104.0));
        assert_eq!(rows[1][1], Value::Float(101.5));
    }

    #[test]
    fn select_star_with_limit() {
        let db = db();
        let res = execute(&db, "SELECT * FROM stocks ORDER BY day ASC LIMIT 2").unwrap();
        assert_eq!(res.rows().len(), 2);
    }

    #[test]
    fn aggregates_work() {
        let db = db();
        let res = execute(&db, "SELECT COUNT(*) FROM stocks").unwrap();
        assert_eq!(res.scalar(), Some(&Value::Int(5)));
        let res = execute(&db, "SELECT COUNT(price) FROM stocks").unwrap();
        assert_eq!(res.scalar(), Some(&Value::Int(4)));
        let res = execute(&db, "SELECT AVG(price) FROM stocks WHERE sym = 'goog'").unwrap();
        let avg = res.scalar().unwrap().as_f64().unwrap();
        assert!((avg - (100.0 + 104.0 + 101.5) / 3.0).abs() < 1e-9);
        let res = execute(&db, "SELECT MAX(price) FROM stocks").unwrap();
        assert_eq!(res.scalar(), Some(&Value::Float(104.0)));
    }

    #[test]
    fn delete_with_predicate() {
        let db = db();
        let res = execute(&db, "DELETE FROM stocks WHERE sym = 'msft'").unwrap();
        assert_eq!(res, ExecResult::Affected(2));
        let res = execute(&db, "SELECT COUNT(*) FROM stocks").unwrap();
        assert_eq!(res.scalar(), Some(&Value::Int(3)));
    }

    #[test]
    fn arithmetic_in_where() {
        let db = db();
        let res = execute(&db, "SELECT day FROM stocks WHERE price - 100 >= 1.5").unwrap();
        assert_eq!(res.rows().len(), 2); // 104.0 and 101.5
    }

    #[test]
    fn null_semantics_in_where() {
        let db = db();
        // NULL price never matches a comparison.
        let res = execute(&db, "SELECT * FROM stocks WHERE price > 0").unwrap();
        assert_eq!(res.rows().len(), 4);
        let res = execute(&db, "SELECT * FROM stocks WHERE NOT price > 0").unwrap();
        assert_eq!(res.rows().len(), 0);
    }

    #[test]
    fn ddl_round_trip() {
        let db = db();
        execute(&db, "CREATE TABLE tmp (x INT)").unwrap();
        assert!(db.has_table("tmp"));
        execute(&db, "DROP TABLE tmp").unwrap();
        assert!(!db.has_table("tmp"));
        assert!(execute(&db, "DROP TABLE tmp").is_err());
    }

    #[test]
    fn schema_violations_surface() {
        let db = db();
        assert!(execute(&db, "INSERT INTO stocks VALUES (1, 2, 3.0)").is_err());
        assert!(execute(&db, "INSERT INTO stocks VALUES ('x', NULL, 3.0)").is_err());
        assert!(execute(&db, "SELECT nope FROM stocks").is_err());
        assert!(execute(&db, "SELECT * FROM missing").is_err());
    }

    #[test]
    fn unary_minus_literal() {
        let db = db();
        execute(&db, "CREATE TABLE neg (x FLOAT)").unwrap();
        execute(&db, "INSERT INTO neg VALUES (-2.5), (1.0)").unwrap();
        let res = execute(&db, "SELECT x FROM neg WHERE x < -1").unwrap();
        assert_eq!(res.rows().len(), 1);
    }
}
