//! A small SQL front end for the embedded engine: tokenizer, recursive-
//! descent parser, and executor for `SELECT` (with `WHERE`, `ORDER BY`,
//! `LIMIT`, aggregates), `INSERT`, `CREATE TABLE`, `DELETE`, and
//! `DROP TABLE`, plus the declarative **ESTIMATE dialect** ([`estimate`]:
//! `ESTIMATE DURABILITY …`, `EXPLAIN ESTIMATE …`, `SHOW MODELS`). Enough
//! surface to drive the §6.4 pipeline the way the paper drove PostgreSQL.
//!
//! Plain statements execute through [`execute`]; dialect statements need
//! an engine context (model registry, plan cache, scheduler, RNG) and run
//! through [`crate::session::Session::execute`].

pub mod estimate;
pub mod exec;
pub mod lexer;
pub mod parser;

pub use estimate::{is_dialect, parse_dialect, DialectStatement};
pub use exec::{execute, execute_statement, ExecResult};
pub use parser::{parse, Statement};
