//! A small SQL front end for the embedded engine: tokenizer, recursive-
//! descent parser, and executor for `SELECT` (with `WHERE`, `ORDER BY`,
//! `LIMIT`, aggregates), `INSERT`, `CREATE TABLE`, `DELETE`, and
//! `DROP TABLE`. Enough surface to drive the §6.4 pipeline the way the
//! paper drove PostgreSQL.

pub mod exec;
pub mod lexer;
pub mod parser;

pub use exec::{execute, execute_statement, ExecResult};
pub use parser::{parse, Statement};
