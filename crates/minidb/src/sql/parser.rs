//! Recursive-descent SQL parser producing statement ASTs over the
//! engine's [`Expr`](crate::expr::Expr) trees.

use crate::expr::{ArithOp, CmpOp, Expr};
use crate::sql::lexer::{tokenize, LexError, Sym, Token};
use crate::table::Aggregate;
use crate::value::{DataType, Value};

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `SELECT ...`
    Select(SelectStmt),
    /// `INSERT INTO t VALUES (...), (...)`
    Insert {
        /// Target table.
        table: String,
        /// Literal rows.
        rows: Vec<Vec<Value>>,
    },
    /// `CREATE TABLE t (col TYPE [NULL], ...)`
    CreateTable {
        /// Table name.
        table: String,
        /// Column definitions: (name, type, nullable).
        columns: Vec<(String, DataType, bool)>,
    },
    /// `DELETE FROM t [WHERE ...]`
    Delete {
        /// Target table.
        table: String,
        /// Optional predicate.
        predicate: Option<Expr>,
    },
    /// `DROP TABLE t`
    DropTable {
        /// Table name.
        table: String,
    },
}

/// The projection of a SELECT.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `*`
    All,
    /// Column names.
    Columns(Vec<String>),
    /// A single aggregate.
    Aggregate(Aggregate),
}

/// A SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// What to project.
    pub projection: Projection,
    /// Source table.
    pub table: String,
    /// Optional WHERE predicate.
    pub predicate: Option<Expr>,
    /// Optional ORDER BY (column, descending).
    pub order_by: Option<(String, bool)>,
    /// Optional LIMIT.
    pub limit: Option<usize>,
}

/// Parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Message.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.to_string(),
        }
    }
}

/// Parse one SQL statement (a trailing `;` is allowed).
pub fn parse(sql: &str) -> Result<Statement, ParseError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_symbol_opt(Sym::Semi);
    if p.pos != p.tokens.len() {
        return Err(p.err(format!("trailing input at token {}", p.pos)));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Is the next token the given (case-insensitive) keyword?
    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.peek_kw(kw) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw}, found {:?}", self.peek())))
        }
    }

    fn eat_kw_opt(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_symbol(&mut self, sym: Sym) -> Result<(), ParseError> {
        match self.peek() {
            Some(Token::Symbol(s)) if *s == sym => {
                self.pos += 1;
                Ok(())
            }
            other => Err(self.err(format!("expected {sym:?}, found {other:?}"))),
        }
    }

    fn eat_symbol_opt(&mut self, sym: Sym) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        if self.eat_kw_opt("SELECT") {
            return self.select();
        }
        if self.eat_kw_opt("INSERT") {
            return self.insert();
        }
        if self.eat_kw_opt("CREATE") {
            return self.create_table();
        }
        if self.eat_kw_opt("DELETE") {
            return self.delete();
        }
        if self.eat_kw_opt("DROP") {
            self.eat_kw("TABLE")?;
            return Ok(Statement::DropTable {
                table: self.ident()?,
            });
        }
        Err(self.err(format!("expected a statement, found {:?}", self.peek())))
    }

    fn select(&mut self) -> Result<Statement, ParseError> {
        let projection = self.projection()?;
        self.eat_kw("FROM")?;
        let table = self.ident()?;
        let predicate = if self.eat_kw_opt("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let order_by = if self.eat_kw_opt("ORDER") {
            self.eat_kw("BY")?;
            let col = self.ident()?;
            let desc = if self.eat_kw_opt("DESC") {
                true
            } else {
                self.eat_kw_opt("ASC");
                false
            };
            Some((col, desc))
        } else {
            None
        };
        let limit = if self.eat_kw_opt("LIMIT") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                other => return Err(self.err(format!("LIMIT needs an integer, got {other:?}"))),
            }
        } else {
            None
        };
        Ok(Statement::Select(SelectStmt {
            projection,
            table,
            predicate,
            order_by,
            limit,
        }))
    }

    fn projection(&mut self) -> Result<Projection, ParseError> {
        if self.eat_symbol_opt(Sym::Star) {
            return Ok(Projection::All);
        }
        // Aggregate?
        for (kw, make) in AGGREGATES {
            if self.peek_kw(kw) {
                // Lookahead: aggregate requires '(' right after.
                if matches!(
                    self.tokens.get(self.pos + 1),
                    Some(Token::Symbol(Sym::LParen))
                ) {
                    self.pos += 1;
                    self.eat_symbol(Sym::LParen)?;
                    let agg = if self.eat_symbol_opt(Sym::Star) {
                        if *kw != "COUNT" {
                            return Err(self.err(format!("{kw}(*) is not valid")));
                        }
                        Aggregate::CountAll
                    } else {
                        make(self.ident()?)
                    };
                    self.eat_symbol(Sym::RParen)?;
                    return Ok(Projection::Aggregate(agg));
                }
            }
        }
        let mut cols = vec![self.ident()?];
        while self.eat_symbol_opt(Sym::Comma) {
            cols.push(self.ident()?);
        }
        Ok(Projection::Columns(cols))
    }

    fn insert(&mut self) -> Result<Statement, ParseError> {
        self.eat_kw("INTO")?;
        let table = self.ident()?;
        self.eat_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.eat_symbol(Sym::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.literal()?);
                if !self.eat_symbol_opt(Sym::Comma) {
                    break;
                }
            }
            self.eat_symbol(Sym::RParen)?;
            rows.push(row);
            if !self.eat_symbol_opt(Sym::Comma) {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    fn create_table(&mut self) -> Result<Statement, ParseError> {
        self.eat_kw("TABLE")?;
        let table = self.ident()?;
        self.eat_symbol(Sym::LParen)?;
        let mut columns = Vec::new();
        loop {
            let name = self.ident()?;
            let ty = self.ident()?;
            let dtype = match ty.to_ascii_uppercase().as_str() {
                "INT" | "INTEGER" | "BIGINT" => DataType::Int,
                "FLOAT" | "REAL" | "DOUBLE" => DataType::Float,
                "TEXT" | "VARCHAR" | "STRING" => DataType::Text,
                "BOOL" | "BOOLEAN" => DataType::Bool,
                other => return Err(self.err(format!("unknown type {other}"))),
            };
            let nullable = self.eat_kw_opt("NULL");
            columns.push((name, dtype, nullable));
            if !self.eat_symbol_opt(Sym::Comma) {
                break;
            }
        }
        self.eat_symbol(Sym::RParen)?;
        Ok(Statement::CreateTable { table, columns })
    }

    fn delete(&mut self) -> Result<Statement, ParseError> {
        self.eat_kw("FROM")?;
        let table = self.ident()?;
        let predicate = if self.eat_kw_opt("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, predicate })
    }

    // --- expression grammar: OR > AND > NOT > cmp > add > mul > unary ---

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw_opt("OR") {
            lhs = lhs.or(self.and_expr()?);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw_opt("AND") {
            lhs = lhs.and(self.not_expr()?);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw_opt("NOT") {
            Ok(self.not_expr()?.not())
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Some(Token::Symbol(Sym::Eq)) => Some(CmpOp::Eq),
            Some(Token::Symbol(Sym::Ne)) => Some(CmpOp::Ne),
            Some(Token::Symbol(Sym::Lt)) => Some(CmpOp::Lt),
            Some(Token::Symbol(Sym::Le)) => Some(CmpOp::Le),
            Some(Token::Symbol(Sym::Gt)) => Some(CmpOp::Gt),
            Some(Token::Symbol(Sym::Ge)) => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.add_expr()?;
            Ok(Expr::Cmp(Box::new(lhs), op, Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            if self.eat_symbol_opt(Sym::Plus) {
                lhs = Expr::Arith(Box::new(lhs), ArithOp::Add, Box::new(self.mul_expr()?));
            } else if self.eat_symbol_opt(Sym::Minus) {
                lhs = Expr::Arith(Box::new(lhs), ArithOp::Sub, Box::new(self.mul_expr()?));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            if self.eat_symbol_opt(Sym::Star) {
                lhs = Expr::Arith(Box::new(lhs), ArithOp::Mul, Box::new(self.unary_expr()?));
            } else if self.eat_symbol_opt(Sym::Slash) {
                lhs = Expr::Arith(Box::new(lhs), ArithOp::Div, Box::new(self.unary_expr()?));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_symbol_opt(Sym::Minus) {
            // Unary minus: 0 - expr.
            let inner = self.unary_expr()?;
            return Ok(Expr::Arith(
                Box::new(Expr::Lit(Value::Int(0))),
                ArithOp::Sub,
                Box::new(inner),
            ));
        }
        if self.eat_symbol_opt(Sym::LParen) {
            let e = self.expr()?;
            self.eat_symbol(Sym::RParen)?;
            return Ok(e);
        }
        match self.next() {
            Some(Token::Int(v)) => Ok(Expr::Lit(Value::Int(v))),
            Some(Token::Float(v)) => Ok(Expr::Lit(Value::Float(v))),
            Some(Token::Str(s)) => Ok(Expr::Lit(Value::Text(s))),
            Some(Token::Ident(s)) => {
                if s.eq_ignore_ascii_case("TRUE") {
                    Ok(Expr::Lit(Value::Bool(true)))
                } else if s.eq_ignore_ascii_case("FALSE") {
                    Ok(Expr::Lit(Value::Bool(false)))
                } else if s.eq_ignore_ascii_case("NULL") {
                    Ok(Expr::Lit(Value::Null))
                } else {
                    Ok(Expr::Col(s))
                }
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }

    fn literal(&mut self) -> Result<Value, ParseError> {
        // Reuse the expression parser for literals so negative numbers and
        // arithmetic constants work; reject column references.
        let e = self.expr()?;
        eval_const(&e).ok_or_else(|| self.err("VALUES entries must be literal"))
    }
}

/// Constant-fold an expression with no column references.
fn eval_const(e: &Expr) -> Option<Value> {
    let empty = crate::schema::Schema::new(vec![]).ok()?;
    e.eval(&empty, &[]).ok()
}

type AggMaker = fn(String) -> Aggregate;
const AGGREGATES: &[(&str, AggMaker)] = &[
    ("COUNT", Aggregate::Count as AggMaker),
    ("SUM", Aggregate::Sum as AggMaker),
    ("AVG", Aggregate::Avg as AggMaker),
    ("MIN", Aggregate::Min as AggMaker),
    ("MAX", Aggregate::Max as AggMaker),
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};

    #[test]
    fn parses_simple_select() {
        let stmt = parse("SELECT a, b FROM t WHERE a >= 3 ORDER BY b DESC LIMIT 10;").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert_eq!(
            s.projection,
            Projection::Columns(vec!["a".into(), "b".into()])
        );
        assert_eq!(s.table, "t");
        assert_eq!(s.predicate, Some(col("a").ge(lit(3i64))));
        assert_eq!(s.order_by, Some(("b".into(), true)));
        assert_eq!(s.limit, Some(10));
    }

    #[test]
    fn parses_star_and_aggregates() {
        let Statement::Select(s) = parse("SELECT * FROM t").unwrap() else {
            panic!()
        };
        assert_eq!(s.projection, Projection::All);
        let Statement::Select(s) = parse("SELECT COUNT(*) FROM t").unwrap() else {
            panic!()
        };
        assert_eq!(s.projection, Projection::Aggregate(Aggregate::CountAll));
        let Statement::Select(s) = parse("SELECT AVG(x) FROM t WHERE x > 0").unwrap() else {
            panic!()
        };
        assert_eq!(
            s.projection,
            Projection::Aggregate(Aggregate::Avg("x".into()))
        );
    }

    #[test]
    fn parses_insert_multiple_rows() {
        let stmt = parse("INSERT INTO t VALUES (1, 'a', 2.5), (2, 'b''c', -3.0)").unwrap();
        let Statement::Insert { table, rows } = stmt else {
            panic!()
        };
        assert_eq!(table, "t");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][1], Value::Text("a".into()));
        assert_eq!(rows[1][1], Value::Text("b'c".into()));
        assert_eq!(rows[1][2], Value::Float(-3.0));
    }

    #[test]
    fn parses_create_table() {
        let stmt =
            parse("CREATE TABLE users (id INT, name TEXT, score FLOAT NULL, ok BOOL)").unwrap();
        let Statement::CreateTable { table, columns } = stmt else {
            panic!()
        };
        assert_eq!(table, "users");
        assert_eq!(columns.len(), 4);
        assert_eq!(columns[2], ("score".into(), DataType::Float, true));
        assert_eq!(columns[0], ("id".into(), DataType::Int, false));
    }

    #[test]
    fn parses_delete_and_drop() {
        assert_eq!(
            parse("DELETE FROM t WHERE x < 0").unwrap(),
            Statement::Delete {
                table: "t".into(),
                predicate: Some(col("x").lt(lit(0i64))),
            }
        );
        assert_eq!(
            parse("DROP TABLE t").unwrap(),
            Statement::DropTable { table: "t".into() }
        );
    }

    #[test]
    fn operator_precedence() {
        // a + b * 2 > 4 AND NOT c = 1 OR d = 2
        let e = match parse("SELECT * FROM t WHERE a + b * 2 > 4 AND NOT c = 1 OR d = 2").unwrap() {
            Statement::Select(s) => s.predicate.unwrap(),
            _ => panic!(),
        };
        let expected = col("a")
            .add(col("b").mul(lit(2i64)))
            .gt(lit(4i64))
            .and(col("c").eq(lit(1i64)).not())
            .or(col("d").eq(lit(2i64)));
        assert_eq!(e, expected);
    }

    #[test]
    fn keywords_case_insensitive() {
        assert!(parse("select * from t where x = true").is_ok());
        assert!(parse("Select Count(*) From t").is_ok());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("SELECT FROM").is_err());
        assert!(parse("INSERT INTO t VALUES (a)").is_err()); // non-literal
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("SELECT * FROM t extra").is_err());
        assert!(parse("SUM(*)").is_err());
    }
}
