//! The declarative **ESTIMATE dialect**: a hand-rolled recursive-descent
//! parser turning durability statements into the typed
//! [`mlss_core::spec::QuerySpec`] IR, with byte-span error positions.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! statement   := ESTIMATE estimate | EXPLAIN ESTIMATE estimate
//!              | SHOW MODELS | SHOW DIAGNOSTICS
//! estimate    := DURABILITY OF candidate {',' candidate} WITHIN integer
//!                [USING method_ref] TARGET RE number ['%']
//!                [RANK BY TOP integer ['(' assignments ')']]
//!                [WITH '(' options ')'] [ASYNC | SYNC] [';']
//! candidate   := model_ref [SWEEP ident FROM number TO number STEP number]
//! model_ref   := ident ['(' assignments ')']     -- must include beta=…
//! method_ref  := ident ['(' assignments ')']     -- srs|smlss|mlss|gmlss|auto, levels=…
//! assignments := ident '=' number {',' ident '=' number}
//! options     := ident '=' (number | AUTO) {',' ident '=' (number | AUTO)}
//!                -- threads, batch_width, seed, priority;
//!                -- AUTO is valid only for batch_width
//! number      := ['-'] INT | FLOAT
//! ```
//!
//! A statement with more than one candidate (an explicit list and/or a
//! `SWEEP` expansion) must carry a `RANK BY TOP k` clause: it parses to a
//! [`RankSpec`] raced under confidence-bound boundary elimination (see
//! `docs/ranking.md`). Ranking options: `confidence=` (0.5–1),
//! `rounds=` (round cap), `round_budget=` (per-arm `g` budget per round).
//!
//! The parser optionally validates against a catalog of
//! [`ModelSchema`]s, so unknown models, unknown parameters, and
//! out-of-range values are reported with the span of the offending
//! token; without a catalog those checks happen later in the dispatch
//! layer (spanless). Every failure is a typed
//! [`SpecError`] — the taxonomy the acceptance
//! criteria require instead of stringly-typed procedure errors.

use mlss_core::spec::{
    ExecMode, ExecOptions, Method, ModelSchema, QuerySpec, RankSpec, Span, SpecError,
    SpecErrorKind, DEFAULT_PLAN_LEVELS, MAX_RANK_ARMS,
};
use std::collections::BTreeMap;

/// A parsed dialect statement.
#[derive(Debug, Clone, PartialEq)]
pub enum DialectStatement {
    /// `ESTIMATE DURABILITY …` — run (or submit) the query.
    Estimate(QuerySpec),
    /// `EXPLAIN ESTIMATE DURABILITY …` — return the resolved plan as rows.
    ExplainEstimate(QuerySpec),
    /// `ESTIMATE DURABILITY … RANK BY TOP k` — race the candidate field.
    Rank(RankSpec),
    /// `EXPLAIN` over a ranking statement — the racing plan as rows.
    ExplainRank(RankSpec),
    /// `SHOW MODELS` — the model catalog with per-parameter schemas.
    ShowModels,
    /// `SHOW DIAGNOSTICS` — plan-cache, shard-store, and scheduler-pool
    /// counters as `(component, counter, value)` rows.
    ShowDiagnostics,
}

/// Does this statement text start with a dialect keyword (`ESTIMATE`,
/// `EXPLAIN`, `SHOW`)? Used to route between the dialect parser and the
/// plain-SQL parser without tokenizing twice.
pub fn is_dialect(sql: &str) -> bool {
    // Skip leading whitespace and `--` line comments — both lexers do.
    let mut rest = sql.trim_start();
    while let Some(comment) = rest.strip_prefix("--") {
        rest = match comment.split_once('\n') {
            Some((_, after)) => after.trim_start(),
            None => "",
        };
    }
    let first: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphabetic())
        .collect();
    ["ESTIMATE", "EXPLAIN", "SHOW"]
        .iter()
        .any(|k| first.eq_ignore_ascii_case(k))
}

/// Parse one dialect statement. `catalog`, when given, validates model
/// names, parameter names, and parameter ranges with spans.
pub fn parse_dialect(
    sql: &str,
    catalog: Option<&[&ModelSchema]>,
) -> Result<DialectStatement, SpecError> {
    let tokens = lex(sql)?;
    let mut p = DialectParser {
        tokens,
        pos: 0,
        end: sql.len(),
        catalog,
    };
    let stmt = p.statement()?;
    p.eat_opt(TokKind::Semi);
    if let Some(t) = p.peek() {
        return Err(SpecError::at(
            SpecErrorKind::Syntax {
                message: format!("trailing input '{}'", t.text),
            },
            t.span,
        ));
    }
    Ok(stmt)
}

// ---------------------------------------------------------------------
// Spanned lexer
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum TokKind {
    Ident,
    Number(f64),
    LParen,
    RParen,
    Comma,
    Eq,
    Percent,
    Semi,
}

#[derive(Debug, Clone)]
struct Tok {
    kind: TokKind,
    /// Original text (identifiers keep their case; keywords compare
    /// case-insensitively).
    text: String,
    span: Span,
}

fn lex(input: &str) -> Result<Vec<Tok>, SpecError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
                continue;
            }
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            '(' | ')' | ',' | '=' | '%' | ';' => {
                let kind = match c {
                    '(' => TokKind::LParen,
                    ')' => TokKind::RParen,
                    ',' => TokKind::Comma,
                    '=' => TokKind::Eq,
                    '%' => TokKind::Percent,
                    _ => TokKind::Semi,
                };
                i += 1;
                out.push(Tok {
                    kind,
                    text: c.to_string(),
                    span: Span::new(start, i),
                });
            }
            '0'..='9' | '.' | '-' | '+' => {
                i += 1;
                let mut saw_dot = c == '.';
                let mut saw_exp = false;
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    if b.is_ascii_digit() {
                        i += 1;
                    } else if b == '.' && !saw_dot && !saw_exp {
                        saw_dot = true;
                        i += 1;
                    } else if (b == 'e' || b == 'E') && !saw_exp {
                        saw_exp = true;
                        i += 1;
                        if matches!(bytes.get(i), Some(&b'+') | Some(&b'-')) {
                            i += 1;
                        }
                    } else {
                        break;
                    }
                }
                let text = &input[start..i];
                let v: f64 = text.parse().map_err(|_| {
                    SpecError::at(
                        SpecErrorKind::Syntax {
                            message: format!("bad number '{text}'"),
                        },
                        Span::new(start, i),
                    )
                })?;
                out.push(Tok {
                    kind: TokKind::Number(v),
                    text: text.to_string(),
                    span: Span::new(start, i),
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Tok {
                    kind: TokKind::Ident,
                    text: input[start..i].to_string(),
                    span: Span::new(start, i),
                });
            }
            _ => {
                // Decode the real (possibly multi-byte) character so the
                // message shows it faithfully and the span stays on a
                // char boundary (consumers slice the statement by it).
                let other = input[i..].chars().next().expect("in-bounds byte");
                return Err(SpecError::at(
                    SpecErrorKind::Syntax {
                        message: format!("unexpected character '{other}'"),
                    },
                    Span::new(i, i + other.len_utf8()),
                ));
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Recursive-descent parser
// ---------------------------------------------------------------------

struct DialectParser<'a> {
    tokens: Vec<Tok>,
    pos: usize,
    /// Byte length of the input (span for "expected more" errors).
    end: usize,
    catalog: Option<&'a [&'a ModelSchema]>,
}

impl DialectParser<'_> {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn here(&self) -> Span {
        self.peek().map_or(Span::at(self.end), |t| t.span)
    }

    fn syntax(&self, message: impl Into<String>, span: Span) -> SpecError {
        SpecError::at(
            SpecErrorKind::Syntax {
                message: message.into(),
            },
            span,
        )
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(t) if t.kind == TokKind::Ident && t.text.eq_ignore_ascii_case(kw))
    }

    fn eat_kw_opt(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> Result<(), SpecError> {
        if self.eat_kw_opt(kw) {
            Ok(())
        } else {
            let found = self
                .peek()
                .map_or("end of statement".to_string(), |t| format!("'{}'", t.text));
            Err(self.syntax(format!("expected {kw}, found {found}"), self.here()))
        }
    }

    fn eat_opt(&mut self, kind: TokKind) -> bool {
        if matches!(self.peek(), Some(t) if t.kind == kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat(&mut self, kind: TokKind, what: &str) -> Result<Tok, SpecError> {
        match self.peek() {
            Some(t) if t.kind == kind => {
                let t = t.clone();
                self.pos += 1;
                Ok(t)
            }
            Some(t) => Err(self.syntax(format!("expected {what}, found '{}'", t.text), t.span)),
            None => Err(self.syntax(format!("expected {what}"), Span::at(self.end))),
        }
    }

    fn ident(&mut self, what: &str) -> Result<Tok, SpecError> {
        self.eat(TokKind::Ident, what)
    }

    /// A (possibly negative) numeric literal; returns (value, span).
    fn number(&mut self, what: &str) -> Result<(f64, Span), SpecError> {
        match self.peek() {
            Some(t) => {
                if let TokKind::Number(v) = t.kind {
                    let span = t.span;
                    self.pos += 1;
                    Ok((v, span))
                } else {
                    Err(self.syntax(format!("expected {what}, found '{}'", t.text), t.span))
                }
            }
            None => Err(self.syntax(format!("expected {what}"), Span::at(self.end))),
        }
    }

    fn statement(&mut self) -> Result<DialectStatement, SpecError> {
        if self.eat_kw_opt("SHOW") {
            if self.eat_kw_opt("DIAGNOSTICS") {
                return Ok(DialectStatement::ShowDiagnostics);
            }
            self.eat_kw("MODELS")?;
            return Ok(DialectStatement::ShowModels);
        }
        let explain = self.eat_kw_opt("EXPLAIN");
        self.eat_kw("ESTIMATE")?;
        Ok(match (self.estimate()?, explain) {
            (ParsedEstimate::Single(spec), false) => DialectStatement::Estimate(spec),
            (ParsedEstimate::Single(spec), true) => DialectStatement::ExplainEstimate(spec),
            (ParsedEstimate::Rank(rank), false) => DialectStatement::Rank(rank),
            (ParsedEstimate::Rank(rank), true) => DialectStatement::ExplainRank(rank),
        })
    }

    /// The numeric value token itself (so callers that need lossless
    /// integer parsing — `seed` is a full u64 — can reparse its text).
    fn number_tok(&mut self, what: &str) -> Result<(f64, Tok), SpecError> {
        match self.peek() {
            Some(t) => {
                if let TokKind::Number(v) = t.kind {
                    let t = t.clone();
                    self.pos += 1;
                    Ok((v, t))
                } else {
                    Err(self.syntax(format!("expected {what}, found '{}'", t.text), t.span))
                }
            }
            None => Err(self.syntax(format!("expected {what}"), Span::at(self.end))),
        }
    }

    /// `name ['(' ident '=' number {',' …} ')']` — shared by the model
    /// ref, the method ref, and the WITH options (which have no name).
    fn assignments(&mut self, what: &'static str) -> Result<Vec<(Tok, f64, Tok)>, SpecError> {
        let mut out: Vec<(Tok, f64, Tok)> = Vec::new();
        if !self.eat_opt(TokKind::LParen) {
            return Ok(out);
        }
        loop {
            let name = self.ident(&format!("a {what} name"))?;
            self.eat(TokKind::Eq, "'='")?;
            // Execution options admit the keyword value `auto`
            // (today: `batch_width=auto`), carried as +∞ so the typed
            // option match below can tell it apart from every real
            // number. Model and method parameters stay numeric-only.
            let auto = what == "execution option"
                && matches!(
                    self.peek(),
                    Some(t) if t.kind == TokKind::Ident && t.text.eq_ignore_ascii_case("auto")
                );
            let (value, vtok) = if auto {
                let t = self.peek().expect("peeked above").clone();
                self.pos += 1;
                (f64::INFINITY, t)
            } else {
                self.number_tok(&format!("a value for '{}'", name.text))?
            };
            if out.iter().any(|(n, _, _)| n.text == name.text) {
                return Err(SpecError::at(
                    SpecErrorKind::Duplicate {
                        what,
                        name: name.text.clone(),
                    },
                    name.span,
                ));
            }
            out.push((name, value, vtok));
            if !self.eat_opt(TokKind::Comma) {
                break;
            }
        }
        self.eat(TokKind::RParen, "')'")?;
        Ok(out)
    }

    /// One candidate of the `OF` list: a model ref plus an optional
    /// `SWEEP param FROM a TO b STEP s` expansion. Returns the expanded
    /// per-arm `(beta, params)` pairs (one entry when there is no sweep).
    fn candidate(&mut self) -> Result<Cand, SpecError> {
        // ---- model ref: name(beta=…, overrides…) ---------------------
        let model = self.ident("a model name")?;
        let schema = match self.catalog {
            Some(catalog) => match catalog.iter().find(|s| s.name == model.text) {
                Some(s) => Some(*s),
                None => {
                    return Err(SpecError::at(
                        SpecErrorKind::UnknownModel {
                            name: model.text.clone(),
                            known: catalog.iter().map(|s| s.name.to_string()).collect(),
                        },
                        model.span,
                    ))
                }
            },
            None => None,
        };
        let mut beta: Option<f64> = None;
        let mut params: BTreeMap<String, f64> = BTreeMap::new();
        for (name, value, vtok) in self.assignments("model parameter")? {
            if name.text == "beta" {
                beta = Some(value);
                continue;
            }
            if let Some(schema) = schema {
                let Some(p) = schema.param(&name.text) else {
                    return Err(SpecError::at(
                        SpecErrorKind::UnknownParam {
                            model: model.text.clone(),
                            name: name.text.clone(),
                        },
                        name.span,
                    ));
                };
                // The schema's own rules (range + int/bool shape), with
                // the value token's span attached.
                p.check(schema.name, value)
                    .map_err(|e| SpecError::at(e.kind, vtok.span))?;
            }
            params.insert(name.text.clone(), value);
        }
        let Some(beta) = beta else {
            return Err(SpecError::at(
                SpecErrorKind::MissingClause { clause: "beta" },
                model.span,
            ));
        };

        // ---- SWEEP param FROM a TO b STEP s --------------------------
        if !self.peek_kw("SWEEP") {
            return Ok(Cand {
                model,
                arms: vec![(beta, params)],
                sweep_span: None,
            });
        }
        let kw_span = self.here();
        self.eat_kw("SWEEP")?;
        let pname = self.ident("a parameter to sweep")?;
        self.eat_kw("FROM")?;
        let (from, fspan) = self.number("a sweep start")?;
        self.eat_kw("TO")?;
        let (to, tspan) = self.number("a sweep end")?;
        self.eat_kw("STEP")?;
        let (step, sspan) = self.number("a sweep step")?;
        if !(from.is_finite() && to.is_finite()) {
            return Err(SpecError::at(
                SpecErrorKind::InvalidValue {
                    field: "sweep range",
                    message: "endpoints must be finite".into(),
                },
                fspan,
            ));
        }
        if to < from {
            return Err(SpecError::at(
                SpecErrorKind::InvalidValue {
                    field: "sweep range",
                    message: format!("end {to} is below start {from}"),
                },
                tspan,
            ));
        }
        if !(step.is_finite() && step > 0.0) {
            return Err(SpecError::at(
                SpecErrorKind::InvalidValue {
                    field: "sweep step",
                    message: format!("must be positive, got {step}"),
                },
                sspan,
            ));
        }
        // Count before materializing: a tiny step must fail cleanly, not
        // allocate.
        let count = ((to - from) / step + 1e-9).floor() as usize + 1;
        if count > MAX_RANK_ARMS {
            return Err(SpecError::at(
                SpecErrorKind::InvalidValue {
                    field: "sweep step",
                    message: format!("sweep expands to {count} arms, cap is {MAX_RANK_ARMS}"),
                },
                sspan,
            ));
        }
        let schema_param = if pname.text == "beta" {
            None
        } else if let Some(schema) = schema {
            let Some(p) = schema.param(&pname.text) else {
                return Err(SpecError::at(
                    SpecErrorKind::UnknownParam {
                        model: model.text.clone(),
                        name: pname.text.clone(),
                    },
                    pname.span,
                ));
            };
            Some((schema.name, p))
        } else {
            None
        };
        let mut arms = Vec::with_capacity(count);
        for i in 0..count {
            let value = from + step * i as f64;
            if let Some((model_name, p)) = schema_param {
                // Attach the sweep-start span: the offending value is
                // generated, not written.
                p.check(model_name, value)
                    .map_err(|e| SpecError::at(e.kind, fspan))?;
            }
            if pname.text == "beta" {
                arms.push((value, params.clone()));
            } else {
                let mut params = params.clone();
                params.insert(pname.text.clone(), value);
                arms.push((beta, params));
            }
        }
        Ok(Cand {
            model,
            arms,
            sweep_span: Some(kw_span),
        })
    }

    fn estimate(&mut self) -> Result<ParsedEstimate, SpecError> {
        self.eat_kw("DURABILITY")?;
        self.eat_kw("OF")?;

        // ---- candidate list ------------------------------------------
        let mut cands = vec![self.candidate()?];
        // The span that proves this is a multi-candidate statement (and
        // therefore needs RANK BY): the first comma or SWEEP keyword.
        let mut multi_span: Option<Span> = cands[0].sweep_span;
        while matches!(self.peek(), Some(t) if t.kind == TokKind::Comma) {
            let comma = self.here();
            self.pos += 1;
            multi_span = multi_span.or(Some(comma));
            cands.push(self.candidate()?);
        }

        // ---- WITHIN horizon ------------------------------------------
        if !self.eat_kw_opt("WITHIN") {
            return Err(SpecError::at(
                SpecErrorKind::MissingClause { clause: "WITHIN" },
                self.here(),
            ));
        }
        let (horizon, hspan) = self.number("a horizon")?;
        if !(horizon.is_finite() && horizon >= 1.0 && horizon.fract() == 0.0) {
            return Err(SpecError::at(
                SpecErrorKind::InvalidValue {
                    field: "horizon",
                    message: format!("must be a positive integer, got {horizon}"),
                },
                hspan,
            ));
        }

        // ---- USING method(levels=…) ----------------------------------
        let mut method = Method::Auto;
        let mut levels = DEFAULT_PLAN_LEVELS;
        if self.eat_kw_opt("USING") {
            let name = self.ident("a method name")?;
            method = Method::parse(&name.text.to_ascii_lowercase())
                .map_err(|e| SpecError::at(e.kind, name.span))?;
            for (opt, value, vtok) in self.assignments("method option")? {
                match opt.text.as_str() {
                    "levels" => {
                        if !(value.fract() == 0.0 && (1.0..=64.0).contains(&value)) {
                            return Err(SpecError::at(
                                SpecErrorKind::InvalidValue {
                                    field: "levels",
                                    message: format!("must be an integer in 1..=64, got {value}"),
                                },
                                vtok.span,
                            ));
                        }
                        levels = value as usize;
                    }
                    _ => {
                        return Err(SpecError::at(
                            SpecErrorKind::UnknownOption {
                                name: opt.text.clone(),
                            },
                            opt.span,
                        ))
                    }
                }
            }
        }

        // ---- TARGET RE number [%] ------------------------------------
        if !self.eat_kw_opt("TARGET") {
            return Err(SpecError::at(
                SpecErrorKind::MissingClause {
                    clause: "TARGET RE",
                },
                self.here(),
            ));
        }
        self.eat_kw("RE")?;
        let (mut target_re, tspan) = self.number("a relative-error target")?;
        if self.eat_opt(TokKind::Percent) {
            target_re /= 100.0;
        }
        if !(target_re.is_finite() && target_re > 0.0) {
            return Err(SpecError::at(
                SpecErrorKind::InvalidValue {
                    field: "target_re",
                    message: format!("must be positive, got {target_re}"),
                },
                tspan,
            ));
        }

        // ---- RANK BY TOP k [(confidence=…, rounds=…, round_budget=…)] -
        let rank = if self.peek_kw("RANK") {
            self.eat_kw("RANK")?;
            self.eat_kw("BY")?;
            self.eat_kw("TOP")?;
            let (k, kspan) = self.number("a top-k count")?;
            if !(k.fract() == 0.0 && k >= 1.0) {
                return Err(SpecError::at(
                    SpecErrorKind::InvalidValue {
                        field: "top_k",
                        message: format!("must be a positive integer, got {k}"),
                    },
                    kspan,
                ));
            }
            let mut confidence = mlss_core::spec::DEFAULT_RANK_CONFIDENCE;
            let mut rounds = mlss_core::spec::DEFAULT_RANK_ROUNDS;
            let mut round_budget = mlss_core::spec::DEFAULT_RANK_ROUND_BUDGET;
            for (opt, value, vtok) in self.assignments("ranking option")? {
                match opt.text.as_str() {
                    "confidence" => {
                        if !(value > 0.5 && value < 1.0) {
                            return Err(SpecError::at(
                                SpecErrorKind::InvalidValue {
                                    field: "confidence",
                                    message: format!("must be in (0.5, 1), got {value}"),
                                },
                                vtok.span,
                            ));
                        }
                        confidence = value;
                    }
                    "rounds" => {
                        if !(value.fract() == 0.0 && (1.0..=10_000.0).contains(&value)) {
                            return Err(SpecError::at(
                                SpecErrorKind::InvalidValue {
                                    field: "rounds",
                                    message: format!(
                                        "must be an integer in 1..=10000, got {value}"
                                    ),
                                },
                                vtok.span,
                            ));
                        }
                        rounds = value as usize;
                    }
                    "round_budget" => {
                        if !(value.fract() == 0.0 && (1.0..=1e12).contains(&value)) {
                            return Err(SpecError::at(
                                SpecErrorKind::InvalidValue {
                                    field: "round_budget",
                                    message: format!("must be an integer in 1..=1e12, got {value}"),
                                },
                                vtok.span,
                            ));
                        }
                        round_budget = value as u64;
                    }
                    _ => {
                        return Err(SpecError::at(
                            SpecErrorKind::UnknownOption {
                                name: opt.text.clone(),
                            },
                            opt.span,
                        ))
                    }
                }
            }
            Some((k as usize, kspan, confidence, rounds, round_budget))
        } else {
            None
        };
        if rank.is_none() {
            if let Some(span) = multi_span {
                // A candidate field without a ranking question is
                // ambiguous — which single estimate would it mean?
                return Err(SpecError::at(
                    SpecErrorKind::MissingClause { clause: "RANK BY" },
                    span,
                ));
            }
        }

        // ---- WITH (options) + ASYNC/SYNC -----------------------------
        let mut options = ExecOptions::default();
        self.exec_options(&mut options)?;

        // ---- assemble ------------------------------------------------
        let build_arm = |cand: &Tok, beta: f64, params: BTreeMap<String, f64>| {
            let mut spec = QuerySpec::new(cand.text.clone(), beta, horizon as u64, target_re);
            spec.params = params;
            spec.method = method;
            spec.levels = levels;
            spec.options = options.clone();
            spec
        };
        let Some((top_k, kspan, confidence, max_rounds, round_budget)) = rank else {
            let cand = cands.into_iter().next().expect("one candidate");
            let model = cand.model;
            let (beta, params) = cand.arms.into_iter().next().expect("one arm");
            let spec = build_arm(&model, beta, params);
            spec.validate()?;
            return Ok(ParsedEstimate::Single(spec));
        };
        let mut arms: Vec<QuerySpec> = Vec::new();
        for cand in cands {
            for (beta, params) in cand.arms {
                arms.push(build_arm(&cand.model, beta, params));
            }
        }
        if top_k > arms.len() {
            return Err(SpecError::at(
                SpecErrorKind::InvalidValue {
                    field: "top_k",
                    message: format!(
                        "must be in 1..={} (the candidate field), got {top_k}",
                        arms.len()
                    ),
                },
                kspan,
            ));
        }
        let mut rank = RankSpec::new(arms, top_k);
        rank.confidence = confidence;
        rank.max_rounds = max_rounds;
        rank.round_budget = round_budget;
        rank.options = options;
        rank.validate()?;
        Ok(ParsedEstimate::Rank(rank))
    }

    /// `[WITH '(' options ')'] [ASYNC | SYNC]` into `options`.
    fn exec_options(&mut self, options: &mut ExecOptions) -> Result<(), SpecError> {
        if self.eat_kw_opt("WITH") {
            if !matches!(self.peek(), Some(t) if t.kind == TokKind::LParen) {
                return Err(self.syntax("expected '(' after WITH", self.here()));
            }
            for (opt, value, vtok) in self.assignments("execution option")? {
                // `auto` reaches here as +∞ (see `assignments`); only
                // `batch_width` accepts it, and its arm checks before
                // the integer validation runs.
                let int_in = |lo: f64, hi: f64| -> Result<f64, SpecError> {
                    if value.fract() == 0.0 && (lo..=hi).contains(&value) {
                        Ok(value)
                    } else {
                        let field = match opt.text.as_str() {
                            "threads" => "threads",
                            "batch_width" => "batch_width",
                            "seed" => "seed",
                            _ => "priority",
                        };
                        let message = if value.is_infinite() {
                            "'auto' is only valid for batch_width".to_string()
                        } else {
                            format!("must be an integer in {lo}..={hi}, got {value}")
                        };
                        Err(SpecError::at(
                            SpecErrorKind::InvalidValue { field, message },
                            vtok.span,
                        ))
                    }
                };
                match opt.text.as_str() {
                    "threads" => options.threads = int_in(1.0, 4096.0)? as usize,
                    "batch_width" if value.is_infinite() => {
                        options.batch_width = Some(mlss_core::width::AUTO_WIDTH)
                    }
                    "batch_width" => options.batch_width = Some(int_in(0.0, 1_048_576.0)? as usize),
                    "seed" => {
                        // Reparse the token text: a seed is a full u64
                        // and must not round through f64.
                        let seed: u64 = vtok.text.parse().map_err(|_| {
                            SpecError::at(
                                SpecErrorKind::InvalidValue {
                                    field: "seed",
                                    message: format!(
                                        "must be an unsigned integer, got '{}'",
                                        vtok.text
                                    ),
                                },
                                vtok.span,
                            )
                        })?;
                        options.seed = Some(seed);
                    }
                    "priority" => options.priority = int_in(0.0, 255.0)? as u8,
                    _ => {
                        return Err(SpecError::at(
                            SpecErrorKind::UnknownOption {
                                name: opt.text.clone(),
                            },
                            opt.span,
                        ))
                    }
                }
            }
        }

        // ---- ASYNC / SYNC --------------------------------------------
        if self.eat_kw_opt("ASYNC") {
            options.mode = ExecMode::Async;
        } else {
            self.eat_kw_opt("SYNC");
        }
        Ok(())
    }
}

/// What `estimate()` produced: one spec, or a raced candidate field.
enum ParsedEstimate {
    Single(QuerySpec),
    Rank(RankSpec),
}

/// One parsed `OF`-list candidate, already sweep-expanded.
struct Cand {
    model: Tok,
    /// Per-arm `(beta, params)` pairs (one entry when there is no sweep).
    arms: Vec<(f64, BTreeMap<String, f64>)>,
    /// Span of the `SWEEP` keyword, if the candidate swept.
    sweep_span: Option<Span>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(sql: &str) -> Result<DialectStatement, SpecError> {
        parse_dialect(sql, None)
    }

    fn spec_of(sql: &str) -> QuerySpec {
        match parse(sql).unwrap() {
            DialectStatement::Estimate(s) => s,
            other => panic!("expected Estimate, got {other:?}"),
        }
    }

    #[test]
    fn parses_the_headline_statement() {
        let s = spec_of(
            "ESTIMATE DURABILITY OF cpp(beta=500) WITHIN 1000 USING gmlss(levels=5) \
             TARGET RE 0.5% WITH (threads=4, batch_width=64) ASYNC",
        );
        assert_eq!(s.model, "cpp");
        assert_eq!(s.beta, 500.0);
        assert_eq!(s.horizon, 1000);
        assert_eq!(s.method, Method::GMlss);
        assert_eq!(s.levels, 5);
        assert!((s.target_re - 0.005).abs() < 1e-12);
        assert_eq!(s.options.threads, 4);
        assert_eq!(s.options.batch_width, Some(64));
        assert_eq!(s.options.mode, ExecMode::Async);
    }

    #[test]
    fn defaults_fill_in() {
        let s = spec_of("ESTIMATE DURABILITY OF walk(beta=6) WITHIN 60 TARGET RE 0.25");
        assert_eq!(s.method, Method::Auto);
        assert_eq!(s.levels, DEFAULT_PLAN_LEVELS);
        assert_eq!(s.options.threads, 1);
        assert_eq!(s.options.batch_width, None);
        assert_eq!(s.options.seed, None);
        assert_eq!(s.options.mode, ExecMode::Sync);
        assert!(s.params.is_empty());
    }

    #[test]
    fn model_overrides_and_case_insensitive_keywords() {
        let s = spec_of(
            "estimate durability of gbm(beta=560, volatility=0.4, drift=0.1) \
             within 40 using mlss target re 25 % sync;",
        );
        assert_eq!(s.params.get("volatility"), Some(&0.4));
        assert_eq!(s.params.get("drift"), Some(&0.1));
        assert_eq!(s.method, Method::GMlss, "mlss aliases to gmlss");
        assert!((s.target_re - 0.25).abs() < 1e-12);
    }

    #[test]
    fn explain_and_show_models() {
        assert!(matches!(
            parse("EXPLAIN ESTIMATE DURABILITY OF walk(beta=5) WITHIN 50 TARGET RE 0.3").unwrap(),
            DialectStatement::ExplainEstimate(_)
        ));
        assert_eq!(parse("SHOW MODELS").unwrap(), DialectStatement::ShowModels);
        assert_eq!(parse("show models;").unwrap(), DialectStatement::ShowModels);
        assert_eq!(
            parse("SHOW DIAGNOSTICS").unwrap(),
            DialectStatement::ShowDiagnostics
        );
        assert_eq!(
            parse("show diagnostics;").unwrap(),
            DialectStatement::ShowDiagnostics
        );
    }

    #[test]
    fn batch_width_auto_parses_to_the_sentinel() {
        let s = spec_of(
            "ESTIMATE DURABILITY OF gbm(beta=560) WITHIN 500 TARGET RE 0.25 \
             WITH (batch_width=auto, threads=2)",
        );
        assert_eq!(s.options.batch_width, Some(mlss_core::width::AUTO_WIDTH));
        assert_eq!(s.options.threads, 2);
        // Case-insensitive, like the keywords.
        let s = spec_of(
            "ESTIMATE DURABILITY OF gbm(beta=560) WITHIN 500 TARGET RE 0.25 \
             WITH (batch_width=AUTO)",
        );
        assert_eq!(s.options.batch_width, Some(mlss_core::width::AUTO_WIDTH));
    }

    #[test]
    fn auto_is_rejected_everywhere_else() {
        // Other execution options don't take `auto`…
        let sql = "ESTIMATE DURABILITY OF gbm(beta=560) WITHIN 500 TARGET RE 0.25 \
             WITH (threads=auto)";
        let err = parse(sql).unwrap_err();
        assert!(matches!(
            err.kind,
            SpecErrorKind::InvalidValue { field: "threads", ref message }
                if message.contains("auto")
        ));
        let err = parse(
            "ESTIMATE DURABILITY OF gbm(beta=560) WITHIN 500 TARGET RE 0.25 WITH (seed=auto)",
        )
        .unwrap_err();
        assert!(matches!(
            err.kind,
            SpecErrorKind::InvalidValue { field: "seed", .. }
        ));
        // …and model parameters are numeric-only (auto is a syntax error
        // there, not a value error).
        assert!(parse("ESTIMATE DURABILITY OF gbm(beta=auto) WITHIN 500 TARGET RE 0.25").is_err());
    }

    #[test]
    fn is_dialect_routes() {
        assert!(is_dialect(
            "ESTIMATE DURABILITY OF x(beta=1) WITHIN 1 TARGET RE 1"
        ));
        assert!(is_dialect("  explain estimate …"));
        assert!(is_dialect("SHOW MODELS"));
        assert!(!is_dialect("SELECT * FROM t"));
        assert!(!is_dialect("INSERT INTO t VALUES (1)"));
    }

    #[test]
    fn spans_point_at_the_offender() {
        let sql = "ESTIMATE DURABILITY OF walk(beta=6) WITHIN 60 TARGET RE 0.25 WITH (bogus=1)";
        let err = parse(sql).unwrap_err();
        assert!(matches!(
            err.kind,
            SpecErrorKind::UnknownOption { ref name } if name == "bogus"
        ));
        let span = err.span.unwrap();
        assert_eq!(&sql[span.start..span.end], "bogus");
    }

    #[test]
    fn missing_beta_is_a_missing_clause() {
        let err = parse("ESTIMATE DURABILITY OF walk WITHIN 60 TARGET RE 0.25").unwrap_err();
        assert!(matches!(
            err.kind,
            SpecErrorKind::MissingClause { clause: "beta" }
        ));
    }

    #[test]
    fn catalog_checks_model_and_params() {
        use mlss_core::spec::ParamSpec;
        let schema = ModelSchema::new(
            "walk",
            "random walk",
            vec![ParamSpec::float("up", 0.3, 0.0, 1.0, "up probability")],
        );
        let catalog = [&schema];
        let err = parse_dialect(
            "ESTIMATE DURABILITY OF nope(beta=1) WITHIN 10 TARGET RE 0.5",
            Some(&catalog),
        )
        .unwrap_err();
        assert!(matches!(err.kind, SpecErrorKind::UnknownModel { .. }));
        let err = parse_dialect(
            "ESTIMATE DURABILITY OF walk(beta=1, wat=2) WITHIN 10 TARGET RE 0.5",
            Some(&catalog),
        )
        .unwrap_err();
        assert!(matches!(err.kind, SpecErrorKind::UnknownParam { .. }));
        let sql = "ESTIMATE DURABILITY OF walk(beta=1, up=1.5) WITHIN 10 TARGET RE 0.5";
        let err = parse_dialect(sql, Some(&catalog)).unwrap_err();
        assert!(matches!(err.kind, SpecErrorKind::ParamOutOfRange { .. }));
        let span = err.span.unwrap();
        assert_eq!(&sql[span.start..span.end], "1.5");
        // Int/bool shape violations get the same spanned treatment.
        let int_schema = ModelSchema::new(
            "lattice",
            "int-param model",
            vec![ParamSpec::int("start", 0.0, -10.0, 10.0, "start")],
        );
        let catalog2 = [&int_schema];
        let sql = "ESTIMATE DURABILITY OF lattice(beta=1, start=1.5) WITHIN 10 TARGET RE 0.5";
        let err = parse_dialect(sql, Some(&catalog2)).unwrap_err();
        assert!(matches!(err.kind, SpecErrorKind::ParamWrongType { .. }));
        let span = err.span.unwrap();
        assert_eq!(&sql[span.start..span.end], "1.5");
        assert!(parse_dialect(
            "ESTIMATE DURABILITY OF walk(beta=1, up=0.4) WITHIN 10 TARGET RE 0.5",
            Some(&catalog),
        )
        .is_ok());
    }

    fn rank_of(sql: &str) -> RankSpec {
        match parse(sql).unwrap() {
            DialectStatement::Rank(r) => r,
            other => panic!("expected Rank, got {other:?}"),
        }
    }

    #[test]
    fn rank_by_over_an_explicit_candidate_list() {
        let r = rank_of(
            "ESTIMATE DURABILITY OF walk(beta=6, up=0.3), walk(beta=6, up=0.4), \
             walk(beta=8) WITHIN 50 USING srs TARGET RE 0.5 \
             RANK BY TOP 2 (confidence=0.9, rounds=6, round_budget=20000) \
             WITH (seed=7) ASYNC",
        );
        assert_eq!(r.arms.len(), 3);
        assert_eq!(r.top_k, 2);
        assert!((r.confidence - 0.9).abs() < 1e-12);
        assert_eq!(r.max_rounds, 6);
        assert_eq!(r.round_budget, 20_000);
        assert_eq!(r.options.seed, Some(7));
        assert_eq!(r.options.mode, ExecMode::Async);
        // Labels are the canonical model refs, parallel to the arms.
        assert_eq!(r.labels.len(), 3);
        assert_eq!(r.labels[0], r.arms[0].model_ref());
        assert!(r.labels[0].contains("up=0.3"));
        // Shared clauses land on every arm.
        for arm in &r.arms {
            assert_eq!(arm.horizon, 50);
            assert_eq!(arm.method, Method::Srs);
            assert_eq!(arm.options.seed, Some(7));
        }
    }

    #[test]
    fn rank_by_expands_a_sweep() {
        let r = rank_of(
            "ESTIMATE DURABILITY OF walk(beta=6) SWEEP up FROM 0.30 TO 0.42 STEP 0.04 \
             WITHIN 50 TARGET RE 0.5 RANK BY TOP 1",
        );
        assert_eq!(r.arms.len(), 4);
        for (arm, expected) in r.arms.iter().zip([0.30, 0.34, 0.38, 0.42]) {
            assert!((arm.params["up"] - expected).abs() < 1e-9);
        }
        // Defaults fill in.
        assert_eq!(r.top_k, 1);
        assert!((r.confidence - mlss_core::spec::DEFAULT_RANK_CONFIDENCE).abs() < 1e-12);
        assert_eq!(r.max_rounds, mlss_core::spec::DEFAULT_RANK_ROUNDS);
        assert_eq!(r.round_budget, mlss_core::spec::DEFAULT_RANK_ROUND_BUDGET);
        // `beta` itself is sweepable: it varies the query, not a param.
        let r = rank_of(
            "ESTIMATE DURABILITY OF walk(up=0.4, beta=4) SWEEP beta FROM 4 TO 8 STEP 2 \
             WITHIN 50 TARGET RE 0.5 RANK BY TOP 1",
        );
        assert_eq!(r.arms.len(), 3);
        assert_eq!(
            r.arms.iter().map(|a| a.beta).collect::<Vec<_>>(),
            vec![4.0, 6.0, 8.0]
        );
    }

    #[test]
    fn rank_by_renders_back_to_a_parseable_statement() {
        let r = rank_of(
            "ESTIMATE DURABILITY OF walk(beta=6, up=0.3), walk(beta=6, up=0.4) WITHIN 50 \
             TARGET RE 0.5 RANK BY TOP 2 (rounds=6) WITH (seed=9)",
        );
        let rendered = r.render();
        let reparsed = rank_of(&rendered);
        assert_eq!(reparsed.labels, r.labels);
        assert_eq!(reparsed.top_k, r.top_k);
        assert_eq!(reparsed.max_rounds, r.max_rounds);
        assert_eq!(reparsed.options.seed, r.options.seed);
    }

    /// The malformed-`RANK BY` span table: every rejection points its
    /// byte span at the offending token, not the statement head.
    #[test]
    fn malformed_rank_by_spans_point_at_the_offender() {
        // (statement, expected span text, expected field-ish marker)
        let cases: &[(&str, &str)] = &[
            // A candidate field without a ranking question: the span is
            // the first comma — the token that made it a field.
            (
                "ESTIMATE DURABILITY OF walk(beta=6, up=0.3), walk(beta=6, up=0.4) \
                 WITHIN 50 TARGET RE 0.5",
                ",",
            ),
            // …or the SWEEP keyword when the sweep made it a field.
            (
                "ESTIMATE DURABILITY OF walk(beta=6) SWEEP up FROM 0.1 TO 0.3 STEP 0.1 \
                 WITHIN 50 TARGET RE 0.5",
                "SWEEP",
            ),
            // TOP k out of range.
            (
                "ESTIMATE DURABILITY OF walk(beta=6) WITHIN 50 TARGET RE 0.5 RANK BY TOP 0",
                "0",
            ),
            // TOP k beyond the candidate field.
            (
                "ESTIMATE DURABILITY OF walk(beta=6, up=0.3), walk(beta=6, up=0.4) \
                 WITHIN 50 TARGET RE 0.5 RANK BY TOP 5",
                "5",
            ),
            // Ranking options out of range.
            (
                "ESTIMATE DURABILITY OF walk(beta=6) WITHIN 50 TARGET RE 0.5 \
                 RANK BY TOP 1 (confidence=1.5)",
                "1.5",
            ),
            (
                "ESTIMATE DURABILITY OF walk(beta=6) WITHIN 50 TARGET RE 0.5 \
                 RANK BY TOP 1 (rounds=0)",
                "0",
            ),
            (
                "ESTIMATE DURABILITY OF walk(beta=6) WITHIN 50 TARGET RE 0.5 \
                 RANK BY TOP 1 (round_budget=0.5)",
                "0.5",
            ),
            // Unknown ranking option.
            (
                "ESTIMATE DURABILITY OF walk(beta=6) WITHIN 50 TARGET RE 0.5 \
                 RANK BY TOP 1 (cadence=3)",
                "cadence",
            ),
            // Sweep range/step violations.
            (
                "ESTIMATE DURABILITY OF walk(beta=6) SWEEP up FROM 0.5 TO 0.3 STEP 0.1 \
                 WITHIN 50 TARGET RE 0.5 RANK BY TOP 1",
                "0.3",
            ),
            (
                "ESTIMATE DURABILITY OF walk(beta=6) SWEEP up FROM 0.1 TO 0.5 STEP 0 \
                 WITHIN 50 TARGET RE 0.5 RANK BY TOP 1",
                "0",
            ),
            // A sweep that would expand past the arm cap fails at the
            // step token, before materializing anything.
            (
                "ESTIMATE DURABILITY OF walk(beta=6) SWEEP up FROM 0 TO 1 STEP 0.001 \
                 WITHIN 50 TARGET RE 0.5 RANK BY TOP 1",
                "0.001",
            ),
        ];
        for (sql, at) in cases {
            let err = parse(sql).unwrap_err();
            let span = err
                .span
                .unwrap_or_else(|| panic!("no span for: {sql} ({:?})", err.kind));
            assert_eq!(&sql[span.start..span.end], *at, "wrong span for: {sql}");
        }

        // Kind checks for the two clause-level rejections above.
        let err = parse(
            "ESTIMATE DURABILITY OF walk(beta=6, up=0.3), walk(beta=6, up=0.4) \
             WITHIN 50 TARGET RE 0.5",
        )
        .unwrap_err();
        assert!(matches!(
            err.kind,
            SpecErrorKind::MissingClause { clause: "RANK BY" }
        ));
        let err = parse(
            "ESTIMATE DURABILITY OF walk(beta=6) WITHIN 50 TARGET RE 0.5 \
             RANK BY TOP 1 (cadence=3)",
        )
        .unwrap_err();
        assert!(matches!(
            err.kind,
            SpecErrorKind::UnknownOption { ref name } if name == "cadence"
        ));
    }

    #[test]
    fn sweep_respects_the_schema_catalog() {
        use mlss_core::spec::ParamSpec;
        let schema = ModelSchema::new(
            "walk",
            "random walk",
            vec![ParamSpec::float("up", 0.3, 0.0, 1.0, "up probability")],
        );
        let catalog = [&schema];
        // Unknown sweep parameter, spanned at its name.
        let sql = "ESTIMATE DURABILITY OF walk(beta=6) SWEEP wat FROM 0.1 TO 0.3 STEP 0.1 \
                   WITHIN 50 TARGET RE 0.5 RANK BY TOP 1";
        let err = parse_dialect(sql, Some(&catalog)).unwrap_err();
        assert!(matches!(err.kind, SpecErrorKind::UnknownParam { .. }));
        let span = err.span.unwrap();
        assert_eq!(&sql[span.start..span.end], "wat");
        // A generated value outside the schema range is attached to the
        // sweep start (the offending value is generated, not written).
        let sql = "ESTIMATE DURABILITY OF walk(beta=6) SWEEP up FROM 0.8 TO 1.2 STEP 0.2 \
                   WITHIN 50 TARGET RE 0.5 RANK BY TOP 1";
        let err = parse_dialect(sql, Some(&catalog)).unwrap_err();
        assert!(matches!(err.kind, SpecErrorKind::ParamOutOfRange { .. }));
        let span = err.span.unwrap();
        assert_eq!(&sql[span.start..span.end], "0.8");
        // In range, the sweep expands cleanly.
        assert!(parse_dialect(
            "ESTIMATE DURABILITY OF walk(beta=6) SWEEP up FROM 0.2 TO 0.4 STEP 0.1 \
             WITHIN 50 TARGET RE 0.5 RANK BY TOP 1",
            Some(&catalog),
        )
        .is_ok());
    }

    #[test]
    fn explain_rank_parses() {
        assert!(matches!(
            parse(
                "EXPLAIN ESTIMATE DURABILITY OF walk(beta=6, up=0.3), walk(beta=6, up=0.4) \
                 WITHIN 50 TARGET RE 0.5 RANK BY TOP 1"
            )
            .unwrap(),
            DialectStatement::ExplainRank(_)
        ));
    }
}
