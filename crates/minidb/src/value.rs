//! Cell values and data types of the mini-DBMS.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 text.
    Text,
    /// Boolean.
    Bool,
}

/// A single cell value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Text.
    Text(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// The value's data type, `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// Is this NULL?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (ints widen to float); `None` for non-numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view; `None` for non-integers.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Text view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Does the value fit a column of type `ty` (NULL fits everything)?
    pub fn fits(&self, ty: DataType) -> bool {
        match self {
            Value::Null => true,
            v => v.data_type() == Some(ty),
        }
    }

    /// SQL-style comparison: NULL compares less than everything (for
    /// ordering purposes), numerics compare across Int/Float.
    pub fn cmp_sql(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Text(a), Text(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(Ordering::Equal),
                _ => Ordering::Equal, // incomparable types tie
            },
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_checks() {
        assert!(Value::Int(3).fits(DataType::Int));
        assert!(!Value::Int(3).fits(DataType::Float));
        assert!(Value::Null.fits(DataType::Text));
        assert_eq!(Value::Float(1.5).data_type(), Some(DataType::Float));
        assert_eq!(Value::Null.data_type(), None);
    }

    #[test]
    fn numeric_cross_comparison() {
        assert_eq!(Value::Int(2).cmp_sql(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(Value::Float(3.0).cmp_sql(&Value::Int(3)), Ordering::Equal);
    }

    #[test]
    fn null_sorts_first() {
        assert_eq!(Value::Null.cmp_sql(&Value::Int(-100)), Ordering::Less);
        assert_eq!(Value::Int(0).cmp_sql(&Value::Null), Ordering::Greater);
        assert_eq!(Value::Null.cmp_sql(&Value::Null), Ordering::Equal);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from("hi"), Value::Text("hi".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Text("x".into()).as_f64(), None);
    }

    #[test]
    fn display_round() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-2).to_string(), "-2");
    }
}
