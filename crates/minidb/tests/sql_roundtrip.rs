//! Property-style round-trip tests for the SQL front end: whatever we
//! INSERT must come back from SELECT, with predicates filtering exactly.
//!
//! Earlier revisions used `proptest`; the offline build environment
//! vendors no third-party crates, so inputs are drawn from a seeded
//! ChaCha stream instead — same invariants, reproducible cases.

use mlss_core::rng::{rng_from_seed, SimRng};
use mlss_db::{execute, Database, ExecResult, Value};
use rand::RngExt;

fn fresh_db() -> Database {
    let db = Database::new();
    execute(&db, "CREATE TABLE t (id INT, score FLOAT, tag TEXT)").unwrap();
    db
}

/// Escape a string for a SQL literal.
fn quote(s: &str) -> String {
    format!("'{}'", s.replace('\'', "''"))
}

fn random_tag(rng: &mut SimRng) -> String {
    let len = rng.random_range(0usize..9);
    (0..len)
        .map(|_| (b'a' + rng.random_range(0u32..26) as u8) as char)
        .collect()
}

fn random_rows(rng: &mut SimRng, max: usize) -> Vec<(i64, f64, String)> {
    let n = rng.random_range(1usize..max);
    (0..n)
        .map(|_| {
            (
                rng.random_range(0i64..1000),
                (rng.random::<f64>() - 0.5) * 2.0e6,
                random_tag(rng),
            )
        })
        .collect()
}

#[test]
fn insert_select_roundtrip() {
    for seed in 0u64..32 {
        let mut rng = rng_from_seed(seed);
        let rows = random_rows(&mut rng, 20);
        let db = fresh_db();
        for (id, score, tag) in &rows {
            let sql = format!("INSERT INTO t VALUES ({id}, {score:?}, {})", quote(tag));
            execute(&db, &sql).unwrap();
        }
        let res = execute(&db, "SELECT id, score, tag FROM t").unwrap();
        let got = res.rows();
        assert_eq!(got.len(), rows.len());
        for ((id, score, tag), row) in rows.iter().zip(got) {
            assert_eq!(row[0].as_i64().unwrap(), *id);
            assert!((row[1].as_f64().unwrap() - score).abs() < 1e-9 * score.abs().max(1.0));
            assert_eq!(row[2].as_str().unwrap(), tag.as_str());
        }
    }
}

#[test]
fn where_partitions_rows() {
    for seed in 100u64..116 {
        let mut rng = rng_from_seed(seed);
        let n = rng.random_range(1usize..30);
        let rows: Vec<(i64, f64)> = (0..n)
            .map(|_| {
                (
                    rng.random_range(0i64..100),
                    (rng.random::<f64>() - 0.5) * 200.0,
                )
            })
            .collect();
        let pivot = (rng.random::<f64>() - 0.5) * 200.0;
        let db = fresh_db();
        for (i, (id, score)) in rows.iter().enumerate() {
            execute(
                &db,
                &format!("INSERT INTO t VALUES ({id}, {score:?}, 'r{i}')"),
            )
            .unwrap();
        }
        let above = execute(&db, &format!("SELECT * FROM t WHERE score >= {pivot:?}")).unwrap();
        let below = execute(&db, &format!("SELECT * FROM t WHERE score < {pivot:?}")).unwrap();
        assert_eq!(above.rows().len() + below.rows().len(), rows.len());
        for row in above.rows() {
            assert!(row[1].as_f64().unwrap() >= pivot);
        }
        for row in below.rows() {
            assert!(row[1].as_f64().unwrap() < pivot);
        }
    }
}

#[test]
fn count_matches_inserted() {
    for n in [1usize, 2, 7, 19, 39] {
        let db = fresh_db();
        for i in 0..n {
            execute(&db, &format!("INSERT INTO t VALUES ({i}, 0.0, 'x')")).unwrap();
        }
        let res = execute(&db, "SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(res.scalar(), Some(&Value::Int(n as i64)));
        // Deleting everything empties the table.
        let del = execute(&db, "DELETE FROM t").unwrap();
        assert_eq!(del, ExecResult::Affected(n));
        let res = execute(&db, "SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(res.scalar(), Some(&Value::Int(0)));
    }
}

#[test]
fn order_by_sorts() {
    for seed in 200u64..216 {
        let mut rng = rng_from_seed(seed);
        let n = rng.random_range(2usize..25);
        let mut ids: Vec<i64> = (0..n).map(|_| rng.random_range(0i64..1000)).collect();
        let db = fresh_db();
        for id in &ids {
            execute(&db, &format!("INSERT INTO t VALUES ({id}, 0.0, 'x')")).unwrap();
        }
        let res = execute(&db, "SELECT id FROM t ORDER BY id ASC").unwrap();
        ids.sort();
        let got: Vec<i64> = res.rows().iter().map(|r| r[0].as_i64().unwrap()).collect();
        assert_eq!(got, ids);
    }
}
