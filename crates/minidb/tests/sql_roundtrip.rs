//! Property-based round-trip tests for the SQL front end: whatever we
//! INSERT must come back from SELECT, with predicates filtering exactly.

use mlss_db::{execute, Database, ExecResult, Value};
use proptest::prelude::*;

fn fresh_db() -> Database {
    let db = Database::new();
    execute(&db, "CREATE TABLE t (id INT, score FLOAT, tag TEXT)").unwrap();
    db
}

/// Escape a string for a SQL literal.
fn quote(s: &str) -> String {
    format!("'{}'", s.replace('\'', "''"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn insert_select_roundtrip(
        rows in proptest::collection::vec(
            (0i64..1000, -1.0e6f64..1.0e6, "[a-z]{0,8}"),
            1..20,
        )
    ) {
        let db = fresh_db();
        for (id, score, tag) in &rows {
            let sql = format!("INSERT INTO t VALUES ({id}, {score:?}, {})", quote(tag));
            execute(&db, &sql).unwrap();
        }
        let res = execute(&db, "SELECT id, score, tag FROM t").unwrap();
        let got = res.rows();
        prop_assert_eq!(got.len(), rows.len());
        for ((id, score, tag), row) in rows.iter().zip(got) {
            prop_assert_eq!(row[0].as_i64().unwrap(), *id);
            prop_assert!((row[1].as_f64().unwrap() - score).abs() < 1e-9 * score.abs().max(1.0));
            prop_assert_eq!(row[2].as_str().unwrap(), tag.as_str());
        }
    }

    #[test]
    fn where_partitions_rows(
        rows in proptest::collection::vec((0i64..100, -100.0f64..100.0), 1..30),
        pivot in -100.0f64..100.0,
    ) {
        let db = fresh_db();
        for (i, (id, score)) in rows.iter().enumerate() {
            execute(&db, &format!("INSERT INTO t VALUES ({id}, {score:?}, 'r{i}')")).unwrap();
        }
        let above = execute(&db, &format!("SELECT * FROM t WHERE score >= {pivot:?}")).unwrap();
        let below = execute(&db, &format!("SELECT * FROM t WHERE score < {pivot:?}")).unwrap();
        prop_assert_eq!(above.rows().len() + below.rows().len(), rows.len());
        for row in above.rows() {
            prop_assert!(row[1].as_f64().unwrap() >= pivot);
        }
        for row in below.rows() {
            prop_assert!(row[1].as_f64().unwrap() < pivot);
        }
    }

    #[test]
    fn count_matches_inserted(
        n in 1usize..40,
    ) {
        let db = fresh_db();
        for i in 0..n {
            execute(&db, &format!("INSERT INTO t VALUES ({i}, 0.0, 'x')")).unwrap();
        }
        let res = execute(&db, "SELECT COUNT(*) FROM t").unwrap();
        prop_assert_eq!(res.scalar(), Some(&Value::Int(n as i64)));
        // Deleting everything empties the table.
        let del = execute(&db, "DELETE FROM t").unwrap();
        prop_assert_eq!(del, ExecResult::Affected(n));
        let res = execute(&db, "SELECT COUNT(*) FROM t").unwrap();
        prop_assert_eq!(res.scalar(), Some(&Value::Int(0)));
    }

    #[test]
    fn order_by_sorts(
        mut ids in proptest::collection::vec(0i64..1000, 2..25),
    ) {
        let db = fresh_db();
        for id in &ids {
            execute(&db, &format!("INSERT INTO t VALUES ({id}, 0.0, 'x')")).unwrap();
        }
        let res = execute(&db, "SELECT id FROM t ORDER BY id ASC").unwrap();
        ids.sort();
        let got: Vec<i64> = res.rows().iter().map(|r| r[0].as_i64().unwrap()).collect();
        prop_assert_eq!(got, ids);
    }
}
