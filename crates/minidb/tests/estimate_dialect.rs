//! Parser coverage for the ESTIMATE dialect: seeded-grid round-trip
//! properties (parse → render → parse is a fixed point) plus a table of
//! malformed statements asserting `SpecError` variants and byte spans.

use mlss_core::rng::{rng_from_seed, SimRng};
use mlss_core::spec::{ExecMode, Method, QuerySpec, SpecErrorKind};
use mlss_db::{parse_dialect, DialectStatement, ModelRegistry};
use rand::RngExt;

fn parse_spec(sql: &str) -> QuerySpec {
    match parse_dialect(sql, None).unwrap_or_else(|e| panic!("{sql}\n  -> {e}")) {
        DialectStatement::Estimate(s) => s,
        other => panic!("expected Estimate, got {other:?}"),
    }
}

/// Draw a random-but-valid spec from a seeded stream, exercising every
/// field of the IR: model overrides, every method, levels, execution
/// options, sync/async.
fn random_spec(rng: &mut SimRng) -> QuerySpec {
    let models: [(&str, &[&str]); 4] = [
        ("cpp", &["initial", "premium", "intensity"]),
        ("walk", &["up", "down"]),
        ("gbm", &["drift", "volatility"]),
        ("ar", &["phi", "sigma"]),
    ];
    let (model, params) = models[rng.random_range(0u32..4) as usize];
    let beta = (rng.random::<f64>() - 0.2) * 1000.0;
    let horizon = rng.random_range(1u64..5000);
    let target_re = rng.random::<f64>().max(1e-6);
    let mut spec = QuerySpec::new(model, beta, horizon, target_re);
    spec.method = [Method::Srs, Method::SMlss, Method::GMlss, Method::Auto]
        [rng.random_range(0u32..4) as usize];
    if spec.method.needs_plan() {
        spec.levels = rng.random_range(1u64..9) as usize;
    }
    for p in params {
        if rng.random::<f64>() < 0.5 {
            // Strictly inside every chosen parameter's schema range.
            spec.params
                .insert(p.to_string(), rng.random::<f64>() * 0.9 + 1e-4);
        }
    }
    if rng.random::<f64>() < 0.5 {
        spec.options.threads = rng.random_range(1u64..9) as usize;
    }
    if rng.random::<f64>() < 0.5 {
        spec.options.batch_width = Some(rng.random_range(0u64..257) as usize);
    }
    if rng.random::<f64>() < 0.5 {
        // Full-u64 seeds: the parser must not round them through f64.
        spec.options.seed = Some(rng.random::<u64>());
    }
    if rng.random::<f64>() < 0.3 {
        spec.options.priority = rng.random_range(0u64..256) as u8;
    }
    if rng.random::<f64>() < 0.5 {
        spec.options.mode = ExecMode::Async;
    }
    spec
}

#[test]
fn seeded_grid_render_parse_is_a_fixed_point() {
    for seed in 0u64..8 {
        let mut rng = rng_from_seed(seed);
        for case in 0..50 {
            let spec = random_spec(&mut rng);
            let rendered = spec.render();
            let reparsed = parse_spec(&rendered);
            assert_eq!(reparsed, spec, "seed {seed} case {case}: {rendered}");
            assert_eq!(
                reparsed.render(),
                rendered,
                "seed {seed} case {case}: render not canonical"
            );
        }
    }
}

#[test]
fn rendered_specs_parse_under_the_builtin_catalog() {
    // Rendered statements must also survive catalog validation (the
    // random overrides are drawn inside every parameter's range).
    let models = ModelRegistry::with_builtins();
    let schemas = models.schemas();
    let mut rng = rng_from_seed(99);
    for _ in 0..50 {
        let spec = random_spec(&mut rng);
        let rendered = spec.render();
        let parsed = parse_dialect(&rendered, Some(&schemas))
            .unwrap_or_else(|e| panic!("{rendered}\n  -> {e}"));
        assert_eq!(parsed, DialectStatement::Estimate(spec));
    }
}

#[test]
fn full_u64_seed_survives_the_round_trip() {
    let mut spec = QuerySpec::new("walk", 5.0, 50, 0.3);
    spec.options.seed = Some(u64::MAX);
    let reparsed = parse_spec(&spec.render());
    assert_eq!(reparsed.options.seed, Some(u64::MAX));
}

#[test]
fn malformed_statements_fail_with_typed_spanned_errors() {
    let models = ModelRegistry::with_builtins();
    let schemas = models.schemas();
    // (statement, expected-kind predicate, substring the span must cover;
    //  "" means "don't check the span text").
    type KindCheck = fn(&SpecErrorKind) -> bool;
    let cases: Vec<(&str, KindCheck, &str)> = vec![
        (
            "SELECT DURABILITY",
            |k| matches!(k, SpecErrorKind::Syntax { .. }),
            "SELECT",
        ),
        (
            "ESTIMATE NOTHING",
            |k| matches!(k, SpecErrorKind::Syntax { .. }),
            "NOTHING",
        ),
        (
            "ESTIMATE DURABILITY OF walk WITHIN 10 TARGET RE 0.5",
            |k| matches!(k, SpecErrorKind::MissingClause { clause: "beta" }),
            "walk",
        ),
        (
            "ESTIMATE DURABILITY OF walk(beta=5) TARGET RE 0.5",
            |k| matches!(k, SpecErrorKind::MissingClause { clause: "WITHIN" }),
            "TARGET",
        ),
        (
            "ESTIMATE DURABILITY OF walk(beta=5) WITHIN 10",
            |k| {
                matches!(
                    k,
                    SpecErrorKind::MissingClause {
                        clause: "TARGET RE"
                    }
                )
            },
            "",
        ),
        (
            "ESTIMATE DURABILITY OF walk(beta=5) WITHIN 0 TARGET RE 0.5",
            |k| {
                matches!(
                    k,
                    SpecErrorKind::InvalidValue {
                        field: "horizon",
                        ..
                    }
                )
            },
            "0",
        ),
        (
            "ESTIMATE DURABILITY OF walk(beta=5) WITHIN 10 TARGET RE -0.5",
            |k| {
                matches!(
                    k,
                    SpecErrorKind::InvalidValue {
                        field: "target_re",
                        ..
                    }
                )
            },
            "-0.5",
        ),
        (
            "ESTIMATE DURABILITY OF walk(beta=5) WITHIN 10 USING sorcery TARGET RE 0.5",
            |k| matches!(k, SpecErrorKind::UnknownMethod { .. }),
            "sorcery",
        ),
        (
            "ESTIMATE DURABILITY OF walk(beta=5) WITHIN 10 USING gmlss(levels=0) TARGET RE 0.5",
            |k| {
                matches!(
                    k,
                    SpecErrorKind::InvalidValue {
                        field: "levels",
                        ..
                    }
                )
            },
            "0",
        ),
        (
            "ESTIMATE DURABILITY OF walk(beta=5) WITHIN 10 USING gmlss(depth=3) TARGET RE 0.5",
            |k| matches!(k, SpecErrorKind::UnknownOption { .. }),
            "depth",
        ),
        (
            "ESTIMATE DURABILITY OF walk(beta=5, beta=6) WITHIN 10 TARGET RE 0.5",
            |k| matches!(k, SpecErrorKind::Duplicate { .. }),
            "beta",
        ),
        (
            "ESTIMATE DURABILITY OF walk(beta=5) WITHIN 10 TARGET RE 0.5 WITH (threads=0)",
            |k| {
                matches!(
                    k,
                    SpecErrorKind::InvalidValue {
                        field: "threads",
                        ..
                    }
                )
            },
            "0",
        ),
        (
            "ESTIMATE DURABILITY OF walk(beta=5) WITHIN 10 TARGET RE 0.5 WITH (retries=2)",
            |k| matches!(k, SpecErrorKind::UnknownOption { .. }),
            "retries",
        ),
        (
            "ESTIMATE DURABILITY OF walk(beta=5) WITHIN 10 TARGET RE 0.5 WITH (priority=999)",
            |k| matches!(k, SpecErrorKind::InvalidValue { .. }),
            "999",
        ),
        (
            "ESTIMATE DURABILITY OF walk(beta=5) WITHIN 10 TARGET RE 0.5 garbage",
            |k| matches!(k, SpecErrorKind::Syntax { .. }),
            "garbage",
        ),
        (
            "ESTIMATE DURABILITY OF ghost(beta=5) WITHIN 10 TARGET RE 0.5",
            |k| matches!(k, SpecErrorKind::UnknownModel { .. }),
            "ghost",
        ),
        (
            "ESTIMATE DURABILITY OF walk(beta=5, umph=1) WITHIN 10 TARGET RE 0.5",
            |k| matches!(k, SpecErrorKind::UnknownParam { .. }),
            "umph",
        ),
        (
            "ESTIMATE DURABILITY OF walk(beta=5, up=7) WITHIN 10 TARGET RE 0.5",
            |k| matches!(k, SpecErrorKind::ParamOutOfRange { .. }),
            "7",
        ),
        (
            "ESTIMATE DURABILITY OF walk(beta=@) WITHIN 10 TARGET RE 0.5",
            |k| matches!(k, SpecErrorKind::Syntax { .. }),
            "@",
        ),
    ];
    for (sql, kind_ok, span_text) in cases {
        let err = parse_dialect(sql, Some(&schemas))
            .err()
            .unwrap_or_else(|| panic!("statement must fail: {sql}"));
        assert!(kind_ok(&err.kind), "{sql}\n  wrong kind: {:?}", err.kind);
        let span = err
            .span
            .unwrap_or_else(|| panic!("{sql}\n  error has no span: {err}"));
        assert!(
            span.start <= span.end && span.end <= sql.len(),
            "{sql}\n  span out of bounds: {span:?}"
        );
        if !span_text.is_empty() {
            assert_eq!(
                &sql[span.start..span.end],
                span_text,
                "{sql}\n  span points at the wrong token"
            );
        }
    }
}

#[test]
fn percent_and_fraction_targets_agree() {
    let a = parse_spec("ESTIMATE DURABILITY OF walk(beta=5) WITHIN 10 TARGET RE 0.5%");
    let b = parse_spec("ESTIMATE DURABILITY OF walk(beta=5) WITHIN 10 TARGET RE 0.005");
    assert_eq!(a, b);
}
