//! Shim-equivalence: every legacy positional call (`mlss_estimate`,
//! `mlss_submit`/`mlss_poll`) must produce **bit-identical** estimates
//! and `results` rows to the equivalent `ESTIMATE` statement at a fixed
//! seed — the proof that the positional procedures really are thin shims
//! over the same compile-and-dispatch path, with no hidden divergence in
//! RNG consumption, plan derivation, or result recording.

use mlss_core::scheduler::QueryId;
use mlss_db::{Session, SessionConfig, Value};

fn session(seed: u64) -> Session {
    Session::new(SessionConfig {
        workers: 2,
        slice_budget: 8_192,
        seed,
        ..SessionConfig::default()
    })
    .unwrap()
}

fn results_rows(s: &Session) -> Vec<Vec<Value>> {
    s.db()
        .with_table("results", |t| t.scan().map(|r| r.to_vec()).collect())
        .unwrap_or_default()
}

/// Column 8 is `millis` — wall-clock, the one legitimately
/// non-deterministic cell. Everything else must match bit-for-bit
/// (floats compared by bit pattern).
fn assert_rows_bit_identical(legacy: &[Vec<Value>], dialect: &[Vec<Value>], ctx: &str) {
    assert_eq!(legacy.len(), dialect.len(), "{ctx}: row count");
    for (i, (a, b)) in legacy.iter().zip(dialect).enumerate() {
        assert_eq!(a.len(), b.len(), "{ctx}: row {i} arity");
        for (c, (va, vb)) in a.iter().zip(b).enumerate() {
            if c == 8 {
                continue; // millis
            }
            match (va, vb) {
                (Value::Float(x), Value::Float(y)) => assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{ctx}: row {i} col {c}: {x} != {y}"
                ),
                _ => assert_eq!(va, vb, "{ctx}: row {i} col {c}"),
            }
        }
    }
}

#[test]
fn positional_estimate_is_bit_identical_to_estimate_statement() {
    // Same session seed on both sides ⇒ identical child RNG streams per
    // call ⇒ identical pilots, identical sample paths, identical rows.
    // Covers: SRS (no plan), g-MLSS (plan-cache miss then hit), the
    // "mlss" alias, auto resolution, and s-MLSS.
    let legacy = session(2024);
    let dialect = session(2024);

    let cases: Vec<(&str, &str, f64, i64, f64)> = vec![
        ("walk", "srs", 6.0, 50, 0.3),
        ("ar", "gmlss", 3.0, 40, 0.5),
        ("ar", "gmlss", 3.0, 40, 0.5), // plan-cache hit
        ("ar", "mlss", 3.0, 40, 0.5),  // alias, same cache key
        ("network", "auto", 5.0, 60, 0.5),
        ("ar", "smlss", 3.0, 40, 0.5),
    ];
    for (model, method, beta, horizon, re) in &cases {
        let tau_legacy = legacy
            .call(
                "mlss_estimate",
                &[
                    (*model).into(),
                    (*method).into(),
                    (*beta).into(),
                    Value::Int(*horizon),
                    (*re).into(),
                ],
            )
            .unwrap()
            .as_f64()
            .unwrap();
        // The equivalent statement: canonical method name, explicit
        // default levels (the shim's plan-cache key), raw-fraction RE.
        let canonical = if *method == "mlss" { "gmlss" } else { *method };
        let using = if canonical == "srs" {
            "USING srs".to_string()
        } else {
            format!("USING {canonical}(levels=4)")
        };
        let stmt = format!(
            "ESTIMATE DURABILITY OF {model}(beta={beta}) WITHIN {horizon} {using} TARGET RE {re}"
        );
        let res = dialect.execute(&stmt).unwrap();
        let tau_dialect = res.rows()[0][2].as_f64().unwrap();
        assert_eq!(
            tau_legacy.to_bits(),
            tau_dialect.to_bits(),
            "{model}/{method}: τ̂ diverged"
        );
    }
    assert_rows_bit_identical(
        &results_rows(&legacy),
        &results_rows(&dialect),
        "sync results table",
    );
    // The plan caches behaved identically too.
    assert_eq!(legacy.plan_cache().misses(), dialect.plan_cache().misses());
    assert_eq!(legacy.plan_cache().hits(), dialect.plan_cache().hits());
}

fn wait_tau(s: &Session, id: QueryId) -> f64 {
    let status = s.wait(id).unwrap().unwrap();
    status.estimate().expect("query completes").tau
}

#[test]
fn positional_submit_is_bit_identical_to_async_statement() {
    // Pinned seeds make scheduled queries reproducible: the legacy
    // positional submit and the ASYNC statement must run the identical
    // worker-0-canonical stream — including the deferred plan pilot on
    // the g-MLSS miss — and record identical rows.
    let legacy = session(7);
    let dialect = session(7);

    // (model, method, beta, horizon, re, priority, seed)
    let cases: Vec<(&str, &str, f64, i64, f64, i64, i64)> = vec![
        ("walk", "srs", 6.0, 50, 0.3, 0, 9001),
        ("ar", "gmlss", 3.0, 40, 0.5, 2, 9002), // cold cache: deferred pilot
        ("ar", "gmlss", 3.0, 40, 0.5, 0, 9003), // warm cache
    ];
    for (model, method, beta, horizon, re, priority, seed) in &cases {
        let id_legacy = legacy
            .call(
                "mlss_submit",
                &[
                    (*model).into(),
                    (*method).into(),
                    (*beta).into(),
                    Value::Int(*horizon),
                    (*re).into(),
                    Value::Int(*priority),
                    Value::Int(*seed),
                ],
            )
            .unwrap()
            .as_i64()
            .unwrap() as QueryId;
        let tau_legacy = wait_tau(&legacy, id_legacy);

        let using = if *method == "srs" {
            "USING srs".to_string()
        } else {
            format!("USING {method}(levels=4)")
        };
        let mut opts = vec![format!("seed={seed}")];
        if *priority != 0 {
            opts.push(format!("priority={priority}"));
        }
        let stmt = format!(
            "ESTIMATE DURABILITY OF {model}(beta={beta}) WITHIN {horizon} {using} \
             TARGET RE {re} WITH ({}) ASYNC",
            opts.join(", ")
        );
        let res = dialect.execute(&stmt).unwrap();
        let id_dialect = res.scalar().unwrap().as_i64().unwrap() as QueryId;
        let tau_dialect = wait_tau(&dialect, id_dialect);

        assert_eq!(
            tau_legacy.to_bits(),
            tau_dialect.to_bits(),
            "{model}/{method} seed {seed}: τ̂ diverged"
        );
    }
    assert_rows_bit_identical(
        &results_rows(&legacy),
        &results_rows(&dialect),
        "async results table",
    );
}

#[test]
fn native_submit_draws_the_same_seed_as_the_async_statement() {
    // Without a pinned seed both paths draw it as the first random of
    // the call's child stream — same session seed, same call order ⇒
    // the same drawn seed, so even unpinned submissions line up.
    let a = session(314);
    let b = session(314);
    let id_a = a.submit("walk", "srs", 6.0, 50, 0.3, 0).unwrap();
    let res = b
        .execute("ESTIMATE DURABILITY OF walk(beta=6) WITHIN 50 USING srs TARGET RE 0.3 ASYNC")
        .unwrap();
    let id_b = res.scalar().unwrap().as_i64().unwrap() as QueryId;
    let tau_a = wait_tau(&a, id_a);
    let tau_b = wait_tau(&b, id_b);
    assert_eq!(tau_a.to_bits(), tau_b.to_bits());
    assert_rows_bit_identical(&results_rows(&a), &results_rows(&b), "unpinned async");
}

#[test]
fn pinned_seed_statements_are_reproducible() {
    // A pinned seed makes a statement reproducible across sessions and
    // across front ends: the same `WITH (seed=…)` statement in two
    // fresh sessions yields bit-identical rows.
    let a = session(1);
    let b = session(2); // different session seeds: the pin must win
    let stmt = "ESTIMATE DURABILITY OF walk(beta=6) WITHIN 50 USING srs \
                TARGET RE 0.3 WITH (seed=777)";
    let ra = a.execute(stmt).unwrap();
    let rb = b.execute(stmt).unwrap();
    assert_eq!(
        ra.rows()[0][2].as_f64().unwrap().to_bits(),
        rb.rows()[0][2].as_f64().unwrap().to_bits()
    );
    assert_rows_bit_identical(&results_rows(&a), &results_rows(&b), "pinned sync");
}
