//! # mlss-nn
//!
//! A from-scratch LSTM + Mixture-Density-Network sequence model — the
//! paper's black-box stock simulator (§6, model (3), Figure 5), built in
//! pure Rust: dense linear algebra, an LSTM cell with a verified backward
//! pass, an MDN head, Adam, and truncated-BPTT training.
//!
//! The trained [`RnnStockModel`] implements
//! [`mlss_core::model::SimulationModel`], so MLSS treats it exactly like
//! any other process — the whole point of the paper's black-box claim.
//!
//! * [`tensor`] — minimal dense matrix/vector kernels;
//! * [`lstm`] — the recurrent cell (forward/backward, gradient-checked);
//! * [`mdn`] — the mixture head (NLL, sampling, gradient-checked);
//! * [`adam`] — the optimizer;
//! * [`stacked`] — multi-layer (stacked) LSTM, the paper's 2-layer form;
//! * [`model`] — the assembled network, training loop, and simulator.

#![warn(missing_docs)]

pub mod adam;
pub mod lstm;
pub mod mdn;
pub mod model;
pub mod stacked;
pub mod tensor;

pub use adam::Adam;
pub use lstm::{LstmCell, LstmGrads};
pub use mdn::{MdnHead, MixtureParams};
pub use model::{rnn_price_score, LstmMdn, NetConfig, RnnState, RnnStockModel, TrainingReport};
pub use stacked::{StackedLstm, StackedState};
