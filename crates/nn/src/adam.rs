//! Adam optimizer for the flat parameter vectors of the LSTM-MDN.

/// Adam state for one flat parameter vector.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay β₁.
    pub beta1: f64,
    /// Second-moment decay β₂.
    pub beta2: f64,
    /// Numerical-stability ε.
    pub eps: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Optimizer for a parameter vector of length `n` with the usual
    /// defaults (β₁ = 0.9, β₂ = 0.999).
    pub fn new(n: usize, lr: f64) -> Self {
        assert!(lr > 0.0);
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
        }
    }

    /// One update: `params -= lr · m̂ / (√v̂ + ε)`.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), self.m.len());
        assert_eq!(grads.len(), self.m.len());
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let mhat = self.m[i] / b1t;
            let vhat = self.v[i] / b2t;
            params[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }

    /// Number of updates performed.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimizes_quadratic() {
        // f(x) = (x - 3)², gradient 2(x - 3).
        let mut x = vec![0.0];
        let mut opt = Adam::new(1, 0.1);
        for _ in 0..500 {
            let g = vec![2.0 * (x[0] - 3.0)];
            opt.step(&mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-3, "x = {}", x[0]);
    }

    #[test]
    fn adam_handles_multidim() {
        // f(x, y) = x² + 10 y².
        let mut p = vec![5.0, -4.0];
        let mut opt = Adam::new(2, 0.05);
        for _ in 0..2000 {
            let g = vec![2.0 * p[0], 20.0 * p[1]];
            opt.step(&mut p, &g);
        }
        assert!(p[0].abs() < 1e-2 && p[1].abs() < 1e-2, "{p:?}");
    }

    #[test]
    fn step_count_advances() {
        let mut opt = Adam::new(1, 0.1);
        let mut p = vec![1.0];
        opt.step(&mut p, &[0.5]);
        opt.step(&mut p, &[0.5]);
        assert_eq!(opt.steps(), 2);
    }
}
