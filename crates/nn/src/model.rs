//! The LSTM-MDN sequence model and its use as a black-box simulator
//! (§6, model (3)).
//!
//! The network consumes the previous (normalized) log-return and emits a
//! Gaussian-mixture distribution over the next one. Trained by truncated
//! BPTT with Adam on a daily price series, it then acts as a
//! [`SimulationModel`]: the state carries the LSTM hidden/cell vectors and
//! the current price — exactly the paper's "the state at time t includes
//! both v_t and h_t".
//!
//! Scale note (DESIGN.md substitution 2): the paper stacks 2×256 LSTM
//! units; we default to 1×32, which trains in seconds on a CPU while
//! remaining a genuinely learned black box — MLSS only ever calls
//! `step`, so network capacity does not change any code path.

use crate::adam::Adam;
use crate::lstm::{LstmCell, LstmGrads};
use crate::mdn::{MdnGrads, MdnHead};
use mlss_core::model::{SimulationModel, Time};
use mlss_core::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Network and training hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NetConfig {
    /// LSTM hidden units.
    pub hidden: usize,
    /// Mixture components.
    pub mixtures: usize,
    /// BPTT window length (the paper trains with sequence length 50).
    pub seq_len: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Global gradient-norm clip.
    pub grad_clip: f64,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            hidden: 32,
            mixtures: 3,
            seq_len: 50,
            epochs: 60,
            lr: 3e-3,
            grad_clip: 5.0,
        }
    }
}

/// LSTM + MDN network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LstmMdn {
    /// Recurrent cell.
    pub cell: LstmCell,
    /// Mixture head.
    pub head: MdnHead,
}

/// Per-epoch training diagnostics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingReport {
    /// Mean NLL per epoch.
    pub epoch_nll: Vec<f64>,
}

impl TrainingReport {
    /// Final-epoch mean NLL.
    pub fn final_nll(&self) -> f64 {
        *self.epoch_nll.last().unwrap_or(&f64::NAN)
    }
}

impl LstmMdn {
    /// Fresh randomly initialized network.
    pub fn new(cfg: &NetConfig, rng: &mut SimRng) -> Self {
        Self {
            cell: LstmCell::new(1, cfg.hidden, rng),
            head: MdnHead::new(cfg.hidden, cfg.mixtures, rng),
        }
    }

    /// Mean NLL of predicting `targets[t]` from inputs `inputs[..=t]`,
    /// rolling from a zero state.
    pub fn sequence_nll(&self, inputs: &[f64], targets: &[f64]) -> f64 {
        assert_eq!(inputs.len(), targets.len());
        let hsz = self.cell.hidden;
        let mut h = vec![0.0; hsz];
        let mut c = vec![0.0; hsz];
        let mut total = 0.0;
        for (&x, &y) in inputs.iter().zip(targets) {
            self.cell.forward_inference(&[x], &mut h, &mut c);
            let (params, _) = self.head.forward(&h);
            total += MdnHead::nll(&params, y);
        }
        total / inputs.len() as f64
    }

    /// One BPTT window: forward, backward, and flattened gradients.
    /// Returns the window's mean NLL.
    fn window_grads(
        &self,
        inputs: &[f64],
        targets: &[f64],
        cell_grads: &mut LstmGrads,
        head_grads: &mut MdnGrads,
    ) -> f64 {
        let hsz = self.cell.hidden;
        let steps = inputs.len();
        let mut h = vec![0.0; hsz];
        let mut c = vec![0.0; hsz];
        let mut caches = Vec::with_capacity(steps);
        let mut mdn_out = Vec::with_capacity(steps);
        let mut hs = Vec::with_capacity(steps);
        let mut loss = 0.0;

        for &x in inputs {
            let (h2, c2, cache) = self.cell.forward(&[x], &h, &c);
            h = h2;
            c = c2;
            caches.push(cache);
            let (params, acts) = self.head.forward(&h);
            mdn_out.push((params, acts));
            hs.push(h.clone());
        }
        for (t, &y) in targets.iter().enumerate() {
            loss += MdnHead::nll(&mdn_out[t].0, y);
        }

        let mut dh_next = vec![0.0; hsz];
        let mut dc_next = vec![0.0; hsz];
        for t in (0..steps).rev() {
            let (params, acts) = &mdn_out[t];
            let mut dh = self
                .head
                .backward(&hs[t], acts, params, targets[t], head_grads);
            for (a, b) in dh.iter_mut().zip(&dh_next) {
                *a += b;
            }
            let (_dx, dh_prev, dc_prev) = self.cell.backward(&caches[t], &dh, &dc_next, cell_grads);
            dh_next = dh_prev;
            dc_next = dc_prev;
        }
        loss / steps as f64
    }

    /// Train on a sequence of normalized returns by truncated BPTT with
    /// Adam, one window per update.
    pub fn train(&mut self, returns: &[f64], cfg: &NetConfig) -> TrainingReport {
        assert!(
            returns.len() > cfg.seq_len + 1,
            "need more data than one window"
        );
        let n_params = self.cell.num_params() + self.head.num_params();
        let mut opt = Adam::new(n_params, cfg.lr);
        let mut cell_grads = LstmGrads::zeros_like(&self.cell);
        let mut head_grads = MdnGrads::zeros_like(&self.head);
        let mut epoch_nll = Vec::with_capacity(cfg.epochs);

        for _epoch in 0..cfg.epochs {
            let mut epoch_loss = 0.0;
            let mut windows = 0;
            let mut start = 0;
            while start + cfg.seq_len < returns.len() {
                let inputs = &returns[start..start + cfg.seq_len];
                let targets = &returns[start + 1..start + cfg.seq_len + 1];
                cell_grads.zero();
                head_grads.zero();
                let loss = self.window_grads(inputs, targets, &mut cell_grads, &mut head_grads);
                epoch_loss += loss;
                windows += 1;

                // Flatten, scale by window length already folded in (grads
                // are sums over the window; normalize to per-step).
                let mut flat_g = Vec::with_capacity(n_params);
                LstmCell::write_grads(&cell_grads, &mut flat_g);
                MdnHead::write_grads(&head_grads, &mut flat_g);
                let inv = 1.0 / cfg.seq_len as f64;
                for g in &mut flat_g {
                    *g *= inv;
                }
                // Global norm clip.
                let norm: f64 = flat_g.iter().map(|g| g * g).sum::<f64>().sqrt();
                if norm > cfg.grad_clip {
                    let s = cfg.grad_clip / norm;
                    for g in &mut flat_g {
                        *g *= s;
                    }
                }

                let mut flat_p = Vec::with_capacity(n_params);
                self.cell.write_params(&mut flat_p);
                self.head.write_params(&mut flat_p);
                opt.step(&mut flat_p, &flat_g);
                let used = self.cell.read_params(&flat_p);
                self.head.read_params(&flat_p[used..]);

                start += cfg.seq_len;
            }
            epoch_nll.push(epoch_loss / windows.max(1) as f64);
        }
        TrainingReport { epoch_nll }
    }
}

/// State of the RNN stock simulator: hidden/cell vectors, the last
/// normalized return, and the current price.
#[derive(Debug, Clone, PartialEq)]
pub struct RnnState {
    /// LSTM hidden vector.
    pub h: Vec<f64>,
    /// LSTM cell vector.
    pub c: Vec<f64>,
    /// Last normalized log-return (the next input).
    pub last_input: f64,
    /// Current price.
    pub price: f64,
}

/// The trained LSTM-MDN as a black-box price simulator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RnnStockModel {
    /// The trained network.
    pub net: LstmMdn,
    /// Price at t = 0 for simulations.
    pub initial_price: f64,
    /// Return normalization scale (std of training log-returns).
    pub scale: f64,
    /// Clamp on sampled normalized returns (stability guard; ±4 ≈ four
    /// standard deviations).
    pub return_clamp: f64,
}

impl RnnStockModel {
    /// Train a model on a raw daily price series.
    pub fn train_on_prices(
        prices: &[f64],
        cfg: &NetConfig,
        rng: &mut SimRng,
    ) -> (Self, TrainingReport) {
        assert!(prices.len() > cfg.seq_len + 2, "price series too short");
        assert!(prices.iter().all(|&p| p > 0.0), "prices must be positive");
        let returns: Vec<f64> = prices.windows(2).map(|w| (w[1] / w[0]).ln()).collect();
        let mean = mlss_core::stats::mean(&returns);
        let scale = mlss_core::stats::sample_variance(&returns).sqrt().max(1e-8);
        let normalized: Vec<f64> = returns.iter().map(|r| (r - mean) / scale).collect();

        let mut net = LstmMdn::new(cfg, rng);
        let report = net.train(&normalized, cfg);
        (
            Self {
                net,
                initial_price: *prices.last().expect("non-empty"),
                scale,
                return_clamp: 4.0,
            },
            report,
        )
        // Note: the mean return is folded into `scale`-normalized space;
        // simulation re-applies only the scale (drift is learned).
    }

    /// Hidden size of the underlying LSTM.
    pub fn hidden(&self) -> usize {
        self.net.cell.hidden
    }
}

impl SimulationModel for RnnStockModel {
    type State = RnnState;

    fn initial_state(&self) -> RnnState {
        RnnState {
            h: vec![0.0; self.net.cell.hidden],
            c: vec![0.0; self.net.cell.hidden],
            last_input: 0.0,
            price: self.initial_price,
        }
    }

    fn step(&self, state: &RnnState, _t: Time, rng: &mut SimRng) -> RnnState {
        let mut h = state.h.clone();
        let mut c = state.c.clone();
        self.net
            .cell
            .forward_inference(&[state.last_input], &mut h, &mut c);
        let (params, _) = self.net.head.forward(&h);
        let y = MdnHead::sample(&params, rng).clamp(-self.return_clamp, self.return_clamp);
        let price = state.price * (y * self.scale).exp();
        RnnState {
            h,
            c,
            last_input: y,
            price,
        }
    }

    /// Native batch kernel: the whole cohort's LSTM forward runs through
    /// [`crate::lstm::LstmCell::forward_inference_batch`] — a batched
    /// matrix product with the recurrent weight rows reused across lanes
    /// — and the per-step allocations of the scalar path (two hidden
    /// clones, a pre-activation buffer, and a fresh state per lane per
    /// step) collapse into three cohort-sized buffers per batch step.
    /// MDN sampling stays per lane on the lane's own RNG, so draws are
    /// identical to the scalar `step`.
    fn step_batch(
        &self,
        lanes: &mut [RnnState],
        _ts: &[Time],
        rngs: &mut [SimRng],
        alive: &[usize],
    ) {
        let hsz = self.net.cell.hidden;
        let n = alive.len();
        // Gather alive lanes into lane-major flat buffers.
        let mut xs = vec![0.0; n];
        let mut hs = vec![0.0; n * hsz];
        let mut cs = vec![0.0; n * hsz];
        for (k, &i) in alive.iter().enumerate() {
            xs[k] = lanes[i].last_input;
            hs[k * hsz..(k + 1) * hsz].copy_from_slice(&lanes[i].h);
            cs[k * hsz..(k + 1) * hsz].copy_from_slice(&lanes[i].c);
        }
        self.net
            .cell
            .forward_inference_batch(n, &xs, &mut hs, &mut cs);
        // Scatter back, then sample each lane's mixture on its own RNG.
        for (k, &i) in alive.iter().enumerate() {
            let lane = &mut lanes[i];
            lane.h.copy_from_slice(&hs[k * hsz..(k + 1) * hsz]);
            lane.c.copy_from_slice(&cs[k * hsz..(k + 1) * hsz]);
            let (params, _) = self.net.head.forward(&lane.h);
            let y =
                MdnHead::sample(&params, &mut rngs[i]).clamp(-self.return_clamp, self.return_clamp);
            lane.price *= (y * self.scale).exp();
            lane.last_input = y;
        }
    }
}

/// Score for RNN durability queries: the simulated price.
pub fn rnn_price_score(state: &RnnState) -> f64 {
    state.price
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlss_core::model::simulate_path;
    use mlss_core::rng::rng_from_seed;

    /// Tiny synthetic AR(1)-flavoured return series for fast tests.
    fn toy_prices(n: usize) -> Vec<f64> {
        use rand::RngExt;
        let mut rng = rng_from_seed(100);
        let mut p = 100.0_f64;
        let mut out = vec![p];
        for _ in 0..n {
            let r = 0.0005 + 0.01 * (rng.random::<f64>() * 2.0 - 1.0);
            p *= r.exp();
            out.push(p);
        }
        out
    }

    fn tiny_cfg() -> NetConfig {
        NetConfig {
            hidden: 8,
            mixtures: 2,
            seq_len: 20,
            epochs: 12,
            lr: 5e-3,
            grad_clip: 5.0,
        }
    }

    #[test]
    fn training_reduces_nll() {
        let prices = toy_prices(400);
        let cfg = tiny_cfg();
        let (_, report) = RnnStockModel::train_on_prices(&prices, &cfg, &mut rng_from_seed(1));
        let first = report.epoch_nll[0];
        let last = report.final_nll();
        assert!(
            last < first,
            "NLL should fall during training: {first} → {last}"
        );
    }

    #[test]
    fn simulation_produces_positive_finite_prices() {
        let prices = toy_prices(300);
        let cfg = tiny_cfg();
        let (model, _) = RnnStockModel::train_on_prices(&prices, &cfg, &mut rng_from_seed(2));
        let path = simulate_path(&model, 200, &mut rng_from_seed(3));
        for s in &path.states {
            assert!(s.price.is_finite() && s.price > 0.0, "price {}", s.price);
        }
    }

    #[test]
    fn initial_state_uses_last_training_price() {
        let prices = toy_prices(200);
        let cfg = tiny_cfg();
        let (model, _) = RnnStockModel::train_on_prices(&prices, &cfg, &mut rng_from_seed(4));
        assert_eq!(model.initial_state().price, *prices.last().unwrap());
    }

    #[test]
    fn steps_are_stochastic_but_reproducible() {
        let prices = toy_prices(200);
        let cfg = tiny_cfg();
        let (model, _) = RnnStockModel::train_on_prices(&prices, &cfg, &mut rng_from_seed(5));
        let a = simulate_path(&model, 50, &mut rng_from_seed(6));
        let b = simulate_path(&model, 50, &mut rng_from_seed(6));
        let c = simulate_path(&model, 50, &mut rng_from_seed(7));
        assert_eq!(
            a.states.last().unwrap().price,
            b.states.last().unwrap().price
        );
        assert_ne!(
            a.states.last().unwrap().price,
            c.states.last().unwrap().price
        );
    }

    #[test]
    fn batched_step_is_bit_identical_to_scalar() {
        use mlss_core::model::ScalarAdapter;
        use rand::RngExt;

        let prices = toy_prices(300);
        let cfg = tiny_cfg();
        let (model, _) = RnnStockModel::train_on_prices(&prices, &cfg, &mut rng_from_seed(21));

        const W: usize = 6;
        let mut native: Vec<RnnState> = (0..W).map(|_| model.initial_state()).collect();
        let mut adapted = native.clone();
        let mut rngs_n: Vec<mlss_core::rng::SimRng> =
            (0..W).map(|k| rng_from_seed(50 + k as u64)).collect();
        let mut rngs_a = rngs_n.clone();
        let ts: Vec<Time> = vec![1; W];
        let alive = [0usize, 1, 3, 4, 5];
        let wrapper = ScalarAdapter(&model);
        for _ in 0..25 {
            model.step_batch(&mut native, &ts, &mut rngs_n, &alive);
            wrapper.step_batch(&mut adapted, &ts, &mut rngs_a, &alive);
        }
        for k in 0..W {
            assert_eq!(native[k], adapted[k], "lane {k} state diverged");
            assert_eq!(
                rngs_n[k].random::<u64>(),
                rngs_a[k].random::<u64>(),
                "lane {k} RNG diverged"
            );
        }
        assert_eq!(native[2], model.initial_state(), "dead lane touched");
    }

    #[test]
    fn sampled_return_distribution_tracks_training_scale() {
        // Simulated one-step log-returns should have a spread within a
        // factor ~2.5 of the training returns' std.
        let prices = toy_prices(400);
        let cfg = tiny_cfg();
        let (model, _) = RnnStockModel::train_on_prices(&prices, &cfg, &mut rng_from_seed(8));
        let mut rng = rng_from_seed(9);
        let s0 = model.initial_state();
        let mut rets = Vec::new();
        for _ in 0..800 {
            let s1 = model.step(&s0, 1, &mut rng);
            rets.push((s1.price / s0.price).ln());
        }
        let sd = mlss_core::stats::sample_variance(&rets).sqrt();
        let ratio = sd / model.scale;
        assert!(
            (0.3..3.0).contains(&ratio),
            "simulated/training σ ratio = {ratio}"
        );
    }
}
