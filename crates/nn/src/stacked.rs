//! Stacked (multi-layer) LSTM — the paper's network uses **two** stacked
//! recurrent layers (§6, model (3)); this module provides the general
//! `L ≥ 1` case with the same gradient-checked forward/backward
//! machinery as the single cell.

use crate::lstm::{LstmCache, LstmCell, LstmGrads};
use mlss_core::rng::SimRng;
use serde::{Deserialize, Serialize};

/// A stack of LSTM layers; layer `l`'s hidden state feeds layer `l+1`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StackedLstm {
    /// The layers, bottom first.
    pub layers: Vec<LstmCell>,
}

/// Per-step caches for the whole stack.
#[derive(Debug, Clone)]
pub struct StackedCache {
    caches: Vec<LstmCache>,
}

/// Gradients for the whole stack.
#[derive(Debug, Clone)]
pub struct StackedGrads {
    /// Per-layer gradients, bottom first.
    pub layers: Vec<LstmGrads>,
}

impl StackedGrads {
    /// Zeroed gradients shaped like `stack`.
    pub fn zeros_like(stack: &StackedLstm) -> Self {
        Self {
            layers: stack.layers.iter().map(LstmGrads::zeros_like).collect(),
        }
    }

    /// Reset to zero.
    pub fn zero(&mut self) {
        for g in &mut self.layers {
            g.zero();
        }
    }
}

/// Hidden/cell state of the whole stack.
#[derive(Debug, Clone, PartialEq)]
pub struct StackedState {
    /// Hidden vectors per layer.
    pub h: Vec<Vec<f64>>,
    /// Cell vectors per layer.
    pub c: Vec<Vec<f64>>,
}

impl StackedLstm {
    /// Build a stack: the first layer consumes `input` features, later
    /// layers consume the previous layer's `hidden` outputs.
    pub fn new(input: usize, hidden: usize, layers: usize, rng: &mut SimRng) -> Self {
        assert!(layers >= 1);
        let mut v = Vec::with_capacity(layers);
        v.push(LstmCell::new(input, hidden, rng));
        for _ in 1..layers {
            v.push(LstmCell::new(hidden, hidden, rng));
        }
        Self { layers: v }
    }

    /// Zero initial state.
    pub fn zero_state(&self) -> StackedState {
        StackedState {
            h: self.layers.iter().map(|l| vec![0.0; l.hidden]).collect(),
            c: self.layers.iter().map(|l| vec![0.0; l.hidden]).collect(),
        }
    }

    /// Hidden width of the top layer (the MDN's input).
    pub fn top_hidden(&self) -> usize {
        self.layers.last().expect("non-empty").hidden
    }

    /// Forward one step with caches; mutates `state`, returns the top
    /// hidden vector and the caches.
    pub fn forward(&self, x: &[f64], state: &mut StackedState) -> (Vec<f64>, StackedCache) {
        let mut input = x.to_vec();
        let mut caches = Vec::with_capacity(self.layers.len());
        for (l, cell) in self.layers.iter().enumerate() {
            let (h, c, cache) = cell.forward(&input, &state.h[l], &state.c[l]);
            state.h[l] = h.clone();
            state.c[l] = c;
            caches.push(cache);
            input = h;
        }
        (input, StackedCache { caches })
    }

    /// Batched inference-only forward: one step for a cohort of lanes.
    /// `xs` is lane-major `n × input`; each lane's state is updated in
    /// place. Per lane bit-identical to [`StackedLstm::forward_inference`];
    /// the recurrent products run through the batched cell kernel.
    pub fn forward_inference_batch(&self, xs: &[f64], states: &mut [StackedState]) {
        let n = states.len();
        assert_eq!(xs.len(), n * self.layers[0].input, "xs must be n × input");
        let mut input = xs.to_vec();
        for (l, cell) in self.layers.iter().enumerate() {
            let hsz = cell.hidden;
            let mut hs = vec![0.0; n * hsz];
            let mut cs = vec![0.0; n * hsz];
            for (k, st) in states.iter().enumerate() {
                hs[k * hsz..(k + 1) * hsz].copy_from_slice(&st.h[l]);
                cs[k * hsz..(k + 1) * hsz].copy_from_slice(&st.c[l]);
            }
            cell.forward_inference_batch(n, &input, &mut hs, &mut cs);
            for (k, st) in states.iter_mut().enumerate() {
                st.h[l].copy_from_slice(&hs[k * hsz..(k + 1) * hsz]);
                st.c[l].copy_from_slice(&cs[k * hsz..(k + 1) * hsz]);
            }
            input = hs;
        }
    }

    /// Inference-only forward (no caches).
    pub fn forward_inference(&self, x: &[f64], state: &mut StackedState) {
        let mut input = x.to_vec();
        for (l, cell) in self.layers.iter().enumerate() {
            // Reuse the single-cell inference path layer by layer.
            let mut h = state.h[l].clone();
            let mut c = state.c[l].clone();
            cell.forward_inference(&input, &mut h, &mut c);
            state.h[l] = h.clone();
            state.c[l] = c;
            input = h;
        }
    }

    /// Backward one step: `dh_top` is the gradient on the top hidden
    /// output; `dhs`/`dcs` carry recurrent gradients per layer (mutated
    /// in place to the previous step's gradients).
    pub fn backward(
        &self,
        cache: &StackedCache,
        dh_top: &[f64],
        dhs: &mut [Vec<f64>],
        dcs: &mut [Vec<f64>],
        grads: &mut StackedGrads,
    ) {
        let top = self.layers.len() - 1;
        // Gradient flowing down through the stack via dx.
        let mut dx_down: Vec<f64> = Vec::new();
        for l in (0..=top).rev() {
            let mut dh = dhs[l].clone();
            if l == top {
                for (a, b) in dh.iter_mut().zip(dh_top) {
                    *a += b;
                }
            } else {
                for (a, b) in dh.iter_mut().zip(&dx_down) {
                    *a += b;
                }
            }
            let (dx, dh_prev, dc_prev) =
                self.layers[l].backward(&cache.caches[l], &dh, &dcs[l], &mut grads.layers[l]);
            dhs[l] = dh_prev;
            dcs[l] = dc_prev;
            dx_down = dx;
        }
    }

    /// Total parameter count.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(|l| l.num_params()).sum()
    }

    /// Append all parameters to a flat vector (bottom layer first).
    pub fn write_params(&self, out: &mut Vec<f64>) {
        for l in &self.layers {
            l.write_params(out);
        }
    }

    /// Load parameters from a flat slice; returns values consumed.
    pub fn read_params(&mut self, src: &[f64]) -> usize {
        let mut used = 0;
        for l in &mut self.layers {
            used += l.read_params(&src[used..]);
        }
        used
    }

    /// Append all gradients, mirroring `write_params`.
    pub fn write_grads(grads: &StackedGrads, out: &mut Vec<f64>) {
        for g in &grads.layers {
            LstmCell::write_grads(g, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlss_core::rng::rng_from_seed;

    #[test]
    fn single_layer_stack_matches_cell() {
        let mut rng = rng_from_seed(1);
        let stack = StackedLstm::new(2, 4, 1, &mut rng);
        let x = [0.3, -0.7];
        let mut st = stack.zero_state();
        let (h_top, _) = stack.forward(&x, &mut st);
        let (h_cell, c_cell, _) = stack.layers[0].forward(&x, &[0.0; 4], &[0.0; 4]);
        assert_eq!(h_top, h_cell);
        assert_eq!(st.c[0], c_cell);
    }

    #[test]
    fn inference_matches_training_forward() {
        let mut rng = rng_from_seed(2);
        let stack = StackedLstm::new(1, 3, 2, &mut rng);
        let mut a = stack.zero_state();
        let mut b = stack.zero_state();
        for x in [0.5, -0.25, 0.1] {
            stack.forward(&[x], &mut a);
            stack.forward_inference(&[x], &mut b);
        }
        for l in 0..2 {
            for k in 0..3 {
                assert!((a.h[l][k] - b.h[l][k]).abs() < 1e-12);
                assert!((a.c[l][k] - b.c[l][k]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn batched_inference_matches_scalar_per_lane() {
        let mut rng = rng_from_seed(11);
        let stack = StackedLstm::new(2, 5, 2, &mut rng);
        const W: usize = 4;
        let mut batch: Vec<StackedState> = (0..W).map(|_| stack.zero_state()).collect();
        let mut scalar = batch.clone();
        use rand::RngExt;
        let inputs: Vec<Vec<f64>> = (0..3)
            .map(|_| (0..W * 2).map(|_| rng.random::<f64>() - 0.5).collect())
            .collect();
        for xs in &inputs {
            stack.forward_inference_batch(xs, &mut batch);
            for (k, st) in scalar.iter_mut().enumerate() {
                stack.forward_inference(&xs[k * 2..(k + 1) * 2], st);
            }
        }
        for k in 0..W {
            assert_eq!(batch[k], scalar[k], "lane {k} diverged");
        }
    }

    #[test]
    fn param_roundtrip() {
        let mut rng = rng_from_seed(3);
        let stack = StackedLstm::new(2, 3, 2, &mut rng);
        let mut flat = Vec::new();
        stack.write_params(&mut flat);
        assert_eq!(flat.len(), stack.num_params());
        let mut other = StackedLstm::new(2, 3, 2, &mut rng);
        assert_eq!(other.read_params(&flat), flat.len());
        let mut flat2 = Vec::new();
        other.write_params(&mut flat2);
        assert_eq!(flat, flat2);
    }

    /// Gradient check of the two-layer stack over a 2-step unroll.
    #[test]
    fn stacked_gradient_check() {
        let mut rng = rng_from_seed(4);
        let mut stack = StackedLstm::new(1, 3, 2, &mut rng);
        let xs = [[0.4], [-0.6]];

        let loss = |stack: &StackedLstm| -> f64 {
            let mut st = stack.zero_state();
            let mut total = 0.0;
            for x in &xs {
                let (h, _) = stack.forward(x, &mut st);
                total += h.iter().sum::<f64>();
            }
            total
        };

        // Analytic gradient via BPTT.
        let mut st = stack.zero_state();
        let mut caches = Vec::new();
        for x in &xs {
            let (_, cache) = stack.forward(x, &mut st);
            caches.push(cache);
        }
        let mut grads = StackedGrads::zeros_like(&stack);
        let mut dhs = vec![vec![0.0; 3]; 2];
        let mut dcs = vec![vec![0.0; 3]; 2];
        let dh_top = vec![1.0; 3];
        for cache in caches.iter().rev() {
            stack.backward(cache, &dh_top, &mut dhs, &mut dcs, &mut grads);
        }

        let mut flat_g = Vec::new();
        StackedLstm::write_grads(&grads, &mut flat_g);
        let mut flat_p = Vec::new();
        stack.write_params(&mut flat_p);

        let eps = 1e-6;
        for idx in (0..flat_p.len()).step_by(11) {
            let orig = flat_p[idx];
            flat_p[idx] = orig + eps;
            stack.read_params(&flat_p);
            let up = loss(&stack);
            flat_p[idx] = orig - eps;
            stack.read_params(&flat_p);
            let dn = loss(&stack);
            flat_p[idx] = orig;
            stack.read_params(&flat_p);
            let numeric = (up - dn) / (2.0 * eps);
            assert!(
                (numeric - flat_g[idx]).abs() < 1e-6,
                "param {idx}: numeric {numeric} vs analytic {}",
                flat_g[idx]
            );
        }
    }
}
