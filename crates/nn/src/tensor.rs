//! Minimal dense linear algebra for the LSTM-MDN substrate.
//!
//! A row-major `f64` matrix with exactly the operations the network
//! needs: matrix-vector products, transposed products for backprop, outer
//! products for weight gradients, and element-wise updates. Deliberately
//! small — the models here are tiny (tens of units), so clarity and
//! testability beat BLAS.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a closure over (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Raw data slice (row-major).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data slice.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element accessor.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// `y += A·x` (matrix-vector multiply-accumulate).
    pub fn gemv_acc(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "gemv dimension mismatch");
        assert_eq!(y.len(), self.rows, "gemv output mismatch");
        for (r, yr) in y.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *yr += acc;
        }
    }

    /// `y += Aᵀ·x` (transposed multiply-accumulate, for backprop).
    pub fn gemv_transpose_acc(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "gemv^T dimension mismatch");
        assert_eq!(y.len(), self.cols, "gemv^T output mismatch");
        for (r, &xr) in x.iter().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            if xr == 0.0 {
                continue;
            }
            for (yc, a) in y.iter_mut().zip(row) {
                *yc += xr * a;
            }
        }
    }

    /// `self += scale · u vᵀ` (outer-product accumulate, for weight grads).
    pub fn outer_acc(&mut self, u: &[f64], v: &[f64], scale: f64) {
        assert_eq!(u.len(), self.rows);
        assert_eq!(v.len(), self.cols);
        for (r, &u_r) in u.iter().enumerate() {
            let ur = u_r * scale;
            if ur == 0.0 {
                continue;
            }
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (a, b) in row.iter_mut().zip(v) {
                *a += ur * b;
            }
        }
    }

    /// Set all entries to zero.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Sum of squared entries (for gradient-norm diagnostics/clipping).
    pub fn sq_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum()
    }
}

/// `y += a·x` over slices.
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// Numerically stable softmax into a fresh vector.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Logistic sigmoid.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemv_basic() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64); // [[0,1,2],[3,4,5]]
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 2];
        a.gemv_acc(&x, &mut y);
        assert_eq!(y, [8.0, 26.0]);
    }

    #[test]
    fn gemv_transpose_is_adjoint() {
        // ⟨A x, u⟩ == ⟨x, Aᵀ u⟩.
        let a = Matrix::from_fn(3, 2, |r, c| (r as f64 + 1.0) * (c as f64 - 0.5));
        let x = [0.7, -1.3];
        let u = [2.0, 0.5, -1.0];
        let mut ax = [0.0; 3];
        a.gemv_acc(&x, &mut ax);
        let lhs: f64 = ax.iter().zip(&u).map(|(p, q)| p * q).sum();
        let mut atu = [0.0; 2];
        a.gemv_transpose_acc(&u, &mut atu);
        let rhs: f64 = atu.iter().zip(&x).map(|(p, q)| p * q).sum();
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn outer_product_accumulates() {
        let mut a = Matrix::zeros(2, 2);
        a.outer_acc(&[1.0, 2.0], &[3.0, 4.0], 0.5);
        assert_eq!(a.get(0, 0), 1.5);
        assert_eq!(a.get(1, 1), 4.0);
        a.outer_acc(&[1.0, 0.0], &[1.0, 0.0], 1.0);
        assert_eq!(a.get(0, 0), 2.5);
    }

    #[test]
    fn softmax_normalizes_and_orders() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
        // Stability with large logits.
        let q = softmax(&[1000.0, 1000.0]);
        assert!((q[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sigmoid_range_and_symmetry() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(100.0) <= 1.0 && sigmoid(-100.0) >= 0.0);
    }

    #[test]
    fn axpy_works() {
        let mut y = [1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, [7.0, 9.0]);
    }
}
