//! Mixture Density Network head (Bishop 1994), as in the paper's
//! LSTM-RNN-MDN stock model (§6, model (3), Figure 5).
//!
//! A linear layer maps the LSTM hidden state to `3K` outputs per step:
//! mixture logits, means, and log standard deviations of a `K`-component
//! Gaussian mixture over the next (normalized) value. Training minimizes
//! the negative log-likelihood; sampling draws a component then a normal.

use crate::tensor::{softmax, Matrix};
use mlss_core::rng::SimRng;
use rand::RngExt;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// Clamp for log-σ to keep sampling numerically sane.
const LOG_SIGMA_MIN: f64 = -7.0;
const LOG_SIGMA_MAX: f64 = 3.0;

/// The MDN head parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MdnHead {
    /// Projection, `3K × H`.
    pub w: Matrix,
    /// Bias, `3K`.
    pub b: Vec<f64>,
    /// Number of mixture components `K`.
    pub mixtures: usize,
    /// Hidden size `H`.
    pub hidden: usize,
}

/// Mixture parameters produced for one step.
#[derive(Debug, Clone)]
pub struct MixtureParams {
    /// Component weights (softmax of logits), length `K`.
    pub pi: Vec<f64>,
    /// Component means, length `K`.
    pub mu: Vec<f64>,
    /// Component standard deviations, length `K`.
    pub sigma: Vec<f64>,
}

/// Gradients for the head.
#[derive(Debug, Clone)]
pub struct MdnGrads {
    /// d/dW.
    pub w: Matrix,
    /// d/db.
    pub b: Vec<f64>,
}

impl MdnGrads {
    /// Zeroed gradients shaped like `head`.
    pub fn zeros_like(head: &MdnHead) -> Self {
        Self {
            w: Matrix::zeros(3 * head.mixtures, head.hidden),
            b: vec![0.0; 3 * head.mixtures],
        }
    }

    /// Reset to zero.
    pub fn zero(&mut self) {
        self.w.fill_zero();
        self.b.fill(0.0);
    }
}

impl MdnHead {
    /// Randomly initialized head with means spread over `±0.5` so the
    /// mixture starts diverse.
    pub fn new(hidden: usize, mixtures: usize, rng: &mut SimRng) -> Self {
        assert!(hidden >= 1 && mixtures >= 1);
        let scale = 1.0 / (hidden as f64).sqrt();
        let w = Matrix::from_fn(3 * mixtures, hidden, |_, _| {
            (rng.random::<f64>() * 2.0 - 1.0) * scale
        });
        let mut b = vec![0.0; 3 * mixtures];
        for (k, slot) in b[mixtures..2 * mixtures].iter_mut().enumerate() {
            *slot = (k as f64 / mixtures.max(1) as f64 - 0.5) * 1.0;
        }
        Self {
            w,
            b,
            mixtures,
            hidden,
        }
    }

    /// Forward: hidden state → mixture parameters. Also returns the raw
    /// activations needed by the backward pass.
    pub fn forward(&self, h: &[f64]) -> (MixtureParams, Vec<f64>) {
        assert_eq!(h.len(), self.hidden);
        let k = self.mixtures;
        let mut a = self.b.clone();
        self.w.gemv_acc(h, &mut a);
        let pi = softmax(&a[..k]);
        let mu = a[k..2 * k].to_vec();
        let sigma: Vec<f64> = a[2 * k..3 * k]
            .iter()
            .map(|&ls| ls.clamp(LOG_SIGMA_MIN, LOG_SIGMA_MAX).exp())
            .collect();
        (MixtureParams { pi, mu, sigma }, a)
    }

    /// Negative log-likelihood of observing `y` under the mixture.
    pub fn nll(params: &MixtureParams, y: f64) -> f64 {
        -log_likelihood(params, y)
    }

    /// Backward pass for the NLL at one step: accumulates parameter
    /// gradients into `grads` and returns `dL/dh`.
    pub fn backward(
        &self,
        h: &[f64],
        activations: &[f64],
        params: &MixtureParams,
        y: f64,
        grads: &mut MdnGrads,
    ) -> Vec<f64> {
        let k = self.mixtures;
        // Responsibilities γ_k ∝ π_k N(y; μ_k, σ_k).
        let gamma = responsibilities(params, y);

        let mut da = vec![0.0; 3 * k];
        for j in 0..k {
            // d NLL / d logit_j = π_j − γ_j.
            da[j] = params.pi[j] - gamma[j];
            // d NLL / d μ_j = γ_j (μ_j − y)/σ_j².
            let s2 = params.sigma[j] * params.sigma[j];
            da[k + j] = gamma[j] * (params.mu[j] - y) / s2;
            // d NLL / d logσ_j = γ_j (1 − (y−μ_j)²/σ_j²); zero where the
            // clamp saturated.
            let ls = activations[2 * k + j];
            if (LOG_SIGMA_MIN..=LOG_SIGMA_MAX).contains(&ls) {
                let zsq = (y - params.mu[j]) * (y - params.mu[j]) / s2;
                da[2 * k + j] = gamma[j] * (1.0 - zsq);
            }
        }

        grads.w.outer_acc(&da, h, 1.0);
        for (gb, d) in grads.b.iter_mut().zip(&da) {
            *gb += d;
        }
        let mut dh = vec![0.0; self.hidden];
        self.w.gemv_transpose_acc(&da, &mut dh);
        dh
    }

    /// Sample from the mixture.
    pub fn sample(params: &MixtureParams, rng: &mut SimRng) -> f64 {
        let mut u = rng.random::<f64>();
        let mut comp = params.pi.len() - 1;
        for (j, &p) in params.pi.iter().enumerate() {
            if u < p {
                comp = j;
                break;
            }
            u -= p;
        }
        let normal = Normal::new(params.mu[comp], params.sigma[comp]).expect("σ clamped positive");
        normal.sample(rng)
    }

    /// Total number of scalar parameters.
    pub fn num_params(&self) -> usize {
        3 * self.mixtures * self.hidden + 3 * self.mixtures
    }

    /// Append parameters to a flat vector.
    pub fn write_params(&self, out: &mut Vec<f64>) {
        out.extend_from_slice(self.w.data());
        out.extend_from_slice(&self.b);
    }

    /// Load parameters from a flat slice; returns the number consumed.
    pub fn read_params(&mut self, src: &[f64]) -> usize {
        let nw = self.w.data().len();
        let nb = self.b.len();
        self.w.data_mut().copy_from_slice(&src[..nw]);
        self.b.copy_from_slice(&src[nw..nw + nb]);
        nw + nb
    }

    /// Append gradients to a flat vector, mirroring `write_params`.
    pub fn write_grads(grads: &MdnGrads, out: &mut Vec<f64>) {
        out.extend_from_slice(grads.w.data());
        out.extend_from_slice(&grads.b);
    }
}

/// Log-likelihood `ln Σ_k π_k N(y; μ_k, σ_k)`, computed stably via
/// log-sum-exp.
pub fn log_likelihood(params: &MixtureParams, y: f64) -> f64 {
    let k = params.pi.len();
    let mut terms = Vec::with_capacity(k);
    for j in 0..k {
        let s = params.sigma[j];
        let z = (y - params.mu[j]) / s;
        let log_n = -0.5 * z * z - s.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln();
        terms.push(params.pi[j].max(1e-300).ln() + log_n);
    }
    let max = terms.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    max + terms.iter().map(|t| (t - max).exp()).sum::<f64>().ln()
}

/// Posterior responsibilities `γ_k`.
fn responsibilities(params: &MixtureParams, y: f64) -> Vec<f64> {
    let k = params.pi.len();
    let mut logs = Vec::with_capacity(k);
    for j in 0..k {
        let s = params.sigma[j];
        let z = (y - params.mu[j]) / s;
        logs.push(params.pi[j].max(1e-300).ln() - 0.5 * z * z - s.ln());
    }
    softmax(&logs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlss_core::rng::rng_from_seed;

    #[test]
    fn forward_produces_valid_mixture() {
        let mut rng = rng_from_seed(1);
        let head = MdnHead::new(4, 3, &mut rng);
        let (p, _) = head.forward(&[0.1, -0.4, 0.2, 0.9]);
        assert!((p.pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.sigma.iter().all(|&s| s > 0.0));
        assert_eq!(p.mu.len(), 3);
    }

    #[test]
    fn nll_is_lower_near_means() {
        let p = MixtureParams {
            pi: vec![1.0],
            mu: vec![2.0],
            sigma: vec![0.5],
        };
        assert!(MdnHead::nll(&p, 2.0) < MdnHead::nll(&p, 4.0));
    }

    #[test]
    fn sampling_follows_mixture_weights() {
        let p = MixtureParams {
            pi: vec![0.9, 0.1],
            mu: vec![-10.0, 10.0],
            sigma: vec![0.1, 0.1],
        };
        let mut rng = rng_from_seed(5);
        let mut low = 0;
        for _ in 0..2000 {
            if MdnHead::sample(&p, &mut rng) < 0.0 {
                low += 1;
            }
        }
        let frac = low as f64 / 2000.0;
        assert!((frac - 0.9).abs() < 0.03, "frac = {frac}");
    }

    #[test]
    fn gradient_check_nll() {
        let mut rng = rng_from_seed(7);
        let mut head = MdnHead::new(3, 2, &mut rng);
        let h = [0.3, -0.6, 0.8];
        let y = 0.4;

        let loss = |head: &MdnHead| -> f64 {
            let (p, _) = head.forward(&h);
            MdnHead::nll(&p, y)
        };

        let (p, a) = head.forward(&h);
        let mut grads = MdnGrads::zeros_like(&head);
        let dh = head.backward(&h, &a, &p, y, &mut grads);

        let mut flat_g = Vec::new();
        MdnHead::write_grads(&grads, &mut flat_g);
        let mut flat_p = Vec::new();
        head.write_params(&mut flat_p);

        let eps = 1e-6;
        for idx in 0..flat_p.len() {
            let orig = flat_p[idx];
            flat_p[idx] = orig + eps;
            head.read_params(&flat_p);
            let up = loss(&head);
            flat_p[idx] = orig - eps;
            head.read_params(&flat_p);
            let dn = loss(&head);
            flat_p[idx] = orig;
            head.read_params(&flat_p);
            let numeric = (up - dn) / (2.0 * eps);
            assert!(
                (numeric - flat_g[idx]).abs() < 1e-6,
                "param {idx}: {numeric} vs {}",
                flat_g[idx]
            );
        }

        // dL/dh numeric check.
        let mut hh = h;
        let eps = 1e-6;
        hh[1] += eps;
        let up = {
            let (p, _) = head.forward(&hh);
            MdnHead::nll(&p, y)
        };
        hh[1] -= 2.0 * eps;
        let dn = {
            let (p, _) = head.forward(&hh);
            MdnHead::nll(&p, y)
        };
        let numeric = (up - dn) / (2.0 * eps);
        assert!((numeric - dh[1]).abs() < 1e-6);
    }

    #[test]
    fn log_likelihood_matches_single_gaussian() {
        let p = MixtureParams {
            pi: vec![1.0],
            mu: vec![0.0],
            sigma: vec![1.0],
        };
        let ll = log_likelihood(&p, 0.0);
        let expect = -0.5 * (2.0 * std::f64::consts::PI).ln();
        assert!((ll - expect).abs() < 1e-12);
    }
}
