//! A single-layer LSTM cell with full forward and backward passes.
//!
//! Standard formulation (gate order `i, f, g, o` in the stacked weight
//! rows):
//!
//! ```text
//! z = W_x x + W_h h_prev + b              (4H)
//! i = σ(z_i)   f = σ(z_f)   g = tanh(z_g)   o = σ(z_o)
//! c = f ⊙ c_prev + i ⊙ g
//! h = o ⊙ tanh(c)
//! ```
//!
//! The backward pass is verified against numeric differentiation in the
//! crate's gradient-check tests.

use crate::tensor::{sigmoid, Matrix};
use mlss_core::rng::SimRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// LSTM cell parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LstmCell {
    /// Input weights, `4H × I`.
    pub wx: Matrix,
    /// Recurrent weights, `4H × H`.
    pub wh: Matrix,
    /// Bias, `4H`.
    pub b: Vec<f64>,
    /// Hidden size `H`.
    pub hidden: usize,
    /// Input size `I`.
    pub input: usize,
}

/// Per-step cache needed by the backward pass.
#[derive(Debug, Clone)]
pub struct LstmCache {
    x: Vec<f64>,
    h_prev: Vec<f64>,
    c_prev: Vec<f64>,
    i: Vec<f64>,
    f: Vec<f64>,
    g: Vec<f64>,
    o: Vec<f64>,
    tanh_c: Vec<f64>,
}

/// Gradient accumulators mirroring [`LstmCell`].
#[derive(Debug, Clone)]
pub struct LstmGrads {
    /// d/dW_x.
    pub wx: Matrix,
    /// d/dW_h.
    pub wh: Matrix,
    /// d/db.
    pub b: Vec<f64>,
}

impl LstmGrads {
    /// Zeroed gradients shaped like `cell`.
    pub fn zeros_like(cell: &LstmCell) -> Self {
        Self {
            wx: Matrix::zeros(4 * cell.hidden, cell.input),
            wh: Matrix::zeros(4 * cell.hidden, cell.hidden),
            b: vec![0.0; 4 * cell.hidden],
        }
    }

    /// Reset to zero.
    pub fn zero(&mut self) {
        self.wx.fill_zero();
        self.wh.fill_zero();
        self.b.fill(0.0);
    }
}

impl LstmCell {
    /// Randomly initialized cell: uniform `±1/√H` weights, forget-gate
    /// bias +1 (the standard trick that keeps early memories alive).
    pub fn new(input: usize, hidden: usize, rng: &mut SimRng) -> Self {
        assert!(input >= 1 && hidden >= 1);
        let scale = 1.0 / (hidden as f64).sqrt();
        let mut init = |rows: usize, cols: usize| {
            Matrix::from_fn(rows, cols, |_, _| (rng.random::<f64>() * 2.0 - 1.0) * scale)
        };
        let wx = init(4 * hidden, input);
        let wh = init(4 * hidden, hidden);
        let mut b = vec![0.0; 4 * hidden];
        for v in &mut b[hidden..2 * hidden] {
            *v = 1.0;
        }
        Self {
            wx,
            wh,
            b,
            hidden,
            input,
        }
    }

    /// Forward one step. Returns `(h, c, cache)`.
    pub fn forward(
        &self,
        x: &[f64],
        h_prev: &[f64],
        c_prev: &[f64],
    ) -> (Vec<f64>, Vec<f64>, LstmCache) {
        let hsz = self.hidden;
        assert_eq!(x.len(), self.input);
        assert_eq!(h_prev.len(), hsz);
        assert_eq!(c_prev.len(), hsz);

        let mut z = self.b.clone();
        self.wx.gemv_acc(x, &mut z);
        self.wh.gemv_acc(h_prev, &mut z);

        let mut i = vec![0.0; hsz];
        let mut f = vec![0.0; hsz];
        let mut g = vec![0.0; hsz];
        let mut o = vec![0.0; hsz];
        for k in 0..hsz {
            i[k] = sigmoid(z[k]);
            f[k] = sigmoid(z[hsz + k]);
            g[k] = z[2 * hsz + k].tanh();
            o[k] = sigmoid(z[3 * hsz + k]);
        }
        let mut c = vec![0.0; hsz];
        let mut tanh_c = vec![0.0; hsz];
        let mut h = vec![0.0; hsz];
        for k in 0..hsz {
            c[k] = f[k] * c_prev[k] + i[k] * g[k];
            tanh_c[k] = c[k].tanh();
            h[k] = o[k] * tanh_c[k];
        }
        let cache = LstmCache {
            x: x.to_vec(),
            h_prev: h_prev.to_vec(),
            c_prev: c_prev.to_vec(),
            i,
            f,
            g,
            o,
            tanh_c,
        };
        (h, c, cache)
    }

    /// Batched inference: one forward step for `n` independent lanes held
    /// lane-major in flat buffers (`xs` is `n × I`, `hs`/`cs` are
    /// `n × H`, updated in place).
    ///
    /// Internally the cohort is transposed into **struct-of-arrays**
    /// layout (lane is the fastest-varying index), which turns both
    /// matrix products into loops whose inner dimension runs across
    /// lanes: one weight element is broadcast against `n` contiguous
    /// lane slots. Each lane's accumulator chain keeps the exact
    /// element order of the scalar [`LstmCell::forward_inference`] dot
    /// product — so results are bit-identical lane by lane — while the
    /// chains of different lanes are independent, letting the compiler
    /// vectorize and pipeline them (a scalar dot product is a single
    /// serial FP-add dependency chain and bounds the GEMV at FP-add
    /// latency; `n` interleaved chains fill the FMA pipeline instead).
    pub fn forward_inference_batch(&self, n: usize, xs: &[f64], hs: &mut [f64], cs: &mut [f64]) {
        let (hsz, isz) = (self.hidden, self.input);
        assert_eq!(xs.len(), n * isz, "xs must be n × input, lane-major");
        assert_eq!(hs.len(), n * hsz, "hs must be n × hidden, lane-major");
        assert_eq!(cs.len(), n * hsz, "cs must be n × hidden, lane-major");
        if n == 0 {
            return;
        }
        if n == 1 {
            // A one-lane cohort has no batch structure to exploit; the
            // scalar path *is* the reference, so delegate (bit-identity
            // is then definitional and the SoA transposes are skipped).
            let (h, c) = (&mut hs[..hsz], &mut cs[..hsz]);
            self.forward_inference(xs, h, c);
            return;
        }
        let g4 = 4 * hsz;

        // Gather into SoA (lane-fastest) buffers.
        let mut x_t = vec![0.0; isz * n];
        for k in 0..n {
            for i in 0..isz {
                x_t[i * n + k] = xs[k * isz + i];
            }
        }
        let mut h_t = vec![0.0; hsz * n];
        let mut c_t = vec![0.0; hsz * n];
        for k in 0..n {
            for j in 0..hsz {
                h_t[j * n + k] = hs[k * hsz + j];
                c_t[j * n + k] = cs[k * hsz + j];
            }
        }

        // z = b + Wx·x + Wh·h, computed over lane tiles: a tile of
        // `LANE_TILE` lanes consumes the whole weight matrix once while
        // its hidden slice stays L1-resident — one matrix pass per tile
        // instead of one per lane, which is where the large-H win comes
        // from. Within a lane, the two accumulator chains (input and
        // recurrent) keep the scalar path's element order and are summed
        // as (b + accX) + accH, so each lane is bit-identical to
        // `forward_inference`; across a tile the chains are independent,
        // which lets the compiler vectorize them.
        /// `acc[t] += Σ_j w[j] · src[j·stride + k0 + t]` with a
        /// compile-time tile width: accumulators live in registers and
        /// the inner loop vectorizes without reassociating any single
        /// lane's chain.
        #[inline(always)]
        fn mac_tile<const L: usize>(
            weights: &[f64],
            src: &[f64],
            stride: usize,
            k0: usize,
            acc: &mut [f64; L],
        ) {
            for (j, &w) in weights.iter().enumerate() {
                let row: &[f64; L] = src[j * stride + k0..j * stride + k0 + L]
                    .try_into()
                    .expect("tile in bounds");
                for t in 0..L {
                    acc[t] += w * row[t];
                }
            }
        }

        const LANE_TILE: usize = 8;
        let mut z_t = vec![0.0; g4 * n];
        for k0 in (0..n).step_by(LANE_TILE) {
            let tl = (n - k0).min(LANE_TILE);
            for r in 0..g4 {
                let wx_row = &self.wx.data()[r * isz..(r + 1) * isz];
                let wh_row = &self.wh.data()[r * hsz..(r + 1) * hsz];
                let b = self.b[r];
                if tl == LANE_TILE {
                    let mut accx = [0.0f64; LANE_TILE];
                    let mut acch = [0.0f64; LANE_TILE];
                    mac_tile(wx_row, &x_t, n, k0, &mut accx);
                    mac_tile(wh_row, &h_t, n, k0, &mut acch);
                    let zrow: &mut [f64; LANE_TILE] = (&mut z_t[r * n + k0..r * n + k0 + tl])
                        .try_into()
                        .expect("tile in bounds");
                    for t in 0..LANE_TILE {
                        zrow[t] = (b + accx[t]) + acch[t];
                    }
                } else {
                    // Ragged tail tile.
                    let mut accx = [0.0f64; LANE_TILE];
                    let mut acch = [0.0f64; LANE_TILE];
                    for (i, &w) in wx_row.iter().enumerate() {
                        let xrow = &x_t[i * n + k0..i * n + k0 + tl];
                        for t in 0..tl {
                            accx[t] += w * xrow[t];
                        }
                    }
                    for (j, &w) in wh_row.iter().enumerate() {
                        let hrow = &h_t[j * n + k0..j * n + k0 + tl];
                        for t in 0..tl {
                            acch[t] += w * hrow[t];
                        }
                    }
                    let zrow = &mut z_t[r * n + k0..r * n + k0 + tl];
                    for t in 0..tl {
                        zrow[t] = (b + accx[t]) + acch[t];
                    }
                }
            }
        }

        // Gates, elementwise over the SoA layout.
        for j in 0..hsz {
            for k in 0..n {
                let i_g = sigmoid(z_t[j * n + k]);
                let f_g = sigmoid(z_t[(hsz + j) * n + k]);
                let g_g = z_t[(2 * hsz + j) * n + k].tanh();
                let o_g = sigmoid(z_t[(3 * hsz + j) * n + k]);
                let c = f_g * c_t[j * n + k] + i_g * g_g;
                c_t[j * n + k] = c;
                h_t[j * n + k] = o_g * c.tanh();
            }
        }

        // Scatter back to the caller's lane-major layout.
        for k in 0..n {
            for j in 0..hsz {
                hs[k * hsz + j] = h_t[j * n + k];
                cs[k * hsz + j] = c_t[j * n + k];
            }
        }
    }

    /// Forward without building a cache (inference / sampling path).
    pub fn forward_inference(&self, x: &[f64], h: &mut [f64], c: &mut [f64]) {
        let hsz = self.hidden;
        let mut z = self.b.clone();
        self.wx.gemv_acc(x, &mut z);
        self.wh.gemv_acc(h, &mut z);
        for k in 0..hsz {
            let i = sigmoid(z[k]);
            let f = sigmoid(z[hsz + k]);
            let g = z[2 * hsz + k].tanh();
            let o = sigmoid(z[3 * hsz + k]);
            c[k] = f * c[k] + i * g;
            h[k] = o * c[k].tanh();
        }
    }

    /// Backward one step. `dh`/`dc` are gradients flowing into this step's
    /// outputs; gradients for parameters accumulate into `grads`; returns
    /// `(dx, dh_prev, dc_prev)`.
    pub fn backward(
        &self,
        cache: &LstmCache,
        dh: &[f64],
        dc_in: &[f64],
        grads: &mut LstmGrads,
    ) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let hsz = self.hidden;
        let mut dz = vec![0.0; 4 * hsz];
        let mut dc_prev = vec![0.0; hsz];
        for k in 0..hsz {
            let do_ = dh[k] * cache.tanh_c[k];
            let dc = dc_in[k] + dh[k] * cache.o[k] * (1.0 - cache.tanh_c[k] * cache.tanh_c[k]);
            let di = dc * cache.g[k];
            let df = dc * cache.c_prev[k];
            let dg = dc * cache.i[k];
            dc_prev[k] = dc * cache.f[k];
            dz[k] = di * cache.i[k] * (1.0 - cache.i[k]);
            dz[hsz + k] = df * cache.f[k] * (1.0 - cache.f[k]);
            dz[2 * hsz + k] = dg * (1.0 - cache.g[k] * cache.g[k]);
            dz[3 * hsz + k] = do_ * cache.o[k] * (1.0 - cache.o[k]);
        }

        grads.wx.outer_acc(&dz, &cache.x, 1.0);
        grads.wh.outer_acc(&dz, &cache.h_prev, 1.0);
        for (gb, d) in grads.b.iter_mut().zip(&dz) {
            *gb += d;
        }

        let mut dx = vec![0.0; self.input];
        self.wx.gemv_transpose_acc(&dz, &mut dx);
        let mut dh_prev = vec![0.0; hsz];
        self.wh.gemv_transpose_acc(&dz, &mut dh_prev);
        (dx, dh_prev, dc_prev)
    }

    /// Total number of scalar parameters.
    pub fn num_params(&self) -> usize {
        4 * self.hidden * (self.input + self.hidden) + 4 * self.hidden
    }

    /// Copy parameters into a flat vector (for the optimizer).
    pub fn write_params(&self, out: &mut Vec<f64>) {
        out.extend_from_slice(self.wx.data());
        out.extend_from_slice(self.wh.data());
        out.extend_from_slice(&self.b);
    }

    /// Load parameters from a flat slice; returns the number consumed.
    pub fn read_params(&mut self, src: &[f64]) -> usize {
        let nx = self.wx.data().len();
        let nh = self.wh.data().len();
        let nb = self.b.len();
        self.wx.data_mut().copy_from_slice(&src[..nx]);
        self.wh.data_mut().copy_from_slice(&src[nx..nx + nh]);
        self.b.copy_from_slice(&src[nx + nh..nx + nh + nb]);
        nx + nh + nb
    }

    /// Copy gradients into a flat vector, mirroring `write_params` order.
    pub fn write_grads(grads: &LstmGrads, out: &mut Vec<f64>) {
        out.extend_from_slice(grads.wx.data());
        out.extend_from_slice(grads.wh.data());
        out.extend_from_slice(&grads.b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlss_core::rng::rng_from_seed;

    #[test]
    fn forward_shapes_and_determinism() {
        let mut rng = rng_from_seed(1);
        let cell = LstmCell::new(2, 4, &mut rng);
        let x = [0.5, -0.3];
        let h0 = vec![0.0; 4];
        let c0 = vec![0.0; 4];
        let (h1, c1, _) = cell.forward(&x, &h0, &c0);
        let (h2, c2, _) = cell.forward(&x, &h0, &c0);
        assert_eq!(h1, h2);
        assert_eq!(c1, c2);
        assert_eq!(h1.len(), 4);
        assert!(h1.iter().all(|v| v.abs() <= 1.0), "h bounded by tanh×σ");
    }

    #[test]
    fn inference_matches_training_forward() {
        let mut rng = rng_from_seed(2);
        let cell = LstmCell::new(1, 5, &mut rng);
        let x = [0.7];
        let (h, c, _) = cell.forward(&x, &[0.0; 5], &[0.0; 5]);
        let mut hi = vec![0.0; 5];
        let mut ci = vec![0.0; 5];
        cell.forward_inference(&x, &mut hi, &mut ci);
        for k in 0..5 {
            assert!((h[k] - hi[k]).abs() < 1e-12);
            assert!((c[k] - ci[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn param_roundtrip() {
        let mut rng = rng_from_seed(3);
        let cell = LstmCell::new(2, 3, &mut rng);
        let mut flat = Vec::new();
        cell.write_params(&mut flat);
        assert_eq!(flat.len(), cell.num_params());
        let mut other = LstmCell::new(2, 3, &mut rng);
        let consumed = other.read_params(&flat);
        assert_eq!(consumed, flat.len());
        let mut flat2 = Vec::new();
        other.write_params(&mut flat2);
        assert_eq!(flat, flat2);
    }

    /// Numeric gradient check of the full cell: d(sum h)/d(params).
    #[test]
    fn gradient_check_against_numeric() {
        let mut rng = rng_from_seed(4);
        let mut cell = LstmCell::new(2, 3, &mut rng);
        let x = [0.4, -0.9];
        let h0 = vec![0.1, -0.2, 0.3];
        let c0 = vec![0.05, 0.0, -0.1];

        // Loss: sum of h entries.
        let loss = |cell: &LstmCell| -> f64 {
            let (h, _, _) = cell.forward(&x, &h0, &c0);
            h.iter().sum()
        };

        // Analytic gradient.
        let (h, _, cache) = cell.forward(&x, &h0, &c0);
        let dh = vec![1.0; h.len()];
        let dc = vec![0.0; h.len()];
        let mut grads = LstmGrads::zeros_like(&cell);
        let (dx, dh_prev, dc_prev) = cell.backward(&cache, &dh, &dc, &mut grads);

        let mut flat_g = Vec::new();
        LstmCell::write_grads(&grads, &mut flat_g);
        let mut flat_p = Vec::new();
        cell.write_params(&mut flat_p);

        let eps = 1e-6;
        for idx in (0..flat_p.len()).step_by(7) {
            let orig = flat_p[idx];
            flat_p[idx] = orig + eps;
            cell.read_params(&flat_p);
            let up = loss(&cell);
            flat_p[idx] = orig - eps;
            cell.read_params(&flat_p);
            let down = loss(&cell);
            flat_p[idx] = orig;
            cell.read_params(&flat_p);
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - flat_g[idx]).abs() < 1e-6,
                "param {idx}: numeric {numeric} vs analytic {}",
                flat_g[idx]
            );
        }

        // Input/hidden/cell gradients, numerically.
        let num_dx0 = {
            let mut xp = x;
            xp[0] += eps;
            let (hp, _, _) = cell.forward(&xp, &h0, &c0);
            let up: f64 = hp.iter().sum();
            xp[0] -= 2.0 * eps;
            let (hm, _, _) = cell.forward(&xp, &h0, &c0);
            let dn: f64 = hm.iter().sum();
            (up - dn) / (2.0 * eps)
        };
        assert!((num_dx0 - dx[0]).abs() < 1e-6);
        assert_eq!(dh_prev.len(), 3);
        assert_eq!(dc_prev.len(), 3);
    }
}
