//! # mlss-analytic
//!
//! Exact (and closed-form approximate) first-hitting-time answers for the
//! simple processes where they exist (§2.2 "Analytical Solution"). These
//! are the ground truths the test suite validates the SRS / s-MLSS /
//! g-MLSS estimators against — the empirical counterpart of the paper's
//! unbiasedness Propositions 1 and 2.
//!
//! * [`markov`] — exact hitting probabilities for finite Markov chains by
//!   backward dynamic programming;
//! * [`walk`] — exact hitting probabilities for lazy integer random walks;
//! * [`brownian`] — reflection-formula first-passage probabilities for
//!   drifted Brownian motion (diffusion sanity bands for queue/CPP).

#![warn(missing_docs)]

pub mod brownian;
pub mod markov;
pub mod walk;

pub use brownian::{expected_first_passage, max_crossing_probability};
pub use markov::{hitting_curve, hitting_probability};
pub use walk::{walk_hitting_probability, WalkSpec};
