//! Exact first-hitting probabilities for finite Markov chains.
//!
//! For a chain with transition matrix `P`, target set `T`, initial state
//! `i₀` and horizon `s`, the durability answer
//! `Pr[∃ t ∈ 1..=s : X_t ∈ T]` satisfies the backward recursion
//!
//! ```text
//! v₀(i) = 0
//! v_k(i) = Σ_j P[i][j] · (1 if j ∈ T else v_{k-1}(j))
//! ```
//!
//! and the answer is `v_s(i₀)`. Exact up to floating-point rounding —
//! the ground truth our unbiasedness tests compare the samplers against.

/// Exact hitting probability within `horizon` steps.
///
/// `rows` is row-stochastic; `is_target(j)` marks target states. Note the
/// durability convention: visits at `t = 0` do **not** count.
pub fn hitting_probability(
    rows: &[Vec<f64>],
    is_target: impl Fn(usize) -> bool,
    initial: usize,
    horizon: u64,
) -> f64 {
    let n = rows.len();
    assert!(n > 0);
    assert!(initial < n);
    let targets: Vec<bool> = (0..n).map(&is_target).collect();

    let mut v = vec![0.0_f64; n];
    let mut next = vec![0.0_f64; n];
    for _ in 0..horizon {
        for i in 0..n {
            let mut acc = 0.0;
            for (j, &p) in rows[i].iter().enumerate() {
                if p == 0.0 {
                    continue;
                }
                acc += p * if targets[j] { 1.0 } else { v[j] };
            }
            next[i] = acc;
        }
        std::mem::swap(&mut v, &mut next);
    }
    v[initial]
}

/// Full hitting-probability curve: `Pr[T_hit ≤ t]` for `t = 0..=horizon`.
pub fn hitting_curve(
    rows: &[Vec<f64>],
    is_target: impl Fn(usize) -> bool,
    initial: usize,
    horizon: u64,
) -> Vec<f64> {
    let n = rows.len();
    let targets: Vec<bool> = (0..n).map(&is_target).collect();
    let mut v = vec![0.0_f64; n];
    let mut next = vec![0.0_f64; n];
    let mut out = Vec::with_capacity(horizon as usize + 1);
    out.push(0.0);
    for _ in 0..horizon {
        for i in 0..n {
            let mut acc = 0.0;
            for (j, &p) in rows[i].iter().enumerate() {
                if p == 0.0 {
                    continue;
                }
                acc += p * if targets[j] { 1.0 } else { v[j] };
            }
            next[i] = acc;
        }
        std::mem::swap(&mut v, &mut next);
        out.push(v[initial]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-state chain: from 0, go to target 1 w.p. q, stay otherwise.
    fn geometric_chain(q: f64) -> Vec<Vec<f64>> {
        vec![vec![1.0 - q, q], vec![0.0, 1.0]]
    }

    #[test]
    fn geometric_hitting_time() {
        // Pr[hit within s] = 1 − (1−q)^s.
        let q = 0.2;
        let rows = geometric_chain(q);
        for s in [1u64, 3, 10] {
            let p = hitting_probability(&rows, |j| j == 1, 0, s);
            let expect = 1.0 - (1.0 - q).powi(s as i32);
            assert!((p - expect).abs() < 1e-12, "s={s}: {p} vs {expect}");
        }
    }

    #[test]
    fn zero_horizon_is_zero() {
        let rows = geometric_chain(0.5);
        assert_eq!(hitting_probability(&rows, |j| j == 1, 0, 0), 0.0);
    }

    #[test]
    fn absorbing_start_does_not_count_t0() {
        // Initial state is itself a target; durability counts t ≥ 1 only.
        let rows = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        // From state 0 (target), we leave at t=1 (not a target visit at 1
        // unless state 1 is target). With target = {0}: at t=1 we're at 1
        // (no), t=2 back at 0 (yes).
        let p1 = hitting_probability(&rows, |j| j == 0, 0, 1);
        assert_eq!(p1, 0.0);
        let p2 = hitting_probability(&rows, |j| j == 0, 0, 2);
        assert_eq!(p2, 1.0);
    }

    #[test]
    fn curve_is_monotone() {
        let rows = geometric_chain(0.1);
        let curve = hitting_curve(&rows, |j| j == 1, 0, 50);
        assert_eq!(curve.len(), 51);
        assert!(curve.windows(2).all(|w| w[1] >= w[0] - 1e-15));
        assert!((curve[50] - (1.0 - 0.9f64.powi(50))).abs() < 1e-12);
    }

    #[test]
    fn birth_death_monotone_in_threshold() {
        // Hitting a higher threshold is never more likely.
        let n = 12;
        let mut rows = vec![vec![0.0; n]; n];
        for i in 0..n {
            let up = if i + 1 < n { 0.3 } else { 0.0 };
            let down = if i > 0 { 0.3 } else { 0.0 };
            if i + 1 < n {
                rows[i][i + 1] = up;
            }
            if i > 0 {
                rows[i][i - 1] = down;
            }
            rows[i][i] = 1.0 - up - down;
        }
        let p_lo = hitting_probability(&rows, |j| j >= 5, 0, 100);
        let p_hi = hitting_probability(&rows, |j| j >= 9, 0, 100);
        assert!(p_lo > p_hi);
        assert!(p_hi > 0.0);
    }
}
