//! Closed-form first-passage probabilities for Brownian motion with drift.
//!
//! For `X_t = μ t + σ W_t` started at 0, the probability that the running
//! maximum reaches level `a > 0` by time `T` is the classical
//! reflection-with-drift formula:
//!
//! ```text
//! P(max_{t ≤ T} X_t ≥ a) = Φ̄((a − μT)/(σ√T)) + e^{2μa/σ²} Φ̄((a + μT)/(σ√T))
//! ```
//!
//! Diffusion approximations of the queue and CPP models use this as a
//! *sanity band* (not exact ground truth) in tests and calibration.

use mlss_core::stats::normal_cdf;

/// `P(max_{t≤T} (μt + σW_t) ≥ a)` for `a > 0`.
pub fn max_crossing_probability(mu: f64, sigma: f64, a: f64, t: f64) -> f64 {
    assert!(sigma > 0.0 && t > 0.0 && a > 0.0);
    let sd = sigma * t.sqrt();
    let tail1 = 1.0 - normal_cdf((a - mu * t) / sd);
    let exponent = 2.0 * mu * a / (sigma * sigma);
    // Guard the exponential against overflow for strongly positive drift;
    // the product with the vanishing tail is still well-defined ≤ 1.
    let tail2 = 1.0 - normal_cdf((a + mu * t) / sd);
    let p = if exponent > 700.0 {
        // exp overflows; in this regime tail1 ≈ 1 anyway.
        tail1
    } else {
        tail1 + exponent.exp() * tail2
    };
    p.clamp(0.0, 1.0)
}

/// Expected first-passage time of a positive-drift Brownian motion to
/// level `a`: `a / μ` (infinite for `μ ≤ 0`).
pub fn expected_first_passage(mu: f64, a: f64) -> f64 {
    assert!(a > 0.0);
    if mu <= 0.0 {
        f64::INFINITY
    } else {
        a / mu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_drift_reflection() {
        // With μ = 0: P = 2 Φ̄(a / (σ√T)).
        let p = max_crossing_probability(0.0, 1.0, 1.0, 1.0);
        let expect = 2.0 * (1.0 - normal_cdf(1.0));
        assert!((p - expect).abs() < 1e-9, "{p} vs {expect}");
    }

    #[test]
    fn negative_drift_suppresses_crossing() {
        let p0 = max_crossing_probability(0.0, 1.0, 2.0, 10.0);
        let pm = max_crossing_probability(-0.5, 1.0, 2.0, 10.0);
        assert!(pm < p0);
        // Long-horizon limit for negative drift: exp(2 μ a / σ²).
        let p_inf = max_crossing_probability(-0.5, 1.0, 2.0, 1e7);
        let expect = (2.0_f64 * -0.5 * 2.0).exp();
        assert!((p_inf - expect).abs() < 1e-3, "{p_inf} vs {expect}");
    }

    #[test]
    fn positive_drift_certain_eventually() {
        let p = max_crossing_probability(1.0, 1.0, 5.0, 1e6);
        assert!(p > 0.999999);
    }

    #[test]
    fn probability_bounds() {
        for &(mu, sigma, a, t) in &[
            (0.3, 2.0, 10.0, 5.0),
            (-2.0, 0.5, 1.0, 100.0),
            (5.0, 1.0, 0.5, 0.01),
        ] {
            let p = max_crossing_probability(mu, sigma, a, t);
            assert!((0.0..=1.0).contains(&p), "p = {p}");
        }
    }

    #[test]
    fn expected_passage_time() {
        assert_eq!(expected_first_passage(2.0, 10.0), 5.0);
        assert!(expected_first_passage(-1.0, 10.0).is_infinite());
    }
}
