//! Exact first-hitting probabilities for lazy integer random walks.
//!
//! Dynamic program over (time, position) for the probability that a walk
//! with step law `{+1: up, −1: down, 0: stay}` reaches `target` within a
//! horizon. The position space is truncated far enough below the start
//! that truncation error is below 1e-15 (positions more than `horizon`
//! below the start can never come back in time).

/// Parameters of the walk DP.
#[derive(Debug, Clone, Copy)]
pub struct WalkSpec {
    /// Probability of a +1 step.
    pub up: f64,
    /// Probability of a −1 step.
    pub down: f64,
    /// Starting position.
    pub start: i64,
    /// Reflecting floor (positions below are clamped) — `None` for a free
    /// walk.
    pub floor: Option<i64>,
}

/// Exact probability that the walk reaches `target` (≥) within `horizon`
/// steps.
pub fn walk_hitting_probability(spec: WalkSpec, target: i64, horizon: u64) -> f64 {
    assert!(spec.up >= 0.0 && spec.down >= 0.0 && spec.up + spec.down <= 1.0 + 1e-12);
    if spec.start >= target {
        // Already at/above the threshold: durability counts t ≥ 1; one
        // step keeps us at/above target with some probability — handled by
        // the DP below only if start < target. Callers use start < target;
        // for completeness return the 1-step reachability = 1 unless the
        // walk must move down... we simply run the DP from the clamped
        // range which treats positions ≥ target as absorbing.
    }

    // Position range: anything below `lo` can never climb back to target
    // within the horizon.
    let lo = spec
        .floor
        .unwrap_or(spec.start - horizon as i64 - 1)
        .min(spec.start);
    let hi = target; // positions ≥ target are absorbing (success)
    let width = (hi - lo) as usize + 1;
    let idx = |pos: i64| -> usize { (pos - lo) as usize };

    // v[k][x] = Pr[hit within k more steps | at x], for x in [lo, hi-1];
    // x ≥ target ⇒ 1.
    let mut v = vec![0.0_f64; width];
    let mut next = vec![0.0_f64; width];
    let stay = 1.0 - spec.up - spec.down;

    for _ in 0..horizon {
        for pos in lo..hi {
            let x = idx(pos);
            let up_pos = pos + 1;
            let up_val = if up_pos >= target {
                1.0
            } else {
                v[idx(up_pos)]
            };
            let mut down_pos = pos - 1;
            if let Some(f) = spec.floor {
                if down_pos < f {
                    down_pos = f;
                }
            }
            let down_val = if down_pos < lo {
                0.0 // fell out of the truncated range: cannot recover
            } else if down_pos >= target {
                1.0
            } else {
                v[idx(down_pos)]
            };
            next[x] = spec.up * up_val + spec.down * down_val + stay * v[x];
        }
        std::mem::swap(&mut v, &mut next);
    }
    if spec.start >= target {
        // Absorbing convention for callers that start above the threshold.
        1.0
    } else {
        v[idx(spec.start)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_step_hit_probability() {
        let spec = WalkSpec {
            up: 0.3,
            down: 0.3,
            start: 0,
            floor: None,
        };
        // Target 1 within 1 step: exactly the up probability.
        assert!((walk_hitting_probability(spec, 1, 1) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn two_step_hit_probability() {
        let spec = WalkSpec {
            up: 0.5,
            down: 0.5,
            start: 0,
            floor: None,
        };
        // Target 1 within 2: up at t1 (0.5) + (down then up is too low) +
        // (stay impossible, no laziness) → 0.5. With up at t2 after down
        // you reach 0, not 1. So 0.5.
        assert!((walk_hitting_probability(spec, 1, 2) - 0.5).abs() < 1e-12);
        // Target 2 within 2: up-up = 0.25.
        assert!((walk_hitting_probability(spec, 2, 2) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn matches_binomial_maximum_formula() {
        // For a symmetric ±1 walk, P(max_{t≤s} S_t ≥ a) has the exact
        // reflection form; spot-check via brute-force enumeration for
        // small s.
        let spec = WalkSpec {
            up: 0.5,
            down: 0.5,
            start: 0,
            floor: None,
        };
        let s = 12u64;
        let target = 3i64;
        // Brute force over all 2^12 paths.
        let mut hits = 0u64;
        for mask in 0u32..(1 << s) {
            let mut pos = 0i64;
            let mut hit = false;
            for b in 0..s {
                pos += if mask >> b & 1 == 1 { 1 } else { -1 };
                if pos >= target {
                    hit = true;
                    break;
                }
            }
            if hit {
                hits += 1;
            }
        }
        let brute = hits as f64 / (1u64 << s) as f64;
        let dp = walk_hitting_probability(spec, target, s);
        assert!((dp - brute).abs() < 1e-12, "dp {dp} vs brute {brute}");
    }

    #[test]
    fn floor_increases_hitting_probability() {
        let free = WalkSpec {
            up: 0.4,
            down: 0.4,
            start: 2,
            floor: None,
        };
        let reflected = WalkSpec {
            floor: Some(0),
            ..free
        };
        let p_free = walk_hitting_probability(free, 8, 100);
        let p_ref = walk_hitting_probability(reflected, 8, 100);
        assert!(p_ref > p_free, "{p_ref} vs {p_free}");
    }

    #[test]
    fn probability_is_monotone_in_horizon() {
        let spec = WalkSpec {
            up: 0.45,
            down: 0.45,
            start: 0,
            floor: Some(0),
        };
        let mut last = 0.0;
        for s in [1, 5, 20, 50, 100] {
            let p = walk_hitting_probability(spec, 6, s);
            assert!(p >= last - 1e-15);
            last = p;
        }
    }
}
