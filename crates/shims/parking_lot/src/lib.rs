//! Offline stand-in for `parking_lot`, wrapping `std::sync` primitives
//! with `parking_lot`'s panic-free guard-returning API (poisoning is
//! ignored, matching `parking_lot` semantics).

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// New mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Acquire the lock (recovering from poisoning like `parking_lot`).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// New lock holding `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
