//! Offline stand-in for `serde`. Instead of the real crate's visitor
//! architecture, [`Serialize`] and [`Deserialize`] convert to and from an
//! in-memory JSON tree ([`JsonValue`]); the sibling `serde_json` shim
//! renders and parses that tree. The derive macros (re-exported from
//! `serde_derive`) generate the same externally-tagged representation the
//! real serde uses, so persisted files keep their expected shape.

pub use serde_derive::{Deserialize, Serialize};

/// An in-memory JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Signed integer (covers every integer this workspace persists).
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating point (including the non-standard `NaN`/`Infinity`
    /// tokens our writer emits so estimates with infinite variance
    /// survive a round-trip).
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<JsonValue>),
    /// Object as an ordered list of key/value pairs.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Short tag naming the value's shape, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "bool",
            JsonValue::Int(_) | JsonValue::UInt(_) => "integer",
            JsonValue::Float(_) => "float",
            JsonValue::Str(_) => "string",
            JsonValue::Arr(_) => "array",
            JsonValue::Obj(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Build an error message.
    pub fn msg(text: impl Into<String>) -> Self {
        DeError(text.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types convertible into a [`JsonValue`].
pub trait Serialize {
    /// Convert to the JSON tree.
    fn to_json_value(&self) -> JsonValue;
}

/// Types reconstructible from a [`JsonValue`].
pub trait Deserialize: Sized {
    /// Reconstruct from the JSON tree.
    fn from_json_value(v: &JsonValue) -> Result<Self, DeError>;
}

// ---- primitive impls ----------------------------------------------------

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> JsonValue {
                JsonValue::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &JsonValue) -> Result<Self, DeError> {
                let raw = match v {
                    JsonValue::Int(i) => *i,
                    JsonValue::UInt(u) => i64::try_from(*u)
                        .map_err(|_| DeError::msg("integer out of range"))?,
                    other => {
                        return Err(DeError::msg(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw).map_err(|_| DeError::msg("integer out of range"))
            }
        }
    )*};
}

impl_serde_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> JsonValue {
                let wide = *self as u64;
                match i64::try_from(wide) {
                    Ok(i) => JsonValue::Int(i),
                    Err(_) => JsonValue::UInt(wide),
                }
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &JsonValue) -> Result<Self, DeError> {
                let raw = match v {
                    JsonValue::Int(i) => u64::try_from(*i)
                        .map_err(|_| DeError::msg("negative integer for unsigned field"))?,
                    JsonValue::UInt(u) => *u,
                    other => {
                        return Err(DeError::msg(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw).map_err(|_| DeError::msg("integer out of range"))
            }
        }
    )*};
}

impl_serde_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_json_value(v: &JsonValue) -> Result<Self, DeError> {
        match v {
            JsonValue::Float(x) => Ok(*x),
            JsonValue::Int(i) => Ok(*i as f64),
            JsonValue::UInt(u) => Ok(*u as f64),
            other => Err(DeError::msg(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_json_value(v: &JsonValue) -> Result<Self, DeError> {
        f64::from_json_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &JsonValue) -> Result<Self, DeError> {
        match v {
            JsonValue::Bool(b) => Ok(*b),
            other => Err(DeError::msg(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(v: &JsonValue) -> Result<Self, DeError> {
        match v {
            JsonValue::Str(s) => Ok(s.clone()),
            other => Err(DeError::msg(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> JsonValue {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> JsonValue {
        match self {
            None => JsonValue::Null,
            Some(x) => x.to_json_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &JsonValue) -> Result<Self, DeError> {
        match v {
            JsonValue::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Arr(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &JsonValue) -> Result<Self, DeError> {
        match v {
            JsonValue::Arr(items) => items.iter().map(T::from_json_value).collect(),
            other => Err(DeError::msg(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Arr(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json_value(&self) -> JsonValue {
        JsonValue::Arr(vec![self.0.to_json_value(), self.1.to_json_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_json_value(v: &JsonValue) -> Result<Self, DeError> {
        match v {
            JsonValue::Arr(items) if items.len() == 2 => Ok((
                A::from_json_value(&items[0])?,
                B::from_json_value(&items[1])?,
            )),
            other => Err(DeError::msg(format!(
                "expected 2-element array, found {}",
                other.kind()
            ))),
        }
    }
}

/// Helpers the derive macro expands to. Not public API.
pub mod __private {
    use super::{DeError, JsonValue};

    /// Fetch a required struct field, treating a missing key as `null`
    /// (so `Option` fields tolerate omission).
    pub fn field<'v>(v: &'v JsonValue, name: &str) -> Result<&'v JsonValue, DeError> {
        match v {
            JsonValue::Obj(_) => Ok(v.get(name).unwrap_or(&JsonValue::Null)),
            other => Err(DeError::msg(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }

    /// Decode the externally-tagged envelope of an enum: either a bare
    /// string (unit variant) or a single-key object.
    pub fn variant(v: &JsonValue) -> Result<(&str, Option<&JsonValue>), DeError> {
        match v {
            JsonValue::Str(name) => Ok((name, None)),
            JsonValue::Obj(pairs) if pairs.len() == 1 => {
                Ok((pairs[0].0.as_str(), Some(&pairs[0].1)))
            }
            other => Err(DeError::msg(format!(
                "expected enum (string or single-key object), found {}",
                other.kind()
            ))),
        }
    }

    /// Expect a fixed-arity array (tuple enum variants).
    pub fn tuple(v: &JsonValue, arity: usize) -> Result<&[JsonValue], DeError> {
        match v {
            JsonValue::Arr(items) if items.len() == arity => Ok(items),
            other => Err(DeError::msg(format!(
                "expected {arity}-element array, found {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        let v: Option<u32> = Some(7);
        let j = v.to_json_value();
        assert_eq!(Option::<u32>::from_json_value(&j).unwrap(), Some(7));
        assert_eq!(
            Option::<u32>::from_json_value(&JsonValue::Null).unwrap(),
            None
        );
    }

    #[test]
    fn vec_roundtrip() {
        let v = vec![1.5f64, -2.0];
        let j = v.to_json_value();
        assert_eq!(Vec::<f64>::from_json_value(&j).unwrap(), v);
    }

    #[test]
    fn unsigned_range_checked() {
        assert!(u32::from_json_value(&JsonValue::Int(-1)).is_err());
        assert!(u32::from_json_value(&JsonValue::Int(1 << 40)).is_err());
        assert_eq!(
            u64::from_json_value(&JsonValue::UInt(u64::MAX)).unwrap(),
            u64::MAX
        );
    }
}
