//! Minimal, API-compatible stand-in for the parts of the `rand` crate this
//! workspace uses. The build environment has no crates.io access, so the
//! workspace vendors this shim; the real `rand` can be dropped back in by
//! editing the workspace `Cargo.toml` only.
//!
//! Provided surface:
//! * [`RngCore`] — `next_u32` / `next_u64` / `fill_bytes`;
//! * [`SeedableRng`] — `from_seed` plus the SplitMix64-expanded
//!   [`SeedableRng::seed_from_u64`];
//! * [`RngExt`] — `random::<T>()`, `random_range(..)`, `random_bool(p)`,
//!   blanket-implemented for every `RngCore`.

use std::ops::Range;

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Next random `u32` (default: high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// A generator that can be constructed from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a 64-bit seed, expanded with SplitMix64 — the same
    /// scheme the real `rand` uses, so seeded streams are well separated
    /// even for adjacent seeds.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly from raw generator output (the "standard"
/// distribution of the real crate).
pub trait StandardSample {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable uniformly (argument type of [`RngExt::random_range`]).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased uniform draw from `[0, n)` by rejection on the top multiple.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u32, u64, usize);

impl SampleRange<i64> for Range<i64> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> i64 {
        assert!(self.start < self.end, "empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(uniform_u64(rng, span) as i64)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for all generators.
pub trait RngExt: RngCore {
    /// Sample a value of type `T` from the standard distribution.
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range, e.g. `rng.random_range(0..n)`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_in(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            // A weak LCG is enough to exercise the trait plumbing.
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respected() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let v = rng.random_range(5usize..17);
            assert!((5..17).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = Counter(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
