//! Offline stand-in for `serde_json` over the serde shim's
//! [`serde::JsonValue`] tree.
//!
//! One deliberate extension to standard JSON: non-finite floats are
//! written as the bare tokens `NaN`, `Infinity`, and `-Infinity` (and
//! parsed back), because estimates legitimately carry infinite variance
//! (e.g. before any target hit) and must survive persistence.

use serde::{DeError, Deserialize, JsonValue, Serialize};

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

// ---- writer -------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, x: f64) {
    if x.is_nan() {
        out.push_str("NaN");
    } else if x == f64::INFINITY {
        out.push_str("Infinity");
    } else if x == f64::NEG_INFINITY {
        out.push_str("-Infinity");
    } else {
        // `{}` prints the shortest representation that round-trips, but
        // drops the decimal point for integral values; keep a `.0` so the
        // reader still classifies the token as a float.
        let text = format!("{x}");
        out.push_str(&text);
        if !text.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    }
}

fn write_value(out: &mut String, v: &JsonValue, indent: Option<usize>) {
    match v {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Int(i) => out.push_str(&i.to_string()),
        JsonValue::UInt(u) => out.push_str(&u.to_string()),
        JsonValue::Float(x) => write_float(out, *x),
        JsonValue::Str(s) => write_escaped(out, s),
        JsonValue::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent.map(|d| d + 1));
                write_value(out, item, indent.map(|d| d + 1));
            }
            if !items.is_empty() {
                newline_indent(out, indent);
            }
            out.push(']');
        }
        JsonValue::Obj(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent.map(|d| d + 1));
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent.map(|d| d + 1));
            }
            if !pairs.is_empty() {
                newline_indent(out, indent);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>) {
    if let Some(depth) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), None);
    Ok(out)
}

/// Serialize to a pretty-printed JSON string.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json_value(), Some(0));
    Ok(out)
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serialize to pretty-printed JSON bytes.
pub fn to_vec_pretty<T: Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    to_string_pretty(value).map(String::into_bytes)
}

// ---- parser -------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, Error> {
        self.skip_ws();
        match self
            .peek()
            .ok_or_else(|| self.err("unexpected end of input"))?
        {
            b'n' => {
                if self.eat_keyword("null") {
                    Ok(JsonValue::Null)
                } else {
                    Err(self.err("invalid token"))
                }
            }
            b't' => {
                if self.eat_keyword("true") {
                    Ok(JsonValue::Bool(true))
                } else {
                    Err(self.err("invalid token"))
                }
            }
            b'f' => {
                if self.eat_keyword("false") {
                    Ok(JsonValue::Bool(false))
                } else {
                    Err(self.err("invalid token"))
                }
            }
            b'N' => {
                if self.eat_keyword("NaN") {
                    Ok(JsonValue::Float(f64::NAN))
                } else {
                    Err(self.err("invalid token"))
                }
            }
            b'I' => {
                if self.eat_keyword("Infinity") {
                    Ok(JsonValue::Float(f64::INFINITY))
                } else {
                    Err(self.err("invalid token"))
                }
            }
            b'"' => self.parse_string().map(JsonValue::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(JsonValue::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    let value = self.parse_value()?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(JsonValue::Obj(pairs));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            _ => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    self.pos = end;
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<JsonValue, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
            if self.eat_keyword("Infinity") {
                return Ok(JsonValue::Float(f64::NEG_INFINITY));
            }
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        if self.pos == start {
            return Err(self.err("invalid number"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(JsonValue::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Parse a JSON document into the value tree.
pub fn value_from_slice(bytes: &[u8]) -> Result<JsonValue, Error> {
    let mut p = Parser { bytes, pos: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Deserialize a value of type `T` from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let v = value_from_slice(bytes)?;
    T::from_json_value(&v).map_err(Error::from)
}

/// Deserialize a value of type `T` from a JSON string.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    from_slice(text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for text in ["0", "-17", "3.25", "1e-3", "\"hi\\nthere\"", "true", "null"] {
            let v = value_from_slice(text.as_bytes()).unwrap();
            let mut out = String::new();
            write_value(&mut out, &v, None);
            let v2 = value_from_slice(out.as_bytes()).unwrap();
            assert_eq!(v, v2, "roundtrip of {text}");
        }
    }

    #[test]
    fn nonfinite_floats_roundtrip() {
        let v = JsonValue::Arr(vec![
            JsonValue::Float(f64::INFINITY),
            JsonValue::Float(f64::NEG_INFINITY),
        ]);
        let mut out = String::new();
        write_value(&mut out, &v, None);
        assert_eq!(out, "[Infinity,-Infinity]");
        assert_eq!(value_from_slice(out.as_bytes()).unwrap(), v);
    }

    #[test]
    fn float_marker_kept_for_integral_floats() {
        let one = to_string(&1.0f64).unwrap();
        assert_eq!(one, "1.0");
        let back: f64 = from_str(&one).unwrap();
        assert_eq!(back, 1.0);
    }

    #[test]
    fn truncated_input_errors() {
        let full = br#"{"a": [1, 2, 3], "b": "text"}"#;
        assert!(value_from_slice(full).is_ok());
        assert!(value_from_slice(&full[..full.len() / 2]).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(value_from_slice(b"1 2").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = value_from_slice("\"\u{e9}\u{1F600}\"".as_bytes()).unwrap();
        assert_eq!(v, JsonValue::Str("\u{e9}\u{1F600}".to_string()));
    }
}
