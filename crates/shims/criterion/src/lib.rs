//! Offline stand-in for `criterion` with the subset of API the workspace's
//! benches use: `criterion_group!`/`criterion_main!`, benchmark groups,
//! `Bencher::iter`, and `Bencher::iter_batched`. Measurements are simple
//! best-of-N wall-clock timings printed to stdout — enough for relative
//! comparisons, without the real crate's statistical machinery.

use std::time::{Duration, Instant};

/// How batched inputs are sized (accepted and ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    last: Duration,
}

impl Bencher {
    /// Time `routine` by running it repeatedly; records the best average.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm up once, then take the best of `samples` batches.
        std::hint::black_box(routine());
        let mut best = Duration::MAX;
        for _ in 0..self.samples {
            let reps = 3;
            let t0 = Instant::now();
            for _ in 0..reps {
                std::hint::black_box(routine());
            }
            let per = t0.elapsed() / reps;
            if per < best {
                best = per;
            }
        }
        self.last = best;
    }

    /// Time `routine` over fresh inputs produced by `setup`.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        std::hint::black_box(routine(setup()));
        let mut best = Duration::MAX;
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            let t = t0.elapsed();
            if t < best {
                best = t;
            }
        }
        self.last = best;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count for subsequent benchmarks in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.run_one(&full, f);
        self
    }

    /// Finish the group (printing nothing extra).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Run one stand-alone named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id, f);
        self
    }

    fn run_one<F>(&mut self, id: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            last: Duration::ZERO,
        };
        f(&mut b);
        println!("{id:<40} {:>12.3?}", b.last);
    }
}

/// Re-export so user code can `use criterion::black_box`.
pub use std::hint::black_box;

/// Define a benchmark group function from a list of bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` from one or more group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
