//! A genuine ChaCha12 block generator exposed as `ChaCha12Rng`.
//!
//! This is a faithful implementation of the ChaCha stream cipher keystream
//! (D. J. Bernstein) with 12 rounds — not a toy LCG — because the
//! workspace uses it for rare-event estimation where generator weaknesses
//! can visibly bias tail probabilities. Output bytes differ from the
//! crates.io `rand_chacha` (word serialization order is unspecified
//! there), but the statistical properties are those of ChaCha12.

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// One raw ChaCha12 keystream block: the 16 output words for `(key,
/// counter)`. This is the scalar reference implementation of the block
/// function; [`ChaCha12Rng::refill`] consumes it, and vectorized
/// multi-stream generators (`mlss_core::simd::chacha`) must reproduce it
/// word for word — the block function is pure integer arithmetic
/// (wrapping adds, xors, rotates), so any correct implementation is
/// bit-identical on every backend.
pub fn chacha12_block(key: &[u32; 8], counter: u64) -> [u32; BLOCK_WORDS] {
    // "expand 32-byte k" constants.
    let mut state: [u32; BLOCK_WORDS] = [
        0x6170_7865,
        0x3320_646E,
        0x7962_2D32,
        0x6B20_6574,
        key[0],
        key[1],
        key[2],
        key[3],
        key[4],
        key[5],
        key[6],
        key[7],
        counter as u32,
        (counter >> 32) as u32,
        0,
        0,
    ];
    let initial = state;
    for _ in 0..6 {
        // One double round: 4 column + 4 diagonal quarter rounds.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (word, init) in state.iter_mut().zip(initial.iter()) {
        *word = word.wrapping_add(*init);
    }
    state
}

/// ChaCha12-based random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha12Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; BLOCK_WORDS],
    /// Next unread word in `buf`; `BLOCK_WORDS` means "refill".
    idx: usize,
    /// Process-unique stream identity, allocated at construction. The
    /// key never mutates after construction, so `stream == stream`
    /// implies `key == key` — batch pipelines tag cached blocks with
    /// this one word instead of comparing the full 32-byte key. Clones
    /// share the identity (same key, same stream); rebuilding via
    /// [`ChaCha12Rng::from_state`] allocates a fresh one.
    stream: u64,
}

/// Allocate a fresh process-unique stream identity.
fn alloc_stream_id() -> u64 {
    use core::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha12Rng {
    /// Number of 32-bit words per keystream block.
    pub const BLOCK_WORDS: usize = BLOCK_WORDS;

    #[inline]
    fn refill(&mut self) {
        self.buf = chacha12_block(&self.key, self.counter);
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    // ---- block-level access ------------------------------------------
    //
    // Vectorized multi-stream pipelines (see `mlss_core::simd`) compute
    // many streams' *next* blocks in one SIMD pass and hand each stream
    // its own block back. These accessors expose exactly the state that
    // pipeline needs — the stream's key, the counter of the next block,
    // and the read position in the current block — without giving up the
    // invariant that a stream's word sequence is a pure function of its
    // seed.

    /// The stream's ChaCha key (derived from the seed, never mutated).
    #[inline]
    pub fn block_key(&self) -> &[u32; 8] {
        &self.key
    }

    /// This stream's process-unique identity: equal identities imply
    /// equal keys, making `(stream_id, counter)` a sufficient cache tag
    /// for an externally computed block.
    #[inline]
    pub fn stream_id(&self) -> u64 {
        self.stream
    }

    /// Counter of the *next* block this stream will generate.
    #[inline]
    pub fn block_counter(&self) -> u64 {
        self.counter
    }

    /// Unread words left in the current block (0 means the next word
    /// read triggers a refill).
    #[inline]
    pub fn words_remaining(&self) -> usize {
        BLOCK_WORDS - self.idx
    }

    /// The unread tail of the current block, without advancing. Together
    /// with [`ChaCha12Rng::skip_words`] this lets a batch kernel read
    /// draws as pure loads against a local cursor and commit the
    /// consumption once, instead of paying a buffer-index round-trip per
    /// word.
    #[inline]
    pub fn remaining_slice(&self) -> &[u32] {
        &self.buf[self.idx..]
    }

    /// The whole current block buffer, including already-read words
    /// (callers index from `BLOCK_WORDS - words_remaining()`); garbage
    /// when the stream has never filled — which is exactly when
    /// `words_remaining()` is 0 and no valid index exists.
    #[inline]
    pub fn current_block(&self) -> &[u32; BLOCK_WORDS] {
        &self.buf
    }

    /// Advance the stream past `n` unread words of the current block —
    /// exactly as if they had been read. Commits a batch kernel's local
    /// cursor over [`ChaCha12Rng::remaining_slice`].
    ///
    /// # Panics
    ///
    /// Panics when `n` exceeds the unread words.
    #[inline]
    pub fn skip_words(&mut self, n: usize) {
        assert!(
            n <= BLOCK_WORDS - self.idx,
            "skip_words past the current block"
        );
        self.idx += n;
    }

    /// Copy the next `out.len()` `u64` draws straight out of the current
    /// block when it holds enough unread words, advancing the stream
    /// exactly as that many `next_u64` calls would; returns `false`
    /// (drawing nothing) when the buffer is short. The fast path of the
    /// vectorized gather — no per-word refill checks.
    #[inline]
    pub fn try_fill_u64(&mut self, out: &mut [u64]) -> bool {
        if BLOCK_WORDS - self.idx < 2 * out.len() {
            return false;
        }
        for o in out.iter_mut() {
            let lo = self.buf[self.idx] as u64;
            let hi = self.buf[self.idx + 1] as u64;
            self.idx += 2;
            *o = (hi << 32) | lo;
        }
        true
    }

    // ---- exact state save/restore ------------------------------------
    //
    // The generator's observable state is fully determined by `(key,
    // next-block counter, unread words)`: the buffered block, when one
    // is partially read, is the pure function `chacha12_block(key,
    // counter - 1)`. A durability layer can therefore persist three
    // small integers and restore the stream to the exact draw position
    // — no keystream replay, no buffered-block serialization.

    /// The stream's exact position as `(key, next-block counter, unread
    /// words in the current block)`. Feeding this to
    /// [`ChaCha12Rng::from_state`] yields a generator whose future draw
    /// sequence is bit-identical to this one's.
    pub fn state(&self) -> ([u32; 8], u64, u8) {
        (self.key, self.counter, (BLOCK_WORDS - self.idx) as u8)
    }

    /// Rebuild a generator from a [`ChaCha12Rng::state`] triple. When
    /// the saved position was mid-block (`words_remaining > 0`), the
    /// buffered block is recomputed from `(key, counter - 1)`.
    ///
    /// # Panics
    ///
    /// Panics when `words_remaining` exceeds the block size.
    pub fn from_state(key: [u32; 8], counter: u64, words_remaining: u8) -> Self {
        let remaining = words_remaining as usize;
        assert!(
            remaining <= BLOCK_WORDS,
            "words_remaining {remaining} exceeds block size {BLOCK_WORDS}"
        );
        let buf = if remaining == 0 {
            // Fully drained (or never filled): the next draw refills
            // from `counter`, so the buffer contents are irrelevant.
            [0; BLOCK_WORDS]
        } else {
            chacha12_block(&key, counter.wrapping_sub(1))
        };
        Self {
            key,
            counter,
            buf,
            idx: BLOCK_WORDS - remaining,
            stream: alloc_stream_id(),
        }
    }

    /// Install an externally computed next block, exactly as the internal
    /// refill would: `block` must equal
    /// [`chacha12_block`]`(&self.block_key(), self.block_counter())`.
    ///
    /// # Panics
    ///
    /// Panics when the current block still has unread words — installing
    /// early would skip keystream and break draw-identity.
    #[inline]
    pub fn install_block(&mut self, block: [u32; BLOCK_WORDS]) {
        assert_eq!(
            self.idx, BLOCK_WORDS,
            "install_block requires a drained buffer"
        );
        debug_assert_eq!(
            block,
            chacha12_block(&self.key, self.counter),
            "installed block does not match this stream's next block"
        );
        self.buf = block;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            *word = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        Self {
            key,
            counter: 0,
            buf: [0; BLOCK_WORDS],
            idx: BLOCK_WORDS,
            stream: alloc_stream_id(),
        }
    }
}

impl RngCore for ChaCha12Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.idx >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(5);
        let mut b = ChaCha12Rng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha12Rng::seed_from_u64(6);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn uniformity_smoke() {
        // Mean of 100k uniforms should be 0.5 within ~5σ (σ ≈ 0.00091).
        let mut rng = ChaCha12Rng::seed_from_u64(42);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn block_access_reproduces_the_stream() {
        // Drain blocks via the block-level API and via next_u32: the word
        // sequences must be identical, including across block boundaries.
        let mut scalar = ChaCha12Rng::seed_from_u64(77);
        let mut blocky = ChaCha12Rng::seed_from_u64(77);
        for _ in 0..5 {
            // Drain the current block word by word.
            while blocky.words_remaining() > 0 {
                assert_eq!(scalar.next_u32(), blocky.next_u32());
            }
            let block = chacha12_block(blocky.block_key(), blocky.block_counter());
            blocky.install_block(block);
        }
        assert_eq!(scalar.next_u64(), blocky.next_u64());
    }

    #[test]
    #[should_panic]
    fn install_block_rejects_unread_words() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let _ = rng.next_u32(); // buffer now partially read
        let block = chacha12_block(rng.block_key(), rng.block_counter());
        rng.install_block(block);
    }

    #[test]
    fn state_roundtrip_is_draw_identical() {
        // Save/restore at every offset within a block (including the
        // drained and never-filled positions): the restored generator's
        // future draws must match the original bit for bit, across
        // block boundaries.
        for drained in 0..=40usize {
            let mut original = ChaCha12Rng::seed_from_u64(1234);
            for _ in 0..drained {
                let _ = original.next_u32();
            }
            let (key, counter, remaining) = original.state();
            let mut restored = ChaCha12Rng::from_state(key, counter, remaining);
            for _ in 0..100 {
                assert_eq!(
                    original.next_u64(),
                    restored.next_u64(),
                    "drained={drained}"
                );
            }
        }
    }

    #[test]
    fn bits_look_balanced() {
        let mut rng = ChaCha12Rng::seed_from_u64(9);
        let mut ones = 0u64;
        let draws = 10_000;
        for _ in 0..draws {
            ones += rng.next_u64().count_ones() as u64;
        }
        let expect = draws * 32;
        let dev = (ones as i64 - expect as i64).abs();
        // σ = √(64·draws·0.25) = 400 for 10k draws; allow 6σ.
        assert!(dev < 2400, "bit-count deviation {dev}");
    }
}
