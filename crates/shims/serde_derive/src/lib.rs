//! Derive macros for the offline `serde` shim.
//!
//! Supports the shapes this workspace actually uses: non-generic structs
//! with named fields, unit structs, tuple structs, and enums whose
//! variants are unit, tuple, or struct-like. The generated representation
//! matches real serde's externally-tagged default, so JSON produced
//! before/after swapping in the real crates stays compatible.
//!
//! Implemented without `syn`/`quote` (also unavailable offline): a small
//! hand parser walks the `TokenStream` and the impls are emitted as
//! formatted source text.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Self {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Skip `#[...]` attributes (including expanded doc comments).
    fn skip_attributes(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.pos += 1; // '#'
            match self.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    self.pos += 1;
                }
                _ => panic!("serde shim derive: malformed attribute"),
            }
        }
    }

    /// Skip `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde shim derive: expected identifier, got {other:?}"),
        }
    }
}

/// Number of comma-separated items at angle-bracket depth 0 in `stream`.
fn count_top_level_items(stream: TokenStream) -> usize {
    let mut depth: i32 = 0;
    let mut items = 0;
    let mut saw_token = false;
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                items += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    if saw_token {
        items += 1;
    }
    items
}

/// Parse `name: Type, ...` named fields from the body of a brace group.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        cur.skip_attributes();
        if cur.at_end() {
            break;
        }
        cur.skip_visibility();
        let name = cur.expect_ident();
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected ':' after field '{name}', got {other:?}"),
        }
        fields.push(name);
        // Consume the type up to the next top-level comma.
        let mut depth: i32 = 0;
        while let Some(tok) = cur.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    cur.pos += 1;
                    break;
                }
                _ => {}
            }
            cur.pos += 1;
        }
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        cur.skip_attributes();
        if cur.at_end() {
            break;
        }
        let name = cur.expect_ident();
        let kind = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_items(g.stream());
                cur.pos += 1;
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                cur.pos += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        if let Some(TokenTree::Punct(p)) = cur.peek() {
            if p.as_char() == ',' {
                cur.pos += 1;
            }
        }
    }
    variants
}

fn parse_shape(input: TokenStream) -> Shape {
    let mut cur = Cursor::new(input);
    cur.skip_attributes();
    cur.skip_visibility();
    let keyword = cur.expect_ident();
    let name = cur.expect_ident();
    if let Some(TokenTree::Punct(p)) = cur.peek() {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic types are not supported (type '{name}')");
        }
    }
    match keyword.as_str() {
        "struct" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    name,
                    arity: count_top_level_items(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct { name },
            other => panic!("serde shim derive: unexpected struct body {other:?}"),
        },
        "enum" => match cur.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde shim derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde shim derive: expected struct or enum, got '{other}'"),
    }
}

// ---- code generation ----------------------------------------------------

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let pairs: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(String::from(\"{f}\"), ::serde::Serialize::to_json_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json_value(&self) -> ::serde::JsonValue {{\n\
                         ::serde::JsonValue::Obj(vec![{pairs}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_json_value(&self) -> ::serde::JsonValue {{\n\
                     ::serde::JsonValue::Obj(Vec::new())\n\
                 }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::to_json_value(&self.0)".to_string()
            } else {
                let items: String = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_json_value(&self.{i}),"))
                    .collect();
                format!("::serde::JsonValue::Arr(vec![{items}])")
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json_value(&self) -> ::serde::JsonValue {{ {body} }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::JsonValue::Str(String::from(\"{vname}\")),"
                        ),
                        VariantKind::Tuple(arity) => {
                            let binds: Vec<String> =
                                (0..*arity).map(|i| format!("__f{i}")).collect();
                            let payload = if *arity == 1 {
                                "::serde::Serialize::to_json_value(__f0)".to_string()
                            } else {
                                let items: String = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_json_value({b}),"))
                                    .collect();
                                format!("::serde::JsonValue::Arr(vec![{items}])")
                            };
                            format!(
                                "{name}::{vname}({}) => ::serde::JsonValue::Obj(vec![(String::from(\"{vname}\"), {payload})]),",
                                binds.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let pairs: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(String::from(\"{f}\"), ::serde::Serialize::to_json_value({f})),"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::JsonValue::Obj(vec![(String::from(\"{vname}\"), ::serde::JsonValue::Obj(vec![{pairs}]))]),"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json_value(&self) -> ::serde::JsonValue {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_json_value(::serde::__private::field(v, \"{f}\")?)?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_json_value(v: &::serde::JsonValue) -> Result<Self, ::serde::DeError> {{\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_json_value(_v: &::serde::JsonValue) -> Result<Self, ::serde::DeError> {{\n\
                     Ok({name})\n\
                 }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!("Ok({name}(::serde::Deserialize::from_json_value(v)?))")
            } else {
                let items: String = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_json_value(&__items[{i}])?,"))
                    .collect();
                format!(
                    "let __items = ::serde::__private::tuple(v, {arity})?;\nOk({name}({items}))"
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_json_value(v: &::serde::JsonValue) -> Result<Self, ::serde::DeError> {{ {body} }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => {
                            format!("\"{vname}\" => Ok({name}::{vname}),")
                        }
                        VariantKind::Tuple(arity) => {
                            let need_payload = format!(
                                "let __p = __payload.ok_or_else(|| ::serde::DeError::msg(\"variant '{vname}' expects data\"))?;"
                            );
                            if *arity == 1 {
                                format!(
                                    "\"{vname}\" => {{ {need_payload} Ok({name}::{vname}(::serde::Deserialize::from_json_value(__p)?)) }},"
                                )
                            } else {
                                let items: String = (0..*arity)
                                    .map(|i| {
                                        format!(
                                            "::serde::Deserialize::from_json_value(&__items[{i}])?,"
                                        )
                                    })
                                    .collect();
                                format!(
                                    "\"{vname}\" => {{ {need_payload} let __items = ::serde::__private::tuple(__p, {arity})?; Ok({name}::{vname}({items})) }},"
                                )
                            }
                        }
                        VariantKind::Struct(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_json_value(::serde::__private::field(__p, \"{f}\")?)?,"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vname}\" => {{ let __p = __payload.ok_or_else(|| ::serde::DeError::msg(\"variant '{vname}' expects data\"))?; Ok({name}::{vname} {{ {inits} }}) }},"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_json_value(v: &::serde::JsonValue) -> Result<Self, ::serde::DeError> {{\n\
                         let (__tag, __payload) = ::serde::__private::variant(v)?;\n\
                         match __tag {{\n\
                             {arms}\n\
                             other => Err(::serde::DeError::msg(format!(\"unknown variant '{{other}}' for {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    gen_serialize(&shape)
        .parse()
        .expect("serde shim derive: generated Serialize impl failed to parse")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    gen_deserialize(&shape)
        .parse()
        .expect("serde shim derive: generated Deserialize impl failed to parse")
}
