//! Offline stand-in for the parts of `rand_distr` this workspace uses:
//! [`Normal`] (Box–Muller) and [`Poisson`] (Knuth for small rates, a
//! normal approximation for large ones), behind the same
//! [`Distribution`] trait shape as the real crate.

use rand::RngCore;

/// A distribution from which values of type `T` can be sampled.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Uniform draw in the open interval `(0, 1]` — safe as a `ln` argument.
fn uniform_open01<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    ((rng.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn uniform01<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Error constructing a [`Normal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalError;

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "standard deviation must be finite and non-negative")
    }
}

impl std::error::Error for NormalError {}

/// The normal distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// New normal distribution. Fails when `std_dev` is negative or not
    /// finite (matching the real crate's validation).
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !(std_dev.is_finite() && std_dev >= 0.0 && mean.is_finite()) {
            return Err(NormalError);
        }
        Ok(Self { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: one fresh transform per draw (no spare caching —
        // `sample(&self)` is immutable).
        let u1 = uniform_open01(rng);
        let u2 = uniform01(rng);
        let radius = (-2.0 * u1.ln()).sqrt();
        self.mean + self.std_dev * radius * (std::f64::consts::TAU * u2).cos()
    }
}

/// Error constructing a [`Poisson`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoissonError;

impl std::fmt::Display for PoissonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Poisson rate must be finite and positive")
    }
}

impl std::error::Error for PoissonError {}

/// The Poisson distribution with rate `λ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// New Poisson distribution. Fails for non-positive or non-finite `λ`.
    pub fn new(lambda: f64) -> Result<Self, PoissonError> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(PoissonError);
        }
        Ok(Self { lambda })
    }
}

impl Distribution<f64> for Poisson {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.lambda < 30.0 {
            // Knuth's multiplication method — exact, O(λ) draws.
            let limit = (-self.lambda).exp();
            let mut product = uniform_open01(rng);
            let mut count = 0u64;
            while product > limit {
                product *= uniform_open01(rng);
                count += 1;
            }
            count as f64
        } else {
            // Normal approximation with continuity correction; adequate
            // at λ ≥ 30 for the simulation workloads in this repo.
            let gauss = Normal {
                mean: 0.0,
                std_dev: 1.0,
            }
            .sample(rng);
            (self.lambda + self.lambda.sqrt() * gauss + 0.5)
                .floor()
                .max(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha_like::TestRng;

    /// SplitMix64 generator for the statistical smoke tests.
    mod rand_chacha_like {
        use rand::{RngCore, SeedableRng};

        pub struct TestRng(u64);

        impl SeedableRng for TestRng {
            type Seed = [u8; 8];

            fn from_seed(seed: Self::Seed) -> Self {
                TestRng(u64::from_le_bytes(seed))
            }
        }

        impl RngCore for TestRng {
            fn next_u64(&mut self) -> u64 {
                self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = self.0;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            }
        }
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(2.0, 3.0).unwrap();
        let mut rng = TestRng::seed_from_u64(1);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn poisson_moments_small_lambda() {
        let d = Poisson::new(0.8).unwrap();
        let mut rng = TestRng::seed_from_u64(2);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.8).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn poisson_large_lambda_uses_normal_branch() {
        let d = Poisson::new(100.0).unwrap();
        let mut rng = TestRng::seed_from_u64(3);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let mean = sum / n as f64;
        assert!((mean - 100.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn constructors_validate() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(f64::INFINITY).is_err());
    }
}
