//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the frame
//! checksum. Implemented here because the workspace builds offline; the
//! algorithm is the standard table-driven byte-at-a-time form with the
//! table computed at compile time.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (IEEE, as used by zip/png/ethernet).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let payload = b"the quick brown fox".to_vec();
        let base = crc32(&payload);
        for byte in 0..payload.len() {
            for bit in 0..8 {
                let mut flipped = payload.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
