//! `mlss-store` — the durability layer: an append-only, CRC-framed
//! write-ahead log plus snapshot/compaction.
//!
//! The engine's whole durable state — `results` rows, plan-cache
//! entries, shard-store deposits, and in-flight ASYNC query checkpoints
//! — is a sequence of self-describing [`Record`]s. This crate frames
//! them on disk, replays them on open (stopping cleanly at the first
//! torn or corrupt record), and compacts the log into a snapshot that is
//! *itself* a log in the same format, so "snapshot + tail" replay is the
//! ordinary replay loop run twice.
//!
//! Mapping records to engine state (and back) is the session layer's
//! job (`mlss_db::durability`); this crate knows only bytes, frames, and
//! files. The split mirrors the pager/WAL layering of embedded SQL
//! engines: a small, separately testable durability kernel under an
//! in-memory execution engine.
//!
//! Crash testing is a first-class API: [`CrashPlan`] wedges the log at
//! the Nth record boundary — or mid-record, for torn-write coverage —
//! after which every append is silently dropped, exactly as if the
//! process had died. The recovery-identity suite sweeps a crash at every
//! record of a pinned-seed run and proves the reopened session's results
//! are bit-identical to an uninterrupted run's.

mod crc;
mod record;
mod wal;

pub use crc::crc32;
pub use record::{Record, ResultRow, SubmitSpec};
pub use wal::{CrashPlan, FsyncPolicy, Replay, Wal, WalOptions, WalStats};
