//! The WAL's logical record set and its byte codecs.
//!
//! Every record payload is `[kind: u8][body]`; bodies use the exact
//! little-endian codecs of `mlss_core::persist`, so floats, 128-bit
//! moment sums, and RNG positions all round-trip bit-for-bit. Records
//! are self-contained — replay never needs context beyond earlier
//! records — which is what lets a snapshot be "a compacted log of the
//! same format".

use mlss_core::estimate::Estimate;
use mlss_core::levels::PartitionPlan;
use mlss_core::persist::{
    decode_stored_shard, encode_stored_shard, put_f64, put_i64, put_str, put_u32, put_u64, put_u8,
    Persist, PersistError, Reader,
};
use mlss_core::shard_store::{ShardKey, StoredShard};

/// One `results`-table row, in the engine's fixed 12-column schema.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultRow {
    /// Model name.
    pub model: String,
    /// Requested method name (`srs`/`smlss`/`gmlss`/`auto`).
    pub method: String,
    /// Durability threshold β.
    pub beta: f64,
    /// Query horizon.
    pub horizon: i64,
    /// Point estimate τ̂.
    pub tau: f64,
    /// Estimator variance.
    pub variance: f64,
    /// `g` invocations spent.
    pub steps: i64,
    /// Root paths simulated.
    pub n_roots: i64,
    /// Wall-clock milliseconds (never bit-reproducible; identity
    /// comparisons exclude it).
    pub millis: i64,
    /// Plan-cache provenance (`hit`/`miss`/`none`).
    pub plan_source: String,
    /// Shard-store provenance (`stored`/`warm`/`cold`/`none`).
    pub shard_reuse: String,
    /// Fair-share tenant the query was charged to (`"-"` when none).
    pub tenant: String,
}

/// The identity of an ASYNC submission — everything recovery needs to
/// rebuild and resubmit the query spec exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitSpec {
    /// Model name.
    pub model: String,
    /// Explicit parameter overrides, in sorted order.
    pub params: Vec<(String, f64)>,
    /// Requested method name.
    pub method: String,
    /// Requested level count.
    pub levels: u64,
    /// Durability threshold β.
    pub beta: f64,
    /// Query horizon.
    pub horizon: u64,
    /// Target relative error.
    pub target_re: f64,
    /// Scheduler priority.
    pub priority: u8,
    /// Explicit batch-width override, when the spec had one.
    pub batch_width: Option<u64>,
    /// The seed the spec *pinned*, when it pinned one. Reuse routing
    /// depends on pinned-ness, so recovery must preserve it.
    pub pinned_seed: Option<u64>,
    /// The effective stream seed the query runs under (pinned or drawn
    /// at original submit time).
    pub seed: u64,
    /// Fair-share tenant the submission was charged to.
    pub tenant: Option<String>,
}

/// A durable event. Kinds 1–3 snapshot serving state; kinds 4–7 are the
/// ASYNC query lifecycle (submit → checkpoints → done | end); kind 8
/// journals plain SQL DDL/DML so user tables survive restarts.
#[derive(Debug)]
pub enum Record {
    /// A `results` row became visible.
    ResultRow(ResultRow),
    /// A plan-cache entry was built (or re-written by compaction).
    PlanEntry {
        /// Model fingerprint.
        fingerprint: u64,
        /// Plan-cache method key (e.g. `"balanced"`).
        method: String,
        /// Level count the plan was derived for.
        levels: u64,
        /// The τ̂ pilot hint cached with the plan.
        tau_hint: f64,
        /// The derived partition plan.
        plan: PartitionPlan,
    },
    /// A shard-store deposit was accepted.
    ShardDeposit {
        /// The store key.
        key: ShardKey,
        /// The stored checkpoint (shard + resume RNG + provenance).
        entry: StoredShard,
    },
    /// An ASYNC query was submitted. `qid` is the durable query id —
    /// monotonic per log, independent of in-process scheduler ids.
    AsyncSubmit {
        /// Durable query id.
        qid: u64,
        /// The full submission identity.
        spec: SubmitSpec,
        /// Plan provenance at original submit time.
        plan_source: String,
        /// Shard-reuse provenance at original submit time.
        shard_reuse: String,
    },
    /// A periodic checkpoint of a running ASYNC query: its committed
    /// shard + RNG at a slice boundary.
    AsyncCheckpoint {
        /// Durable query id.
        qid: u64,
        /// Resolved estimator name (`srs`/`smlss`/`gmlss`/`is`).
        method: String,
        /// Committed slices at capture time (diagnostic only).
        slices: u64,
        /// The resumable state.
        entry: StoredShard,
    },
    /// An ASYNC query finished; written *before* the scheduler publishes
    /// the `Done` status (write-ahead ordering).
    AsyncDone {
        /// Durable query id.
        qid: u64,
        /// The final estimate, bit-exact.
        estimate: Estimate,
        /// Wall-clock milliseconds attributed to the run.
        millis: i64,
    },
    /// An ASYNC query ended without a result (cancelled, failed, or
    /// detached): recovery must not resurrect it.
    AsyncEnd {
        /// Durable query id.
        qid: u64,
    },
    /// A plain SQL statement that mutated user-table state (`CREATE
    /// TABLE`/`INSERT`/`DELETE`/`DROP TABLE`), journaled verbatim and
    /// re-executed in log order on replay.
    SqlStatement {
        /// The statement text, exactly as executed.
        sql: String,
    },
}

const KIND_RESULT_ROW: u8 = 1;
const KIND_PLAN_ENTRY: u8 = 2;
const KIND_SHARD_DEPOSIT: u8 = 3;
const KIND_ASYNC_SUBMIT: u8 = 4;
const KIND_ASYNC_CHECKPOINT: u8 = 5;
const KIND_ASYNC_DONE: u8 = 6;
const KIND_ASYNC_END: u8 = 7;
const KIND_SQL_STATEMENT: u8 = 8;

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(v) => {
            put_u8(out, 1);
            put_u64(out, v);
        }
        None => put_u8(out, 0),
    }
}

fn get_opt_u64(r: &mut Reader<'_>) -> Result<Option<u64>, PersistError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.u64()?)),
        _ => Err(PersistError::Malformed("option tag")),
    }
}

fn put_opt_str(out: &mut Vec<u8>, v: Option<&str>) {
    match v {
        Some(v) => {
            put_u8(out, 1);
            put_str(out, v);
        }
        None => put_u8(out, 0),
    }
}

fn get_opt_str(r: &mut Reader<'_>) -> Result<Option<String>, PersistError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.str()?)),
        _ => Err(PersistError::Malformed("option tag")),
    }
}

impl Record {
    /// Encode the record payload (kind byte + body). Fails only for a
    /// [`StoredShard`] holding a shard type outside the four in-tree
    /// estimators.
    pub fn encode(&self, out: &mut Vec<u8>) -> Result<(), PersistError> {
        match self {
            Record::ResultRow(row) => {
                put_u8(out, KIND_RESULT_ROW);
                put_str(out, &row.model);
                put_str(out, &row.method);
                put_f64(out, row.beta);
                put_i64(out, row.horizon);
                put_f64(out, row.tau);
                put_f64(out, row.variance);
                put_i64(out, row.steps);
                put_i64(out, row.n_roots);
                put_i64(out, row.millis);
                put_str(out, &row.plan_source);
                put_str(out, &row.shard_reuse);
                put_str(out, &row.tenant);
            }
            Record::PlanEntry {
                fingerprint,
                method,
                levels,
                tau_hint,
                plan,
            } => {
                put_u8(out, KIND_PLAN_ENTRY);
                put_u64(out, *fingerprint);
                put_str(out, method);
                put_u64(out, *levels);
                put_f64(out, *tau_hint);
                plan.persist(out);
            }
            Record::ShardDeposit { key, entry } => {
                put_u8(out, KIND_SHARD_DEPOSIT);
                put_u64(out, key.fingerprint);
                put_str(out, &key.method);
                put_u64(out, key.plan_digest);
                encode_stored_shard(entry, out)?;
            }
            Record::AsyncSubmit {
                qid,
                spec,
                plan_source,
                shard_reuse,
            } => {
                put_u8(out, KIND_ASYNC_SUBMIT);
                put_u64(out, *qid);
                put_str(out, &spec.model);
                put_u32(out, spec.params.len() as u32);
                for (name, value) in &spec.params {
                    put_str(out, name);
                    put_f64(out, *value);
                }
                put_str(out, &spec.method);
                put_u64(out, spec.levels);
                put_f64(out, spec.beta);
                put_u64(out, spec.horizon);
                put_f64(out, spec.target_re);
                put_u8(out, spec.priority);
                put_opt_u64(out, spec.batch_width);
                put_opt_u64(out, spec.pinned_seed);
                put_u64(out, spec.seed);
                put_opt_str(out, spec.tenant.as_deref());
                put_str(out, plan_source);
                put_str(out, shard_reuse);
            }
            Record::AsyncCheckpoint {
                qid,
                method,
                slices,
                entry,
            } => {
                put_u8(out, KIND_ASYNC_CHECKPOINT);
                put_u64(out, *qid);
                put_str(out, method);
                put_u64(out, *slices);
                encode_stored_shard(entry, out)?;
            }
            Record::AsyncDone {
                qid,
                estimate,
                millis,
            } => {
                put_u8(out, KIND_ASYNC_DONE);
                put_u64(out, *qid);
                estimate.persist(out);
                put_i64(out, *millis);
            }
            Record::AsyncEnd { qid } => {
                put_u8(out, KIND_ASYNC_END);
                put_u64(out, *qid);
            }
            Record::SqlStatement { sql } => {
                put_u8(out, KIND_SQL_STATEMENT);
                put_str(out, sql);
            }
        }
        Ok(())
    }

    /// Decode one record from a CRC-verified payload. The whole payload
    /// must be consumed: trailing bytes mean a framing bug or version
    /// mismatch and are rejected rather than ignored.
    pub fn decode(payload: &[u8]) -> Result<Record, PersistError> {
        let mut r = Reader::new(payload);
        let rec = Self::decode_from(&mut r)?;
        if r.remaining() != 0 {
            return Err(PersistError::Malformed("trailing bytes in record"));
        }
        Ok(rec)
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Record, PersistError> {
        match r.u8()? {
            KIND_RESULT_ROW => Ok(Record::ResultRow(ResultRow {
                model: r.str()?,
                method: r.str()?,
                beta: r.f64()?,
                horizon: r.i64()?,
                tau: r.f64()?,
                variance: r.f64()?,
                steps: r.i64()?,
                n_roots: r.i64()?,
                millis: r.i64()?,
                plan_source: r.str()?,
                shard_reuse: r.str()?,
                tenant: r.str()?,
            })),
            KIND_PLAN_ENTRY => Ok(Record::PlanEntry {
                fingerprint: r.u64()?,
                method: r.str()?,
                levels: r.u64()?,
                tau_hint: r.f64()?,
                plan: PartitionPlan::restore(r)?,
            }),
            KIND_SHARD_DEPOSIT => Ok(Record::ShardDeposit {
                key: ShardKey {
                    fingerprint: r.u64()?,
                    method: r.str()?,
                    plan_digest: r.u64()?,
                },
                entry: decode_stored_shard(r)?,
            }),
            KIND_ASYNC_SUBMIT => {
                let qid = r.u64()?;
                let model = r.str()?;
                let n_params = r.u32()? as usize;
                let mut params = Vec::with_capacity(n_params.min(64));
                for _ in 0..n_params {
                    let name = r.str()?;
                    let value = r.f64()?;
                    params.push((name, value));
                }
                Ok(Record::AsyncSubmit {
                    qid,
                    spec: SubmitSpec {
                        model,
                        params,
                        method: r.str()?,
                        levels: r.u64()?,
                        beta: r.f64()?,
                        horizon: r.u64()?,
                        target_re: r.f64()?,
                        priority: r.u8()?,
                        batch_width: get_opt_u64(r)?,
                        pinned_seed: get_opt_u64(r)?,
                        seed: r.u64()?,
                        tenant: get_opt_str(r)?,
                    },
                    plan_source: r.str()?,
                    shard_reuse: r.str()?,
                })
            }
            KIND_ASYNC_CHECKPOINT => Ok(Record::AsyncCheckpoint {
                qid: r.u64()?,
                method: r.str()?,
                slices: r.u64()?,
                entry: decode_stored_shard(r)?,
            }),
            KIND_ASYNC_DONE => Ok(Record::AsyncDone {
                qid: r.u64()?,
                estimate: Estimate::restore(r)?,
                millis: r.i64()?,
            }),
            KIND_ASYNC_END => Ok(Record::AsyncEnd { qid: r.u64()? }),
            KIND_SQL_STATEMENT => Ok(Record::SqlStatement { sql: r.str()? }),
            _ => Err(PersistError::Malformed("unknown record kind")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rec: &Record) -> Record {
        let mut out = Vec::new();
        rec.encode(&mut out).unwrap();
        Record::decode(&out).unwrap()
    }

    #[test]
    fn result_row_roundtrip() {
        let row = ResultRow {
            model: "walk".into(),
            method: "gmlss".into(),
            beta: 6.0,
            horizon: 60,
            tau: 1.25e-7,
            variance: 3.5e-16,
            steps: 123_456,
            n_roots: 2000,
            millis: 42,
            plan_source: "hit".into(),
            shard_reuse: "cold".into(),
            tenant: "acme".into(),
        };
        match roundtrip(&Record::ResultRow(row.clone())) {
            Record::ResultRow(got) => assert_eq!(got, row),
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn submit_roundtrip_preserves_pinnedness() {
        let rec = Record::AsyncSubmit {
            qid: 9,
            spec: SubmitSpec {
                model: "walk".into(),
                params: vec![("drift".into(), -0.25), ("sigma".into(), 1.0)],
                method: "auto".into(),
                levels: 4,
                beta: 6.0,
                horizon: 60,
                target_re: 0.2,
                priority: 3,
                batch_width: Some(8),
                pinned_seed: None,
                seed: 0xDEAD_BEEF,
                tenant: Some("acme".into()),
            },
            plan_source: "miss".into(),
            shard_reuse: "cold".into(),
        };
        match roundtrip(&rec) {
            Record::AsyncSubmit {
                qid,
                spec,
                plan_source,
                shard_reuse,
            } => {
                assert_eq!(qid, 9);
                assert_eq!(spec.pinned_seed, None);
                assert_eq!(spec.seed, 0xDEAD_BEEF);
                assert_eq!(spec.params.len(), 2);
                assert_eq!(plan_source, "miss");
                assert_eq!(shard_reuse, "cold");
                assert_eq!(spec.tenant.as_deref(), Some("acme"));
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn sql_statement_roundtrip() {
        let rec = Record::SqlStatement {
            sql: "CREATE TABLE t (a INT)".into(),
        };
        match roundtrip(&rec) {
            Record::SqlStatement { sql } => assert_eq!(sql, "CREATE TABLE t (a INT)"),
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut out = Vec::new();
        Record::AsyncEnd { qid: 1 }.encode(&mut out).unwrap();
        out.push(0);
        assert!(Record::decode(&out).is_err());
    }
}
