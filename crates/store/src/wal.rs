//! The on-disk log: framing, replay, snapshot/compaction, fsync policy,
//! and crash-point injection.
//!
//! A log directory holds two files in the same format:
//!
//! ```text
//! snapshot.wal   compacted prefix (rewritten atomically by compaction)
//! tail.wal       append-only suffix of records since the last compaction
//! ```
//!
//! Each file is an 8-byte magic (`MLSSWAL1`) followed by frames:
//!
//! ```text
//! [len: u32 LE][crc32(payload): u32 LE][payload: len bytes]
//! ```
//!
//! Replay reads the snapshot then the tail and stops each file at the
//! first invalid frame — short header, truncated payload, CRC mismatch,
//! or undecodable record — returning every record before it. The tail is
//! then physically truncated to its last valid frame so subsequent
//! appends never interleave with a torn write.
//!
//! Compaction rewrites `snapshot.wal` (write temp → fsync → rename) with
//! the session's current state as ordinary records and truncates the
//! tail; a crash at any point leaves either the old pair or the new pair,
//! both replayable. A snapshot is therefore allowed to be *stale* — the
//! tail suffix replays on top of it.

use crate::crc::crc32;
use crate::record::Record;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Condvar, Mutex};

const MAGIC: &[u8; 8] = b"MLSSWAL1";
const SNAPSHOT: &str = "snapshot.wal";
const TAIL: &str = "tail.wal";

/// When appended records reach stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` covers every record before its append returns —
    /// maximum durability. Concurrent appenders **group-commit**: one
    /// leader issues the fsync outside the log lock and every record
    /// written before it started is covered by that single syscall, so
    /// under contention fsyncs ≪ records while each append still
    /// returns only after its frame is on stable storage. A lone
    /// appender degenerates to one fsync per record.
    Always,
    /// `fdatasync` after every N records (and on compaction).
    EveryN(u64),
    /// Never fsync; durability is limited to what the OS flushes. The
    /// replay path is identical — torn tails are expected and handled.
    Never,
}

/// Crash-point injection: simulate the process dying at a chosen write.
///
/// After `after_records` successful appends the log **wedges**: with
/// `torn_bytes = Some(k)` the next record writes only the first `k`
/// bytes of its frame first (a torn write); either way every subsequent
/// append is silently dropped and fsyncs become no-ops — exactly the
/// observable disk state of a `SIGKILL` at that point. The in-memory
/// session keeps running, so a test can compare its live results against
/// what a reopened session recovers.
#[derive(Debug, Clone, Copy)]
pub struct CrashPlan {
    /// Successful appends before the wedge.
    pub after_records: u64,
    /// Bytes of the next frame to leave on disk (`None` = drop whole).
    pub torn_bytes: Option<usize>,
}

impl CrashPlan {
    /// Wedge cleanly after `n` records (crash at a record boundary).
    pub fn after(n: u64) -> Self {
        Self {
            after_records: n,
            torn_bytes: None,
        }
    }

    /// Wedge mid-record: record `n` (0-based) leaves `bytes` of its
    /// frame on disk.
    pub fn torn(n: u64, bytes: usize) -> Self {
        Self {
            after_records: n,
            torn_bytes: Some(bytes),
        }
    }
}

/// Open-time options.
#[derive(Debug, Clone, Copy)]
pub struct WalOptions {
    /// Fsync cadence for appends.
    pub fsync: FsyncPolicy,
    /// Optional crash injection (tests only).
    pub crash: Option<CrashPlan>,
}

impl Default for WalOptions {
    fn default() -> Self {
        Self {
            fsync: FsyncPolicy::Always,
            crash: None,
        }
    }
}

/// What replay found on open.
#[derive(Debug)]
pub struct Replay {
    /// Every valid record, snapshot first, then tail, in write order.
    pub records: Vec<Record>,
    /// How many of `records` came from the snapshot file.
    pub snapshot_records: u64,
    /// How many came from the tail file.
    pub tail_records: u64,
    /// Whether either file ended in an invalid frame (torn or corrupt)
    /// that replay dropped.
    pub truncated: bool,
    /// Bytes discarded as invalid suffix.
    pub dropped_bytes: u64,
}

/// Append/IO counters for diagnostics.
#[derive(Debug, Clone, Copy, Default)]
pub struct WalStats {
    /// Records appended (durably) by this process.
    pub records: u64,
    /// Frame bytes appended by this process.
    pub bytes: u64,
    /// `fdatasync` calls issued.
    pub fsyncs: u64,
    /// Compactions performed.
    pub compactions: u64,
    /// Appends dropped by an injected crash.
    pub dropped: u64,
    /// Whether the log is wedged by a [`CrashPlan`].
    pub wedged: bool,
}

struct Inner {
    tail: File,
    fsync: FsyncPolicy,
    crash: Option<CrashPlan>,
    since_sync: u64,
    stats: WalStats,
    /// Frames written to the tail (group-commit sequence numbers).
    written_seq: u64,
    /// Highest `written_seq` covered by a completed fsync.
    synced_seq: u64,
    /// A leader is fsyncing outside the lock right now.
    syncing: bool,
}

/// A crash-safe append-only record log (see module docs). All methods
/// take `&self`; the file handle is internally serialized.
pub struct Wal {
    dir: PathBuf,
    inner: Mutex<Inner>,
    /// Wakes group-commit followers when a leader's fsync lands.
    sync_done: Condvar,
}

fn parse_file(path: &Path) -> std::io::Result<(Vec<Record>, u64, bool, u64)> {
    let mut buf = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut buf)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok((Vec::new(), 0, false, 0));
        }
        Err(e) => return Err(e),
    }
    if buf.len() < MAGIC.len() || &buf[..MAGIC.len()] != MAGIC {
        // Missing or foreign header: nothing trustworthy in the file.
        return Ok((Vec::new(), 0, !buf.is_empty(), buf.len() as u64));
    }
    let mut records = Vec::new();
    let mut pos = MAGIC.len();
    loop {
        if pos + 8 > buf.len() {
            break;
        }
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().unwrap());
        if pos + 8 + len > buf.len() {
            break; // torn payload
        }
        let payload = &buf[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            break; // bit rot or torn header/payload overlap
        }
        match Record::decode(payload) {
            Ok(rec) => records.push(rec),
            Err(_) => break, // CRC-valid but undecodable: version skew
        }
        pos += 8 + len;
    }
    let dropped = (buf.len() - pos) as u64;
    Ok((records, pos as u64, dropped > 0, dropped))
}

fn frame(rec: &Record) -> std::io::Result<Vec<u8>> {
    let mut payload = Vec::new();
    rec.encode(&mut payload)
        .map_err(|e| std::io::Error::other(format!("unencodable record: {e}")))?;
    let mut framed = Vec::with_capacity(payload.len() + 8);
    framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    framed.extend_from_slice(&crc32(&payload).to_le_bytes());
    framed.extend_from_slice(&payload);
    Ok(framed)
}

impl Wal {
    /// Open (creating if needed) the log in `dir`, replay it, truncate
    /// any invalid tail suffix, and position for appending.
    pub fn open(dir: impl Into<PathBuf>, opts: WalOptions) -> std::io::Result<(Wal, Replay)> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let (snap_records, _, snap_truncated, snap_dropped) = parse_file(&dir.join(SNAPSHOT))?;
        let tail_path = dir.join(TAIL);
        let (tail_records, tail_valid, tail_truncated, tail_dropped) = parse_file(&tail_path)?;

        let mut tail = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&tail_path)?;
        if tail_valid < MAGIC.len() as u64 {
            // Fresh (or unreadable-header) tail: start it over.
            tail.set_len(0)?;
            tail.write_all(MAGIC)?;
        } else {
            // Drop the invalid suffix so appends never follow torn bytes.
            tail.set_len(tail_valid)?;
        }
        tail.seek(SeekFrom::End(0))?;

        let snapshot_records = snap_records.len() as u64;
        let tail_count = tail_records.len() as u64;
        let mut records = snap_records;
        records.extend(tail_records);
        let replay = Replay {
            records,
            snapshot_records,
            tail_records: tail_count,
            truncated: snap_truncated || tail_truncated,
            dropped_bytes: snap_dropped + tail_dropped,
        };
        let wal = Wal {
            dir,
            inner: Mutex::new(Inner {
                tail,
                fsync: opts.fsync,
                crash: opts.crash,
                since_sync: 0,
                stats: WalStats::default(),
                written_seq: 0,
                synced_seq: 0,
                syncing: false,
            }),
            sync_done: Condvar::new(),
        };
        Ok((wal, replay))
    }

    /// Append one record per the fsync policy. Returns `Ok(false)` when
    /// an injected crash has wedged the log and the record was dropped —
    /// callers treat that exactly like a process death after this point.
    pub fn append(&self, rec: &Record) -> std::io::Result<bool> {
        let mut inner = self.inner.lock().unwrap();
        if inner.stats.wedged {
            inner.stats.dropped += 1;
            return Ok(false);
        }
        if let Some(plan) = inner.crash {
            if inner.stats.records >= plan.after_records {
                // Crash point reached: optionally leave a torn prefix of
                // this frame, then drop everything from here on.
                if let Some(bytes) = plan.torn_bytes {
                    let framed = frame(rec)?;
                    let torn = &framed[..bytes.min(framed.len())];
                    inner.tail.write_all(torn)?;
                    inner.tail.sync_data()?;
                }
                inner.stats.wedged = true;
                inner.stats.dropped += 1;
                return Ok(false);
            }
        }
        let framed = frame(rec)?;
        inner.tail.write_all(&framed)?;
        inner.stats.records += 1;
        inner.stats.bytes += framed.len() as u64;
        inner.since_sync += 1;
        inner.written_seq += 1;
        match inner.fsync {
            FsyncPolicy::Always => {
                // Group commit: don't return until an fsync issued
                // *after* this frame was written completes. One leader
                // syncs outside the lock; frames written while it is in
                // flight ride the *next* leader's syscall. A lone
                // appender is always its own leader (one fsync per
                // record); under contention fsyncs ≪ records.
                let my_seq = inner.written_seq;
                while inner.synced_seq < my_seq {
                    if inner.syncing {
                        inner = self.sync_done.wait(inner).unwrap();
                        continue;
                    }
                    let tail = inner.tail.try_clone()?;
                    let covers = inner.written_seq;
                    inner.syncing = true;
                    drop(inner);
                    let res = tail.sync_data();
                    inner = self.inner.lock().unwrap();
                    inner.syncing = false;
                    self.sync_done.notify_all();
                    res?;
                    inner.stats.fsyncs += 1;
                    inner.synced_seq = inner.synced_seq.max(covers);
                    inner.since_sync = inner.written_seq - inner.synced_seq;
                }
            }
            FsyncPolicy::EveryN(n) => {
                if inner.since_sync >= n.max(1) {
                    inner.tail.sync_data()?;
                    inner.since_sync = 0;
                    inner.synced_seq = inner.written_seq;
                    inner.stats.fsyncs += 1;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(true)
    }

    /// Force pending appends to stable storage (no-op when wedged).
    pub fn sync(&self) -> std::io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        if inner.stats.wedged {
            return Ok(());
        }
        inner.tail.sync_data()?;
        inner.since_sync = 0;
        inner.synced_seq = inner.written_seq;
        inner.stats.fsyncs += 1;
        Ok(())
    }

    /// Replace the snapshot with `records` (the caller's full current
    /// state) and truncate the tail: write temp → fsync → rename, so a
    /// crash leaves either the old pair or the new pair. No-op when
    /// wedged — a crashed process doesn't compact.
    pub fn compact(&self, records: &[Record]) -> std::io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        if inner.stats.wedged {
            return Ok(());
        }
        let tmp_path = self.dir.join("snapshot.tmp");
        {
            let mut tmp = File::create(&tmp_path)?;
            tmp.write_all(MAGIC)?;
            for rec in records {
                tmp.write_all(&frame(rec)?)?;
            }
            tmp.sync_data()?;
        }
        std::fs::rename(&tmp_path, self.dir.join(SNAPSHOT))?;
        inner.tail.set_len(MAGIC.len() as u64)?;
        inner.tail.seek(SeekFrom::End(0))?;
        inner.tail.sync_data()?;
        inner.stats.compactions += 1;
        Ok(())
    }

    /// Append/IO counters.
    pub fn stats(&self) -> WalStats {
        self.inner.lock().unwrap().stats
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Record, ResultRow};

    fn row(i: i64) -> ResultRow {
        ResultRow {
            model: format!("m{i}"),
            method: "srs".into(),
            beta: 6.0 + i as f64,
            horizon: 60 + i,
            tau: 1.0e-7 * (i + 1) as f64,
            variance: 2.0e-16,
            steps: 1000 + i,
            n_roots: 10 + i,
            millis: i,
            plan_source: "none".into(),
            shard_reuse: "cold".into(),
            tenant: "-".into(),
        }
    }

    fn rows(replay: &Replay) -> Vec<i64> {
        replay
            .records
            .iter()
            .map(|r| match r {
                Record::ResultRow(row) => row.horizon - 60,
                other => panic!("unexpected record {other:?}"),
            })
            .collect()
    }

    fn write_n(dir: &Path, n: i64) {
        let (wal, _) = Wal::open(dir, WalOptions::default()).unwrap();
        for i in 0..n {
            assert!(wal.append(&Record::ResultRow(row(i))).unwrap());
        }
    }

    #[test]
    fn append_then_replay() {
        let dir = tempdir("append_then_replay");
        write_n(&dir, 3);
        let (_, replay) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(rows(&replay), vec![0, 1, 2]);
        assert!(!replay.truncated);
        assert_eq!(replay.snapshot_records, 0);
        assert_eq!(replay.tail_records, 3);
    }

    #[test]
    fn truncated_tail_stops_at_last_valid_record() {
        let dir = tempdir("truncated_tail");
        write_n(&dir, 3);
        // Chop bytes off the end of the tail, simulating a torn final
        // write; every intermediate truncation must still replay the
        // prefix of complete records without panicking.
        let path = dir.join(TAIL);
        let full = std::fs::read(&path).unwrap();
        for cut in 1..40 {
            std::fs::write(&path, &full[..full.len() - cut]).unwrap();
            let (_, replay) = Wal::open(&dir, WalOptions::default()).unwrap();
            assert!(rows(&replay).len() <= 3);
            assert_eq!(
                rows(&replay),
                (0..rows(&replay).len() as i64).collect::<Vec<_>>()
            );
            // Re-opening after truncation repaired the file; restore it.
            std::fs::write(&path, &full).unwrap();
        }
    }

    #[test]
    fn bit_flip_in_payload_stops_replay() {
        let dir = tempdir("bit_flip");
        write_n(&dir, 3);
        let path = dir.join(TAIL);
        let full = std::fs::read(&path).unwrap();
        // Locate record 1's payload: magic, then frame 0, then frame 1.
        let len0 = u32::from_le_bytes(full[8..12].try_into().unwrap()) as usize;
        let rec1 = 8 + 8 + len0;
        let mut corrupt = full.clone();
        corrupt[rec1 + 8 + 3] ^= 0x40; // payload byte of record 1
        std::fs::write(&path, &corrupt).unwrap();
        let (_, replay) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(
            rows(&replay),
            vec![0],
            "replay must stop before the corrupt record"
        );
        assert!(replay.truncated);
        assert!(replay.dropped_bytes > 0);
    }

    #[test]
    fn bad_crc_field_stops_replay() {
        let dir = tempdir("bad_crc");
        write_n(&dir, 2);
        let path = dir.join(TAIL);
        let mut full = std::fs::read(&path).unwrap();
        full[8 + 4] ^= 0xFF; // CRC field of record 0
        std::fs::write(&path, &full).unwrap();
        let (_, replay) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert!(rows(&replay).is_empty());
        assert!(replay.truncated);
    }

    #[test]
    fn reopen_after_torn_tail_appends_cleanly() {
        let dir = tempdir("reopen_torn");
        write_n(&dir, 2);
        let path = dir.join(TAIL);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        // Reopen truncates the torn record and appends a new one after it.
        let (wal, replay) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(rows(&replay), vec![0]);
        assert!(wal.append(&Record::ResultRow(row(7))).unwrap());
        drop(wal);
        let (_, replay) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(rows(&replay), vec![0, 7]);
        assert!(!replay.truncated);
    }

    #[test]
    fn stale_snapshot_plus_tail_suffix_replays_in_order() {
        let dir = tempdir("stale_snapshot");
        let (wal, _) = Wal::open(&dir, WalOptions::default()).unwrap();
        for i in 0..2 {
            wal.append(&Record::ResultRow(row(i))).unwrap();
        }
        // Compact rows 0-1 into the snapshot, then keep appending: the
        // snapshot is now stale relative to the tail.
        wal.compact(&[Record::ResultRow(row(0)), Record::ResultRow(row(1))])
            .unwrap();
        for i in 2..5 {
            wal.append(&Record::ResultRow(row(i))).unwrap();
        }
        drop(wal);
        let (_, replay) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(rows(&replay), vec![0, 1, 2, 3, 4]);
        assert_eq!(replay.snapshot_records, 2);
        assert_eq!(replay.tail_records, 3);
        // A torn tail on top of a snapshot still replays the snapshot
        // plus the valid tail prefix.
        let path = dir.join(TAIL);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let (_, replay) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(rows(&replay), vec![0, 1, 2, 3]);
        assert!(replay.truncated);
    }

    #[test]
    fn crash_plan_wedges_at_the_boundary() {
        let dir = tempdir("crash_boundary");
        let opts = WalOptions {
            fsync: FsyncPolicy::Always,
            crash: Some(CrashPlan::after(2)),
        };
        let (wal, _) = Wal::open(&dir, opts).unwrap();
        assert!(wal.append(&Record::ResultRow(row(0))).unwrap());
        assert!(wal.append(&Record::ResultRow(row(1))).unwrap());
        assert!(!wal.append(&Record::ResultRow(row(2))).unwrap());
        assert!(!wal.append(&Record::ResultRow(row(3))).unwrap());
        assert!(wal.stats().wedged);
        assert_eq!(wal.stats().dropped, 2);
        drop(wal);
        let (_, replay) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(rows(&replay), vec![0, 1]);
        assert!(!replay.truncated);
    }

    #[test]
    fn crash_plan_torn_write_leaves_partial_frame() {
        let dir = tempdir("crash_torn");
        let opts = WalOptions {
            fsync: FsyncPolicy::Always,
            crash: Some(CrashPlan::torn(1, 6)),
        };
        let (wal, _) = Wal::open(&dir, opts).unwrap();
        assert!(wal.append(&Record::ResultRow(row(0))).unwrap());
        assert!(!wal.append(&Record::ResultRow(row(1))).unwrap());
        drop(wal);
        let (_, replay) = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(rows(&replay), vec![0]);
        assert!(
            replay.truncated,
            "the torn frame must be detected and dropped"
        );
    }

    #[test]
    fn fsync_policies_count_syncs() {
        let dir = tempdir("fsync_counts");
        let (wal, _) = Wal::open(
            &dir,
            WalOptions {
                fsync: FsyncPolicy::EveryN(3),
                crash: None,
            },
        )
        .unwrap();
        for i in 0..7 {
            wal.append(&Record::ResultRow(row(i))).unwrap();
        }
        assert_eq!(wal.stats().fsyncs, 2); // after records 3 and 6
        let (never, _) = Wal::open(
            tempdir("fsync_never"),
            WalOptions {
                fsync: FsyncPolicy::Never,
                crash: None,
            },
        )
        .unwrap();
        never.append(&Record::ResultRow(row(0))).unwrap();
        assert_eq!(never.stats().fsyncs, 0);
    }

    #[test]
    fn sequential_always_syncs_every_record() {
        // Group commit must not change the lone-appender contract: with
        // no one to share a syscall with, every append is its own
        // leader.
        let (wal, _) = Wal::open(
            tempdir("group_sequential"),
            WalOptions {
                fsync: FsyncPolicy::Always,
                crash: None,
            },
        )
        .unwrap();
        for i in 0..5 {
            wal.append(&Record::ResultRow(row(i))).unwrap();
        }
        assert_eq!(wal.stats().fsyncs, 5);
    }

    #[test]
    fn concurrent_always_group_commits_and_loses_nothing() {
        // Hammer the log from several threads under `Always`: every
        // record must replay (each append returned only after its frame
        // was covered by an fsync), and the group must never issue more
        // syscalls than records — under contention it should issue
        // meaningfully fewer, but that is timing-dependent, so only the
        // ≤ bound and the durability of every record are pinned.
        let dir = tempdir("group_concurrent");
        let (wal, _) = Wal::open(
            dir.clone(),
            WalOptions {
                fsync: FsyncPolicy::Always,
                crash: None,
            },
        )
        .unwrap();
        let wal = std::sync::Arc::new(wal);
        const THREADS: i64 = 4;
        const PER_THREAD: i64 = 25;
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let wal = wal.clone();
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        assert!(wal
                            .append(&Record::ResultRow(row(t * PER_THREAD + i)))
                            .unwrap());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total = (THREADS * PER_THREAD) as u64;
        let stats = wal.stats();
        assert_eq!(stats.records, total);
        assert!(
            stats.fsyncs >= 1 && stats.fsyncs <= total,
            "group commit: {} fsyncs for {} records",
            stats.fsyncs,
            total
        );

        // Reopen and replay: all frames intact, none torn or dropped.
        drop(wal);
        let (_, replay) = Wal::open(
            dir,
            WalOptions {
                fsync: FsyncPolicy::Always,
                crash: None,
            },
        )
        .unwrap();
        assert_eq!(replay.records.len() as u64, total);
        assert!(!replay.truncated);
    }

    fn tempdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mlss_store_test_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}
