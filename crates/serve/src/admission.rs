//! Admission control: bounded in-flight work per server and per tenant.
//!
//! The server executes statements on connection threads, so without a
//! bound an overload turns into unbounded concurrency and collapsing
//! tail latency. [`Admission`] keeps three caps:
//!
//! * a **global in-flight cap** — statements executing concurrently
//!   across all connections;
//! * a **per-tenant in-flight cap** — one tenant cannot occupy the whole
//!   global budget;
//! * a **per-tenant ASYNC quota** — outstanding (non-terminal) scheduled
//!   queries a tenant may hold, so a tenant cannot park unbounded work
//!   in the scheduler and starve the fair-share pool.
//!
//! A request over any cap is **shed**: the server answers
//! `SHED RETRY AFTER <seconds>` and does no work. The retry hint grows
//! with how far over cap the server is, clamped to `1..=30` seconds.
//! Accept/shed counters per tenant feed the `admission` diagnostics
//! block.

use mlss_core::estimator::Diagnostics;
use mlss_core::scheduler::QueryId;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

/// Admission caps. `0` never admits (useful in tests); pick generous
/// defaults via [`AdmissionConfig::default`].
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Statements executing concurrently across all connections.
    pub global_inflight_cap: usize,
    /// Statements executing concurrently for one tenant.
    pub tenant_inflight_cap: usize,
    /// Outstanding (non-terminal) ASYNC queries one tenant may hold.
    pub tenant_async_quota: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            global_inflight_cap: 64,
            tenant_inflight_cap: 16,
            tenant_async_quota: 8,
        }
    }
}

#[derive(Default)]
struct TenantAdm {
    inflight: usize,
    accepted: u64,
    shed: u64,
    asyncs: Vec<QueryId>,
}

#[derive(Default)]
struct State {
    inflight: usize,
    accepted: u64,
    shed: u64,
    tenants: BTreeMap<String, TenantAdm>,
}

/// The shared admission ledger (one per [`crate::Server`]).
pub struct Admission {
    cfg: AdmissionConfig,
    state: Mutex<State>,
}

/// Outcome of an admission check.
pub enum Decision {
    /// Admitted; drop the ticket when the statement finishes.
    Admit(Ticket),
    /// Shed; the client should retry after the hinted seconds.
    Shed {
        /// Suggested client back-off in seconds (`1..=30`).
        retry_after: u64,
    },
}

/// RAII in-flight slot: releases the global and tenant counters on drop.
pub struct Ticket {
    admission: Arc<Admission>,
    tenant: String,
}

impl Drop for Ticket {
    fn drop(&mut self) {
        let mut st = self.admission.lock();
        st.inflight = st.inflight.saturating_sub(1);
        if let Some(t) = st.tenants.get_mut(&self.tenant) {
            t.inflight = t.inflight.saturating_sub(1);
        }
    }
}

impl Admission {
    /// New ledger under `cfg`.
    pub fn new(cfg: AdmissionConfig) -> Arc<Self> {
        Arc::new(Self {
            cfg,
            state: Mutex::new(State::default()),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admit or shed one statement for `tenant`. `wants_async` requests
    /// an ASYNC-quota slot too; `is_terminal` reports whether an
    /// outstanding query id has reached a terminal state (quota slots
    /// are reclaimed lazily here, so no completion callback is needed).
    pub fn admit(
        self: &Arc<Self>,
        tenant: &str,
        wants_async: bool,
        is_terminal: impl Fn(QueryId) -> bool,
    ) -> Decision {
        let mut st = self.lock();
        let global_inflight = st.inflight;
        let t = st.tenants.entry(tenant.to_string()).or_default();
        if wants_async {
            t.asyncs.retain(|id| !is_terminal(*id));
        }
        let over_global = global_inflight >= self.cfg.global_inflight_cap;
        let over_tenant = t.inflight >= self.cfg.tenant_inflight_cap;
        let over_quota = wants_async && t.asyncs.len() >= self.cfg.tenant_async_quota;
        if over_global || over_tenant || over_quota {
            t.shed += 1;
            // Back off harder the further over cap the server is; quota
            // sheds hint longer since scheduled queries take a while.
            let overshoot = if over_global {
                global_inflight.saturating_sub(self.cfg.global_inflight_cap) / 8
            } else if over_quota {
                1
            } else {
                0
            };
            st.shed += 1;
            return Decision::Shed {
                retry_after: (1 + overshoot as u64).clamp(1, 30),
            };
        }
        t.inflight += 1;
        t.accepted += 1;
        st.inflight += 1;
        st.accepted += 1;
        Decision::Admit(Ticket {
            admission: Arc::clone(self),
            tenant: tenant.to_string(),
        })
    }

    /// Register an outstanding ASYNC query id against its tenant's
    /// quota (called after a successful ASYNC submission).
    pub fn note_async(&self, tenant: &str, id: QueryId) {
        let mut st = self.lock();
        st.tenants
            .entry(tenant.to_string())
            .or_default()
            .asyncs
            .push(id);
    }

    /// Total statements shed so far (all causes, all tenants).
    pub fn shed_total(&self) -> u64 {
        self.lock().shed
    }

    /// The `admission` diagnostics block: global in-flight/accept/shed
    /// plus per-tenant counters.
    pub fn diagnostics(&self) -> Diagnostics {
        let st = self.lock();
        let mut details = vec![
            ("global.inflight".to_string(), st.inflight as f64),
            ("global.accepted".to_string(), st.accepted as f64),
            ("global.shed".to_string(), st.shed as f64),
        ];
        for (name, t) in &st.tenants {
            details.push((format!("{name}.inflight"), t.inflight as f64));
            details.push((format!("{name}.accepted"), t.accepted as f64));
            details.push((format!("{name}.shed"), t.shed as f64));
            details.push((format!("{name}.async_outstanding"), t.asyncs.len() as f64));
        }
        Diagnostics {
            estimator: "admission",
            skip_events: 0,
            details,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(g: usize, t: usize, q: usize) -> AdmissionConfig {
        AdmissionConfig {
            global_inflight_cap: g,
            tenant_inflight_cap: t,
            tenant_async_quota: q,
        }
    }

    #[test]
    fn global_cap_sheds_and_tickets_release() {
        let adm = Admission::new(cfg(2, 2, 8));
        let a = adm.admit("a", false, |_| true);
        let b = adm.admit("b", false, |_| true);
        let (Decision::Admit(ta), Decision::Admit(tb)) = (a, b) else {
            panic!("under cap must admit");
        };
        match adm.admit("c", false, |_| true) {
            Decision::Shed { retry_after } => assert!((1..=30).contains(&retry_after)),
            Decision::Admit(_) => panic!("over global cap must shed"),
        }
        drop(ta);
        drop(tb);
        assert!(matches!(
            adm.admit("c", false, |_| true),
            Decision::Admit(_)
        ));
        assert_eq!(adm.shed_total(), 1);
    }

    #[test]
    fn tenant_cap_isolates_tenants() {
        let adm = Admission::new(cfg(16, 1, 8));
        let Decision::Admit(_ta) = adm.admit("a", false, |_| true) else {
            panic!("first admit");
        };
        assert!(matches!(
            adm.admit("a", false, |_| true),
            Decision::Shed { .. }
        ));
        // A different tenant is unaffected.
        assert!(matches!(
            adm.admit("b", false, |_| true),
            Decision::Admit(_)
        ));
    }

    #[test]
    fn async_quota_reclaims_terminal_ids() {
        let adm = Admission::new(cfg(16, 16, 1));
        let Decision::Admit(t) = adm.admit("a", true, |_| false) else {
            panic!("quota free");
        };
        drop(t);
        adm.note_async("a", 7);
        // Outstanding id 7 not terminal: quota full.
        assert!(matches!(
            adm.admit("a", true, |_| false),
            Decision::Shed { .. }
        ));
        // Sync statements don't consume the quota.
        assert!(matches!(
            adm.admit("a", false, |_| false),
            Decision::Admit(_)
        ));
        // Once 7 is terminal the slot is reclaimed lazily.
        assert!(matches!(
            adm.admit("a", true, |id| id == 7),
            Decision::Admit(_)
        ));
    }

    #[test]
    fn diagnostics_report_per_tenant_counters() {
        let adm = Admission::new(cfg(1, 1, 1));
        let Decision::Admit(t) = adm.admit("a", false, |_| true) else {
            panic!()
        };
        assert!(matches!(
            adm.admit("b", false, |_| true),
            Decision::Shed { .. }
        ));
        drop(t);
        let d = adm.diagnostics();
        assert_eq!(d.estimator, "admission");
        let get = |k: &str| d.details.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
        assert_eq!(get("global.accepted"), Some(1.0));
        assert_eq!(get("global.shed"), Some(1.0));
        assert_eq!(get("a.accepted"), Some(1.0));
        assert_eq!(get("b.shed"), Some(1.0));
    }
}
