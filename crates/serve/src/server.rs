//! The accept loop and per-connection workers.
//!
//! Plain `std::net`: a bound [`std::net::TcpListener`], one accept
//! thread, and one worker thread per connection (capped by
//! [`ServeConfig::max_connections`]; excess connections are shed at
//! accept time with a `SHED RETRY AFTER` line). Statements execute on
//! the connection's own thread through
//! [`mlss_db::Session::execute_as`], so scheduling fairness between
//! tenants is the session scheduler's fair-share policy, and admission
//! ([`crate::Admission`]) bounds how many connection threads execute at
//! once.

use crate::admission::{Admission, AdmissionConfig, Decision};
use mlss_core::scheduler::{QueryId, QueryStatus};
use mlss_db::session::Session;
use mlss_db::sql::ExecResult;
use mlss_db::DbError;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`"127.0.0.1:0"` picks an ephemeral port).
    pub addr: String,
    /// Concurrent connections; excess accepts are shed and closed.
    pub max_connections: usize,
    /// In-flight statement caps and ASYNC quotas.
    pub admission: AdmissionConfig,
    /// Pre-registered tenants and their fair-share weights.
    pub tenants: Vec<(String, f64)>,
    /// Weight granted to tenants that are not pre-registered. `None`
    /// rejects them at `HELLO` — the allowlist becomes the
    /// authentication boundary.
    pub default_weight: Option<f64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 256,
            admission: AdmissionConfig::default(),
            tenants: Vec::new(),
            default_weight: Some(1.0),
        }
    }
}

/// A running server. Dropping it stops the accept loop; connection
/// threads finish with their clients.
pub struct Server {
    addr: SocketAddr,
    admission: Arc<Admission>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `cfg.addr`, register `cfg.tenants`' weights and the
    /// `admission` diagnostics block on the session, and start serving.
    pub fn start(session: Arc<Session>, cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        for (name, weight) in &cfg.tenants {
            session.set_tenant_weight(name, *weight);
        }
        let admission = Admission::new(cfg.admission.clone());
        {
            let adm = Arc::clone(&admission);
            session.add_diagnostics_source(Arc::new(move || adm.diagnostics()));
        }
        let stop = Arc::new(AtomicBool::new(false));
        let live = Arc::new(AtomicUsize::new(0));
        let accept = {
            let stop = Arc::clone(&stop);
            let admission = Arc::clone(&admission);
            let registered: Arc<Vec<String>> =
                Arc::new(cfg.tenants.iter().map(|(n, _)| n.clone()).collect());
            let default_weight = cfg.default_weight;
            let max_connections = cfg.max_connections;
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // Line-oriented request/response: Nagle + delayed
                    // ACK would add ~40ms per turn, serializing clients.
                    let _ = stream.set_nodelay(true);
                    if live.load(Ordering::SeqCst) >= max_connections {
                        let mut s = stream;
                        let _ = s.write_all(b"SHED RETRY AFTER 1\n");
                        continue;
                    }
                    live.fetch_add(1, Ordering::SeqCst);
                    let session = Arc::clone(&session);
                    let admission = Arc::clone(&admission);
                    let registered = Arc::clone(&registered);
                    let live = Arc::clone(&live);
                    std::thread::spawn(move || {
                        let _ = handle(&session, &admission, &registered, default_weight, stream);
                        live.fetch_sub(1, Ordering::SeqCst);
                    });
                }
            })
        };
        Ok(Server {
            addr,
            admission,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's admission ledger (counters for tests/monitoring).
    pub fn admission(&self) -> &Arc<Admission> {
        &self.admission
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// Does this statement request ASYNC scheduling? The dialect keyword is
/// statement-final (an optional `;` aside), so a suffix check suffices —
/// the statement still parses through the one dialect parser; this only
/// decides which admission caps apply *before* doing any work.
fn wants_async(stmt: &str) -> bool {
    stmt.trim_end_matches(';')
        .trim_end()
        .to_ascii_uppercase()
        .ends_with(" ASYNC")
}

fn one_line(msg: &str) -> String {
    msg.replace('\n', "; ")
}

fn write_line(out: &mut TcpStream, line: &str) -> std::io::Result<()> {
    out.write_all(line.as_bytes())?;
    out.write_all(b"\n")
}

/// Stream an [`ExecResult`] as `COLS`/`ROW` lines plus a terminator.
fn write_result(out: &mut TcpStream, res: &ExecResult) -> std::io::Result<()> {
    match res {
        ExecResult::Rows { columns, rows } => {
            write_line(out, &format!("COLS {}", columns.join("\t")))?;
            for row in rows {
                let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
                write_line(out, &format!("ROW {}", cells.join("\t")))?;
            }
            write_line(out, &format!("OK {}", rows.len()))
        }
        ExecResult::Affected(n) => write_line(out, &format!("OK affected {n}")),
        ExecResult::Ok => write_line(out, "OK done"),
    }
}

fn handle(
    session: &Arc<Session>,
    admission: &Arc<Admission>,
    registered: &[String],
    default_weight: Option<f64>,
    stream: TcpStream,
) -> std::io::Result<()> {
    let mut out = stream.try_clone()?;
    let reader = BufReader::new(stream);
    let mut tenant: Option<String> = None;
    for line in reader.lines() {
        let line = line?;
        let req = line.trim();
        if req.is_empty() {
            continue;
        }
        let upper_head = req
            .split_whitespace()
            .next()
            .unwrap_or("")
            .to_ascii_uppercase();
        match upper_head.as_str() {
            "HELLO" => {
                let name = req[5..].trim();
                if name.is_empty()
                    || !name
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
                {
                    write_line(&mut out, "ERR HELLO needs a tenant name ([A-Za-z0-9_-]+)")?;
                    continue;
                }
                let known = registered.iter().any(|r| r == name);
                if !known {
                    match default_weight {
                        Some(w) => {
                            // First sight of an ad-hoc tenant: register it
                            // at the default weight (pre-registered
                            // weights are never overwritten here).
                            let already = session
                                .scheduler()
                                .tenant_stats()
                                .iter()
                                .any(|t| t.name == name);
                            if !already {
                                session.set_tenant_weight(name, w);
                            }
                        }
                        None => {
                            write_line(&mut out, &format!("ERR unknown tenant '{name}'"))?;
                            continue;
                        }
                    }
                }
                let weight = session
                    .scheduler()
                    .tenant_stats()
                    .iter()
                    .find(|t| t.name == name)
                    .map(|t| t.weight)
                    .unwrap_or(1.0);
                tenant = Some(name.to_string());
                write_line(&mut out, &format!("OK hello {name} weight={weight}"))?;
            }
            "PING" => write_line(&mut out, "OK pong")?,
            "QUIT" => {
                write_line(&mut out, "OK bye")?;
                return Ok(());
            }
            _ => {
                let Some(tenant) = tenant.as_deref() else {
                    write_line(&mut out, "ERR handshake required: HELLO <tenant>")?;
                    continue;
                };
                if upper_head == "WAIT" {
                    let id = req[4..].trim().parse::<QueryId>().ok();
                    match id.map(|id| session.wait(id)) {
                        Some(Ok(Some(QueryStatus::Done(est)))) => {
                            write_line(&mut out, &format!("OK done {}", est.tau))?
                        }
                        Some(Ok(Some(status))) => {
                            write_line(&mut out, &format!("ERR query ended {status:?}"))?
                        }
                        Some(Ok(None)) => write_line(&mut out, "ERR unknown query id")?,
                        Some(Err(e)) => {
                            write_line(&mut out, &format!("ERR {}", one_line(&e.to_string())))?
                        }
                        None => write_line(&mut out, "ERR WAIT needs a numeric query id")?,
                    }
                    continue;
                }
                let is_async = wants_async(req);
                let decision = admission.admit(tenant, is_async, |id| {
                    session.poll(id).is_none_or(|s| s.is_terminal())
                });
                match decision {
                    Decision::Shed { retry_after } => {
                        write_line(&mut out, &format!("SHED RETRY AFTER {retry_after}"))?;
                    }
                    Decision::Admit(ticket) => {
                        let res = session.execute_as(Some(tenant), req);
                        drop(ticket);
                        match res {
                            Ok(res) => {
                                // An ASYNC submission returns the single
                                // `query_id` column: charge it against
                                // the tenant's outstanding quota.
                                if let ExecResult::Rows { columns, rows } = &res {
                                    if columns.len() == 1 && columns[0] == "query_id" {
                                        if let Some(id) = rows
                                            .first()
                                            .and_then(|r| r.first())
                                            .and_then(|v| v.as_i64())
                                        {
                                            admission.note_async(tenant, id as QueryId);
                                        }
                                    }
                                }
                                write_result(&mut out, &res)?;
                            }
                            Err(DbError::Spec(e)) => {
                                write_line(&mut out, &format!("ERR {}", one_line(&e.to_string())))?
                            }
                            Err(e) => {
                                write_line(&mut out, &format!("ERR {}", one_line(&e.to_string())))?
                            }
                        }
                    }
                }
            }
        }
        out.flush()?;
    }
    Ok(())
}
