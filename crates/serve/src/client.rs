//! A minimal blocking protocol client, shared by the `load_bench`
//! harness and `sql_shell --connect`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// One response from the server (everything up to a terminator line).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `COLS`/`ROW` lines followed by `OK <n>`.
    Rows {
        /// Column names.
        columns: Vec<String>,
        /// Row cells, pre-formatted by the server.
        rows: Vec<Vec<String>>,
    },
    /// A bare `OK …` terminator (affected counts, acks, WAIT results);
    /// carries the text after `OK`.
    Ok(String),
    /// `ERR <message>`.
    Err(String),
    /// `SHED RETRY AFTER <seconds>` — the request was not executed.
    Shed {
        /// Suggested back-off in seconds.
        retry_after: u64,
    },
}

impl Response {
    /// Was the request admitted and successful?
    pub fn is_ok(&self) -> bool {
        matches!(self, Response::Rows { .. } | Response::Ok(_))
    }
}

/// A connected, handshaken protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to `addr` and handshake as `tenant`. Fails if the server
    /// rejects the tenant (strict allowlists) or sheds the connection.
    pub fn connect(addr: &str, tenant: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        let mut client = Client {
            reader: BufReader::new(stream),
            writer,
        };
        match client.request(&format!("HELLO {tenant}"))? {
            Response::Ok(_) => Ok(client),
            Response::Err(e) => Err(std::io::Error::new(
                std::io::ErrorKind::PermissionDenied,
                format!("handshake rejected: {e}"),
            )),
            Response::Shed { retry_after } => Err(std::io::Error::new(
                std::io::ErrorKind::WouldBlock,
                format!("server shed the connection; retry after {retry_after}s"),
            )),
            Response::Rows { .. } => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "unexpected rows in handshake",
            )),
        }
    }

    /// Send one request line and read the full response.
    pub fn request(&mut self, line: &str) -> std::io::Result<Response> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut columns: Vec<String> = Vec::new();
        let mut rows: Vec<Vec<String>> = Vec::new();
        let mut saw_cols = false;
        loop {
            let mut buf = String::new();
            if self.reader.read_line(&mut buf)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed mid-response",
                ));
            }
            let line = buf.trim_end_matches(['\n', '\r']);
            if let Some(rest) = line.strip_prefix("COLS ") {
                columns = rest.split('\t').map(str::to_string).collect();
                saw_cols = true;
            } else if let Some(rest) = line.strip_prefix("ROW ") {
                rows.push(rest.split('\t').map(str::to_string).collect());
            } else if line == "ROW" {
                rows.push(Vec::new());
            } else if let Some(rest) = line.strip_prefix("OK") {
                if saw_cols {
                    return Ok(Response::Rows { columns, rows });
                }
                return Ok(Response::Ok(rest.trim().to_string()));
            } else if let Some(rest) = line.strip_prefix("ERR") {
                return Ok(Response::Err(rest.trim().to_string()));
            } else if let Some(rest) = line.strip_prefix("SHED RETRY AFTER") {
                let retry_after = rest.trim().parse().unwrap_or(1);
                return Ok(Response::Shed { retry_after });
            } else {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("unexpected protocol line: {line:?}"),
                ));
            }
        }
    }

    /// `PING` round-trip.
    pub fn ping(&mut self) -> std::io::Result<bool> {
        Ok(matches!(self.request("PING")?, Response::Ok(s) if s == "pong"))
    }

    /// Polite close (`QUIT`); dropping the client just closes the socket.
    pub fn quit(mut self) -> std::io::Result<()> {
        let _ = self.request("QUIT")?;
        Ok(())
    }
}
