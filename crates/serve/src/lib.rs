//! `mlss-serve`: the network face of a serving [`mlss_db::Session`].
//!
//! A [`Server`] accepts TCP connections (plain `std::net`, no async
//! runtime) and speaks a newline-delimited text protocol whose statement
//! language **is** the session's statement surface: plain SQL plus the
//! ESTIMATE dialect, dispatched through the one
//! [`mlss_db::dispatch::execute_spec`] path via
//! [`mlss_db::Session::execute_as`]. There is no second query language
//! and no server-side re-parse — a statement over a socket runs the
//! identical code a `Session::execute` call runs, so pinned-seed results
//! are bit-identical between the two.
//!
//! # Protocol
//!
//! Every request is one line, every response a short run of lines ending
//! in a terminator line. Terminators start with `OK`, `ERR`, or `SHED`.
//!
//! ```text
//! C: HELLO alpha                          # handshake: tenant identity
//! S: OK hello alpha weight=1
//! C: ESTIMATE DURABILITY OF walk(beta=6) WITHIN 50 USING srs TARGET RE 30%
//! S: COLS model\tmethod\ttau\t…
//! S: ROW walk\tsrs\t0.43…\t…
//! S: OK 1
//! C: ESTIMATE … ASYNC
//! S: COLS query_id
//! S: ROW 7
//! S: OK 1
//! C: WAIT 7
//! S: OK done 0.43…
//! C: SELECT COUNT(*) FROM results
//! S: COLS count
//! S: ROW 2
//! S: OK 1
//! C: QUIT
//! S: OK bye
//! ```
//!
//! Row cells are tab-separated and formatted exactly as the `sql_shell`
//! example formats them, so a shell pointed at a server prints
//! row-for-row what an embedded shell prints.
//!
//! # Tenancy, fairness, admission
//!
//! The `HELLO <tenant>` handshake is the authentication step: with
//! [`ServeConfig::default_weight`] unset, only tenants pre-registered in
//! [`ServeConfig::tenants`] may connect. The tenant identity is stamped
//! into every statement's [`mlss_core::spec::ExecOptions`] — it is not
//! part of the statement text — and from there:
//!
//! * the scheduler charges attained service to the **tenant** and picks
//!   the lowest `attained/weight` next (weighted fair sharing across
//!   tenants, not across queries);
//! * the query's `results` row carries the tenant in its `tenant`
//!   column;
//! * `SHOW DIAGNOSTICS` grows `tenants` (per-tenant fair-share
//!   accounts) and `admission` (accept/shed counters) blocks.
//!
//! Under overload the server sheds instead of queueing without bound:
//! a global in-flight cap, a per-tenant in-flight cap, and a per-tenant
//! quota on outstanding `ASYNC` queries each turn an excess request into
//! a one-line `SHED RETRY AFTER <seconds>` response ([`admission`]).
//! Shedding keeps accepted-request latency bounded — the `load_bench`
//! harness in `mlss-bench` measures exactly that.

pub mod admission;
pub mod client;
pub mod server;

pub use admission::{Admission, AdmissionConfig, Decision};
pub use client::{Client, Response};
pub use server::{ServeConfig, Server};
