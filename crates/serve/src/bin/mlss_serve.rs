//! `mlss_serve` — stand-alone server binary over a fresh (or WAL-backed)
//! serving session.
//!
//! ```text
//! mlss_serve --listen 127.0.0.1:7878 \
//!     --tenant alpha:1 --tenant beta:1 --tenant gold:4 \
//!     --global-cap 32 --tenant-cap 8 --async-quota 4
//! ```
//!
//! Prints `listening on <addr>` once bound (the line CI and scripts wait
//! for), then serves until killed. `--wal <dir>` opens a WAL-backed
//! session journaling to that directory; `--strict-tenants` rejects any
//! tenant not named by a `--tenant` flag at the `HELLO` handshake.

use mlss_db::{Session, SessionConfig};
use mlss_serve::{ServeConfig, Server};
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: mlss_serve [--listen ADDR] [--tenant NAME:WEIGHT]... \
         [--default-weight W | --strict-tenants] [--max-connections N] \
         [--global-cap N] [--tenant-cap N] [--async-quota N] \
         [--workers N] [--seed N] [--wal DIR]"
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:7878".to_string(),
        ..ServeConfig::default()
    };
    let mut session_cfg = SessionConfig {
        seed: 42,
        ..SessionConfig::default()
    };
    let mut wal_dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--listen" => cfg.addr = val("--listen"),
            "--tenant" => {
                let spec = val("--tenant");
                let (name, weight) = match spec.split_once(':') {
                    Some((n, w)) => (
                        n.to_string(),
                        w.parse::<f64>().unwrap_or_else(|_| {
                            eprintln!("bad weight in --tenant {spec}");
                            usage()
                        }),
                    ),
                    None => (spec, 1.0),
                };
                cfg.tenants.push((name, weight));
            }
            "--default-weight" => {
                cfg.default_weight =
                    Some(val("--default-weight").parse().unwrap_or_else(|_| usage()))
            }
            "--strict-tenants" => cfg.default_weight = None,
            "--max-connections" => {
                cfg.max_connections = val("--max-connections").parse().unwrap_or_else(|_| usage())
            }
            "--global-cap" => {
                cfg.admission.global_inflight_cap =
                    val("--global-cap").parse().unwrap_or_else(|_| usage())
            }
            "--tenant-cap" => {
                cfg.admission.tenant_inflight_cap =
                    val("--tenant-cap").parse().unwrap_or_else(|_| usage())
            }
            "--async-quota" => {
                cfg.admission.tenant_async_quota =
                    val("--async-quota").parse().unwrap_or_else(|_| usage())
            }
            "--workers" => {
                session_cfg.workers = val("--workers").parse().unwrap_or_else(|_| usage())
            }
            "--seed" => session_cfg.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--wal" => wal_dir = Some(val("--wal")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }

    let session = match wal_dir {
        Some(dir) => Session::open(std::path::PathBuf::from(dir), session_cfg),
        None => Session::new(session_cfg),
    }
    .expect("open session");
    for (id, status) in session
        .wait_recovered()
        .expect("recover interrupted queries")
    {
        eprintln!("recovered query {id}: {status:?}");
    }

    let server = Server::start(Arc::new(session), cfg).expect("bind listener");
    println!("listening on {}", server.addr());
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    // Serve until killed.
    loop {
        std::thread::park();
    }
}
