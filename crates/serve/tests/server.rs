//! End-to-end protocol tests: handshake auth, admission control,
//! per-tenant provenance, fair sharing, and socket-vs-embedded
//! bit-identity — all against an in-process server on an ephemeral port.

use mlss_db::{Session, SessionConfig};
use mlss_serve::{AdmissionConfig, Client, Response, ServeConfig, Server};
use std::sync::Arc;

fn session(workers: usize, slice_budget: u64) -> Arc<Session> {
    Arc::new(
        Session::new(SessionConfig {
            workers,
            slice_budget,
            seed: 42,
            ..SessionConfig::default()
        })
        .unwrap(),
    )
}

fn start(session: &Arc<Session>, cfg: ServeConfig) -> Server {
    Server::start(Arc::clone(session), cfg).expect("bind ephemeral port")
}

#[test]
fn handshake_gates_statements_and_strict_mode_rejects_unknown_tenants() {
    let s = session(1, 8_192);
    let server = start(
        &s,
        ServeConfig {
            tenants: vec![("alpha".into(), 1.0)],
            default_weight: None, // strict: allowlist is the auth boundary
            ..ServeConfig::default()
        },
    );
    let addr = server.addr().to_string();

    // No HELLO: statements are refused.
    {
        use std::io::{BufRead, BufReader, Write};
        let mut raw = std::net::TcpStream::connect(&addr).unwrap();
        raw.write_all(b"SELECT COUNT(*) FROM results\n").unwrap();
        let mut line = String::new();
        BufReader::new(raw.try_clone().unwrap())
            .read_line(&mut line)
            .unwrap();
        assert!(line.starts_with("ERR handshake required"), "got {line:?}");
    }
    // Unknown tenant: rejected at HELLO.
    let denied = Client::connect(&addr, "mallory");
    assert!(denied.is_err(), "strict mode must reject unknown tenants");
    // Registered tenant: full round trip.
    let mut c = Client::connect(&addr, "alpha").unwrap();
    assert!(c.ping().unwrap());
    match c.request("SHOW MODELS").unwrap() {
        Response::Rows { columns, rows } => {
            assert_eq!(columns[0], "model");
            assert!(rows.len() >= 8);
        }
        other => panic!("SHOW MODELS over the wire: {other:?}"),
    }
    c.quit().unwrap();
}

#[test]
fn socket_statement_is_bit_identical_to_embedded_execution() {
    let stmt = "ESTIMATE DURABILITY OF walk(beta=6) WITHIN 50 USING srs \
                TARGET RE 30% WITH (seed=7)";
    // Embedded reference run.
    let embedded = session(2, 8_192);
    let reference = match embedded.execute(stmt).unwrap() {
        mlss_db::ExecResult::Rows { rows, .. } => rows,
        other => panic!("estimate returned {other:?}"),
    };
    // The same pinned statement over a socket, as a tenant.
    let served = session(2, 8_192);
    let server = start(&served, ServeConfig::default());
    let mut c = Client::connect(&server.addr().to_string(), "acme").unwrap();
    let wire_rows = match c.request(stmt).unwrap() {
        Response::Rows { rows, .. } => rows,
        other => panic!("socket estimate returned {other:?}"),
    };
    // The inline estimate row matches cell-for-cell except wall-clock
    // millis (index 6): tau, variance, steps, n_roots are bit-identical
    // because both paths dispatch the same spec with the same seed.
    assert_eq!(wire_rows.len(), 1);
    let embedded_cells: Vec<String> = reference[0].iter().map(|v| format!("{v}")).collect();
    for (i, (wire, emb)) in wire_rows[0].iter().zip(&embedded_cells).enumerate() {
        if i == 6 {
            continue; // millis: wall clock
        }
        assert_eq!(wire, emb, "cell {i} differs");
    }
    // And the recorded `results` rows agree everywhere except millis
    // and the tenant column (the socket run carries its tenant; the
    // embedded run is tenantless).
    let row_of = |s: &Session| {
        s.db()
            .with_table("results", |t| {
                t.scan().map(|r| r.to_vec()).collect::<Vec<_>>()
            })
            .unwrap()
    };
    let (er, sr) = (row_of(&embedded), row_of(&served));
    assert_eq!(er.len(), 1);
    assert_eq!(sr.len(), 1);
    for i in 0..er[0].len() {
        if i == 8 || i == 11 {
            continue; // millis, tenant
        }
        assert_eq!(er[0][i], sr[0][i], "results column {i} differs");
    }
    assert_eq!(er[0][11].as_str(), Some("-"));
    assert_eq!(sr[0][11].as_str(), Some("acme"));
}

#[test]
fn async_quota_sheds_with_retry_after_and_recovers() {
    let s = session(1, 2_048);
    let server = start(
        &s,
        ServeConfig {
            admission: AdmissionConfig {
                global_inflight_cap: 64,
                tenant_inflight_cap: 16,
                tenant_async_quota: 1,
            },
            ..ServeConfig::default()
        },
    );
    let mut c = Client::connect(&server.addr().to_string(), "acme").unwrap();
    // A long-running ASYNC fills the quota of 1 (the 0.1% target keeps
    // it in flight for the whole test; it is cancelled, never awaited)…
    let long = "ESTIMATE DURABILITY OF walk(beta=6) WITHIN 60 USING srs \
                TARGET RE 0.1% WITH (seed=3) ASYNC";
    let id = match c.request(long).unwrap() {
        Response::Rows { rows, .. } => rows[0][0].parse::<u64>().unwrap(),
        other => panic!("async submit returned {other:?}"),
    };
    // …so the next ASYNC is shed, with a retry hint ≥ 1s.
    match c.request(long).unwrap() {
        Response::Shed { retry_after } => assert!((1..=30).contains(&retry_after)),
        other => panic!("over-quota async must shed, got {other:?}"),
    }
    // Sync statements are not quota-bound.
    assert!(c.request("SELECT COUNT(*) FROM models").unwrap().is_ok());
    // Once the outstanding query is terminal, the quota slot frees.
    assert!(s.cancel(id as mlss_core::scheduler::QueryId) || s.poll(id as _).is_some());
    while !s.poll(id as _).map(|st| st.is_terminal()).unwrap_or(true) {
        std::thread::yield_now();
    }
    match c.request(long).unwrap() {
        Response::Rows { rows, .. } => {
            let id2 = rows[0][0].parse::<u64>().unwrap();
            s.cancel(id2 as _);
        }
        other => panic!("quota must recover after completion, got {other:?}"),
    }
}

#[test]
fn overloaded_server_sheds_instead_of_queueing() {
    let s = session(1, 8_192);
    let server = start(
        &s,
        ServeConfig {
            admission: AdmissionConfig {
                global_inflight_cap: 0, // never admit: every statement sheds
                tenant_inflight_cap: 16,
                tenant_async_quota: 8,
            },
            ..ServeConfig::default()
        },
    );
    let mut c = Client::connect(&server.addr().to_string(), "acme").unwrap();
    match c.request("SELECT COUNT(*) FROM models").unwrap() {
        Response::Shed { retry_after } => assert!(retry_after >= 1),
        other => panic!("zero cap must shed, got {other:?}"),
    }
    assert_eq!(server.admission().shed_total(), 1);
}

#[test]
fn equal_weight_tenants_attain_service_within_bound_over_sockets() {
    // One worker, small slices: a beta query races an alpha flood. The
    // scheduler's fair-share policy must interleave the two tenants'
    // attained service rather than letting the flood starve beta.
    let s = session(1, 4_096);
    let server = start(&s, ServeConfig::default());
    let addr = server.addr().to_string();
    let mut beta = Client::connect(&addr, "beta").unwrap();
    let mut alpha = Client::connect(&addr, "alpha").unwrap();
    let submit = |c: &mut Client, re: &str, seed: u64| -> u64 {
        let stmt = format!(
            "ESTIMATE DURABILITY OF walk(beta=6) WITHIN 60 USING srs \
             TARGET RE {re} WITH (seed={seed}) ASYNC"
        );
        match c.request(&stmt).unwrap() {
            Response::Rows { rows, .. } => rows[0][0].parse().unwrap(),
            other => panic!("submit returned {other:?}"),
        }
    };
    // Beta's single query first (bounded head start), then alpha's
    // 4-query flood of the same length. Tenant-fair sharing gives beta
    // half the service, so its query finishes when each flood query is
    // only ~1/4 done; query-fair (the legacy least-attained-per-query
    // policy) would finish all five together. The discriminating
    // observable — robust to the scheduler racing ahead while WAIT's
    // response travels back — is how much of the flood is still running
    // when beta's WAIT returns. (The exact ≤1.5x attained-service ratio
    // is pinned deterministically in the scheduler's own tests.)
    let beta_id = submit(&mut beta, "1%", 11);
    let flood: Vec<u64> = (0..4).map(|i| submit(&mut alpha, "1%", 20 + i)).collect();
    match beta.request(&format!("WAIT {beta_id}")).unwrap() {
        Response::Ok(s) => assert!(s.starts_with("done")),
        other => panic!("WAIT returned {other:?}"),
    }
    let terminal_flood = flood
        .iter()
        .filter(|&&id| s.poll(id as _).map(|st| st.is_terminal()).unwrap_or(true))
        .count();
    assert!(
        terminal_flood <= 1,
        "beta must finish while the flood is mostly in flight \
         (terminal flood queries: {terminal_flood}/4)"
    );
    let stats = s.scheduler().tenant_stats();
    let att = |name: &str| {
        stats
            .iter()
            .find(|t| t.name == name)
            .map(|t| t.attained_steps)
            .unwrap_or(0)
    };
    assert!(att("beta") > 0, "beta attained nothing");
    assert!(att("alpha") > 0, "alpha attained nothing while beta ran");
    // Clean up the flood so the session tears down fast.
    for id in flood {
        s.cancel(id as _);
    }
}

#[test]
fn show_diagnostics_surfaces_tenants_and_admission_blocks() {
    let s = session(2, 8_192);
    let server = start(&s, ServeConfig::default());
    let mut c = Client::connect(&server.addr().to_string(), "acme").unwrap();
    assert!(c
        .request("ESTIMATE DURABILITY OF walk(beta=6) WITHIN 50 USING srs TARGET RE 30%")
        .unwrap()
        .is_ok());
    let rows = match c.request("SHOW DIAGNOSTICS").unwrap() {
        Response::Rows { rows, .. } => rows,
        other => panic!("SHOW DIAGNOSTICS returned {other:?}"),
    };
    let has =
        |component: &str, counter: &str| rows.iter().any(|r| r[0] == component && r[1] == counter);
    assert!(has("tenants", "acme.weight"), "tenants block missing");
    assert!(has("tenants", "acme.attained_steps"));
    assert!(
        has("admission", "global.accepted"),
        "admission block missing"
    );
    assert!(has("admission", "acme.accepted"));
}
