//! Compound-Poisson process (§6, model (2)).
//!
//! `U(t) = u + c·t − S(t)` where `S(t)` is a compound Poisson process with
//! jump intensity λ and jump distribution `F` — the classical
//! Cramér–Lundberg surplus process of risk theory: `u` is the initial
//! surplus, `c` the premium income per unit time, and `S(t)` the aggregate
//! claims. One invocation of `g` advances one unit of time: add `c`,
//! subtract `Poisson(λ)`-many i.i.d. jumps.

use mlss_core::model::{SimulationModel, Time};
use mlss_core::rng::SimRng;
use rand::RngExt;
use rand_distr::{Distribution, Poisson};
use serde::{Deserialize, Serialize};

/// Jump (claim) size distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum JumpDistribution {
    /// Uniform on `[lo, hi)` — the paper's `Uni(5, 10)`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Exponential with the given mean.
    Exponential {
        /// Mean jump size.
        mean: f64,
    },
    /// Degenerate constant jump.
    Constant {
        /// The jump size.
        value: f64,
    },
}

impl JumpDistribution {
    /// Sample one jump.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        match *self {
            JumpDistribution::Uniform { lo, hi } => lo + (hi - lo) * rng.random::<f64>(),
            JumpDistribution::Exponential { mean } => -mean * (1.0 - rng.random::<f64>()).ln(),
            JumpDistribution::Constant { value } => value,
        }
    }

    /// Mean jump size `E[J]`.
    pub fn mean(&self) -> f64 {
        match *self {
            JumpDistribution::Uniform { lo, hi } => (lo + hi) / 2.0,
            JumpDistribution::Exponential { mean } => mean,
            JumpDistribution::Constant { value } => value,
        }
    }

    /// Second moment `E[J²]`.
    pub fn second_moment(&self) -> f64 {
        match *self {
            JumpDistribution::Uniform { lo, hi } => (hi * hi + hi * lo + lo * lo) / 3.0,
            JumpDistribution::Exponential { mean } => 2.0 * mean * mean,
            JumpDistribution::Constant { value } => value * value,
        }
    }
}

/// The compound-Poisson surplus model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CompoundPoisson {
    /// Initial surplus `u`.
    pub initial: f64,
    /// Premium income `c` per unit time.
    pub premium: f64,
    /// Jump intensity λ (expected jumps per unit time).
    pub intensity: f64,
    /// Jump size distribution `F`.
    pub jumps: JumpDistribution,
}

impl CompoundPoisson {
    /// New process; `intensity` must be positive and finite.
    pub fn new(initial: f64, premium: f64, intensity: f64, jumps: JumpDistribution) -> Self {
        assert!(
            intensity.is_finite() && intensity > 0.0,
            "jump intensity must be positive"
        );
        assert!(initial.is_finite() && premium.is_finite());
        Self {
            initial,
            premium,
            intensity,
            jumps,
        }
    }

    /// The paper's experimental setting: `u = 15`, `c = 4.5`, `λ = 0.8`,
    /// jumps `Uni(5, 10)`.
    pub fn paper_default() -> Self {
        Self::new(
            15.0,
            4.5,
            0.8,
            JumpDistribution::Uniform { lo: 5.0, hi: 10.0 },
        )
    }

    /// The zero-drift variant used by the volatile experiments (§6.2):
    /// premium exactly offsets expected claims (`c = λ·E[J] = 6`), so the
    /// surplus hovers near its start and late impulse jumps matter.
    /// (With the paper-default negative drift, paths sit ~700 below the
    /// start by `t = 0.8·s` and no late impulse could ever reach a
    /// threshold — see DESIGN.md, substitution 4.)
    pub fn zero_drift_default() -> Self {
        Self::new(
            15.0,
            6.0,
            0.8,
            JumpDistribution::Uniform { lo: 5.0, hi: 10.0 },
        )
    }

    /// Per-unit-time drift `c − λ·E[J]`.
    pub fn drift(&self) -> f64 {
        self.premium - self.intensity * self.jumps.mean()
    }

    /// Per-unit-time variance of the increment, `λ·E[J²]`.
    pub fn step_variance(&self) -> f64 {
        self.intensity * self.jumps.second_moment()
    }
}

impl SimulationModel for CompoundPoisson {
    type State = f64;

    fn initial_state(&self) -> f64 {
        self.initial
    }

    fn step(&self, state: &f64, _t: Time, rng: &mut SimRng) -> f64 {
        let pois = Poisson::new(self.intensity).expect("validated intensity");
        let n = pois.sample(rng) as u64;
        let mut u = state + self.premium;
        for _ in 0..n {
            u -= self.jumps.sample(rng);
        }
        u
    }

    /// Native batch kernel: the surplus lanes are a contiguous `f64`
    /// array, the Poisson sampler is constructed once per cohort step
    /// instead of once per path, and updates happen in place. Per-lane
    /// draws are identical to the scalar `step`.
    fn step_batch(&self, lanes: &mut [f64], _ts: &[Time], rngs: &mut [SimRng], alive: &[usize]) {
        let pois = Poisson::new(self.intensity).expect("validated intensity");
        for &i in alive {
            let rng = &mut rngs[i];
            let n = pois.sample(rng) as u64;
            let mut u = lanes[i] + self.premium;
            for _ in 0..n {
                u -= self.jumps.sample(rng);
            }
            lanes[i] = u;
        }
    }
}

/// Score for CPP durability queries: the surplus value itself.
pub fn surplus_score(state: &f64) -> f64 {
    *state
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlss_core::model::simulate_path;
    use mlss_core::rng::rng_from_seed;

    #[test]
    fn zero_drift_variant_has_zero_drift() {
        assert!(CompoundPoisson::zero_drift_default().drift().abs() < 1e-12);
    }

    #[test]
    fn paper_default_drift_is_negative() {
        let m = CompoundPoisson::paper_default();
        assert!((m.drift() - (4.5 - 0.8 * 7.5)).abs() < 1e-12);
        assert!(m.drift() < 0.0);
    }

    #[test]
    fn jump_moments() {
        let u = JumpDistribution::Uniform { lo: 5.0, hi: 10.0 };
        assert!((u.mean() - 7.5).abs() < 1e-12);
        assert!((u.second_moment() - (100.0 + 50.0 + 25.0) / 3.0).abs() < 1e-12);
        let e = JumpDistribution::Exponential { mean: 3.0 };
        assert!((e.second_moment() - 18.0).abs() < 1e-12);
        let c = JumpDistribution::Constant { value: 2.0 };
        assert_eq!(c.mean(), 2.0);
        assert_eq!(c.second_moment(), 4.0);
    }

    #[test]
    fn sample_respects_uniform_bounds() {
        let u = JumpDistribution::Uniform { lo: 5.0, hi: 10.0 };
        let mut rng = rng_from_seed(3);
        for _ in 0..1000 {
            let x = u.sample(&mut rng);
            assert!((5.0..10.0).contains(&x));
        }
    }

    #[test]
    fn empirical_drift_matches_theory() {
        let m = CompoundPoisson::paper_default();
        let horizon = 5000;
        let p = simulate_path(&m, horizon, &mut rng_from_seed(7));
        let final_u = *p.last().unwrap();
        let expected = m.initial + m.drift() * horizon as f64;
        let sd = (m.step_variance() * horizon as f64).sqrt();
        assert!(
            (final_u - expected).abs() < 4.0 * sd,
            "final {final_u} vs expected {expected} ± {sd}"
        );
    }

    #[test]
    fn paths_are_reproducible() {
        let m = CompoundPoisson::paper_default();
        let a = simulate_path(&m, 200, &mut rng_from_seed(9));
        let b = simulate_path(&m, 200, &mut rng_from_seed(9));
        assert_eq!(a.states, b.states);
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_intensity() {
        CompoundPoisson::new(0.0, 1.0, 0.0, JumpDistribution::Constant { value: 1.0 });
    }
}
