//! Compound-Poisson process (§6, model (2)).
//!
//! `U(t) = u + c·t − S(t)` where `S(t)` is a compound Poisson process with
//! jump intensity λ and jump distribution `F` — the classical
//! Cramér–Lundberg surplus process of risk theory: `u` is the initial
//! surplus, `c` the premium income per unit time, and `S(t)` the aggregate
//! claims. One invocation of `g` advances one unit of time: add `c`,
//! subtract `Poisson(λ)`-many i.i.d. jumps.

use mlss_core::is::TiltableModel;
use mlss_core::model::{SimulationModel, Time};
use mlss_core::rng::SimRng;
use mlss_core::simd::{self, chacha, vmath};
use rand::RngCore;
use rand_distr::{Distribution, Poisson};
use serde::{Deserialize, Serialize};

/// Jump (claim) size distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum JumpDistribution {
    /// Uniform on `[lo, hi)` — the paper's `Uni(5, 10)`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Exponential with the given mean.
    Exponential {
        /// Mean jump size.
        mean: f64,
    },
    /// Degenerate constant jump.
    Constant {
        /// The jump size.
        value: f64,
    },
}

impl JumpDistribution {
    /// Sample one jump from a raw-word source. This single function is
    /// the jump sampler for *both* the scalar `step` (words drawn
    /// straight from the RNG) and the batched kernels (words pulled
    /// through the staged-refill pipeline), which is what keeps the two
    /// paths bit-identical — including the `vmath::ln` the exponential
    /// tail uses.
    #[inline]
    fn sample_from(&self, mut draw: impl FnMut() -> u64) -> f64 {
        match *self {
            JumpDistribution::Uniform { lo, hi } => lo + (hi - lo) * vmath::u01(draw()),
            JumpDistribution::Exponential { mean } => -mean * vmath::ln(1.0 - vmath::u01(draw())),
            JumpDistribution::Constant { value } => value,
        }
    }

    /// Sample one jump.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        self.sample_from(|| rng.next_u64())
    }

    /// Mean jump size `E[J]`.
    pub fn mean(&self) -> f64 {
        match *self {
            JumpDistribution::Uniform { lo, hi } => (lo + hi) / 2.0,
            JumpDistribution::Exponential { mean } => mean,
            JumpDistribution::Constant { value } => value,
        }
    }

    /// Second moment `E[J²]`.
    pub fn second_moment(&self) -> f64 {
        match *self {
            JumpDistribution::Uniform { lo, hi } => (hi * hi + hi * lo + lo * lo) / 3.0,
            JumpDistribution::Exponential { mean } => 2.0 * mean * mean,
            JumpDistribution::Constant { value } => value * value,
        }
    }
}

/// The compound-Poisson surplus model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CompoundPoisson {
    /// Initial surplus `u`.
    pub initial: f64,
    /// Premium income `c` per unit time.
    pub premium: f64,
    /// Jump intensity λ (expected jumps per unit time).
    pub intensity: f64,
    /// Jump size distribution `F`.
    pub jumps: JumpDistribution,
}

impl CompoundPoisson {
    /// New process; `intensity` must be positive and finite.
    pub fn new(initial: f64, premium: f64, intensity: f64, jumps: JumpDistribution) -> Self {
        assert!(
            intensity.is_finite() && intensity > 0.0,
            "jump intensity must be positive"
        );
        assert!(initial.is_finite() && premium.is_finite());
        Self {
            initial,
            premium,
            intensity,
            jumps,
        }
    }

    /// The paper's experimental setting: `u = 15`, `c = 4.5`, `λ = 0.8`,
    /// jumps `Uni(5, 10)`.
    pub fn paper_default() -> Self {
        Self::new(
            15.0,
            4.5,
            0.8,
            JumpDistribution::Uniform { lo: 5.0, hi: 10.0 },
        )
    }

    /// The zero-drift variant used by the volatile experiments (§6.2):
    /// premium exactly offsets expected claims (`c = λ·E[J] = 6`), so the
    /// surplus hovers near its start and late impulse jumps matter.
    /// (With the paper-default negative drift, paths sit ~700 below the
    /// start by `t = 0.8·s` and no late impulse could ever reach a
    /// threshold — see DESIGN.md, substitution 4.)
    pub fn zero_drift_default() -> Self {
        Self::new(
            15.0,
            6.0,
            0.8,
            JumpDistribution::Uniform { lo: 5.0, hi: 10.0 },
        )
    }

    /// Per-unit-time drift `c − λ·E[J]`.
    pub fn drift(&self) -> f64 {
        self.premium - self.intensity * self.jumps.mean()
    }

    /// Per-unit-time variance of the increment, `λ·E[J²]`.
    pub fn step_variance(&self) -> f64 {
        self.intensity * self.jumps.second_moment()
    }
}

/// The cpp pipeline needs a wider cohort than the generic
/// [`simd::MIN_SIMD_COHORT`] before the staged multi-stream refills
/// amortize: draws per lane per step are data-dependent (Knuth loop +
/// jumps), so refill sets are small and irregular at narrow widths.
/// Below this, the scalar loop wins; results are identical either way.
const CPP_MIN_SIMD_COHORT: usize = 32;

/// When the cross-lane live-mask shrinks below this, the remaining long
/// tails finish on the scalar per-lane loop — a near-empty SIMD slice
/// costs more in staging than it saves.
const CPP_SCALAR_PEEL: usize = 4;

/// One `u64` for lane `i`: a pure load from the lane's persistent view
/// while it lasts; on exhaustion the consumption is committed
/// (`cursors[i]` becomes [`chacha::VIEW_COMMITTED`]) and this and future
/// draws take the mutating scalar-refill path — bit-identical either way
/// (a rare long Knuth/jump tail).
#[inline(always)]
fn lane_u64(
    rng: &mut SimRng,
    i: usize,
    views: &mut [[u32; chacha::VIEW_STRIDE]],
    view_ctr0: &mut [u64],
    view_staged: &mut [bool],
    cursors: &mut [u32],
) -> u64 {
    if cursors[i] != chacha::VIEW_COMMITTED {
        if let Some(w) = chacha::view_row_u64(&views[i], &mut cursors[i]) {
            return w;
        }
        chacha::commit_view(rng, i, views, view_ctr0, view_staged, cursors[i]);
        cursors[i] = chacha::VIEW_COMMITTED;
    }
    let mut none = None;
    chacha::draw_u64(rng, &mut none)
}

impl CompoundPoisson {
    /// The batched surplus update shared by the plain and tilted kernels,
    /// as masked cross-lane iteration: stage vectorized block refills
    /// through the per-lane pending cache (a block computed ahead of need
    /// is kept until consumed, so every SIMD compute is used), then run
    /// the Knuth product for *all live lanes together* — each round draws
    /// one factor per surviving lane, converts the whole cohort's words
    /// with the sliced `vmath` kernels, multiplies slice-wise, and
    /// retires lanes whose product fell to `limit`. Jump draws drain the
    /// same way: pass `p` pulls one jump from every lane with more than
    /// `p` jumps, so the `u01`/`ln` transforms always run over a dense
    /// slice. Long tails (a handful of survivors) peel to the scalar
    /// per-lane loop. Word consumption per lane is draw-for-draw the
    /// serial order (Knuth factors, then jump words) and the product is
    /// the replica of the `rand_distr` shim's small-λ path (`limit` is
    /// the same libm `exp` both paths evaluate, the factor mapping is the
    /// shim's `uniform_open01`), so results are bit-identical to the
    /// scalar `step` at every width and backend.
    /// `intensity` is the proposal's jump rate (tilted or not);
    /// `on_count` folds the per-lane Poisson count into tilt bookkeeping.
    /// A lane that outruns its staged block falls back to the scalar
    /// refill — bit-identical either way.
    fn batch_surplus(
        &self,
        intensity: f64,
        lanes: &mut [f64],
        rngs: &mut [SimRng],
        alive: &[usize],
        mut on_count: impl FnMut(usize, u64),
    ) {
        let limit = (-intensity).exp();
        simd::with_scratch(|sc| {
            // Sync the persistent per-lane views: rows carried over from
            // the previous step revalidate against their stream tags and
            // are reused as-is; only lanes that crossed a block boundary
            // (or were reseeded) get new bytes, with every needed next
            // block computed in one SIMD pass. All draws below are pure
            // loads against the rows, committed to the streams once at
            // the end.
            chacha::sync_views(rngs, alive, sc);
            let m = alive.len();
            let simd::KernelScratch {
                words,
                f1,
                f2,
                idxs,
                counts,
                views,
                view_ctr0,
                view_staged,
                cursors,
                ..
            } = sc;

            counts.clear();
            counts.resize(m, 0);
            // Grow-only: every entry below is written before read.
            if words.len() < m {
                words.resize(m, 0);
            }
            if f1.len() < m {
                f1.resize(m, 0.0);
            }
            if f2.len() < m {
                f2.resize(m, 0.0);
            }
            if idxs.len() < m {
                idxs.resize(m, 0);
            }

            // Phase 1 — cross-lane Knuth under a live-mask. The live set
            // is kept *dense*: `idxs[..n]` holds the surviving cohort
            // positions and `f2[..n]` their running products, compacted
            // branchlessly each round (an unpredictable keep/retire
            // branch per lane is exactly the mispredict tax the serial
            // loop pays; a masked write-cursor bump is not). Counts are
            // written unconditionally — a survivor's entry is simply
            // overwritten next round, so only its retiring round sticks.
            //
            // Round 0: every lane draws its initial factor. At step
            // start every cursor sits at most at `BLOCK_WORDS` (the
            // staged half is always present after `sync_views`), so the
            // draw cannot overrun the row — a tight unchecked load loop,
            // no fallback branch. The `min` only pins the bound for the
            // optimizer; it never clamps in practice.
            for (k, &i) in alive.iter().enumerate() {
                let c = (cursors[i] as usize).min(chacha::VIEW_STRIDE - 2);
                let row = &views[i];
                let lo = row[c] as u64;
                let hi = row[c + 1] as u64;
                cursors[i] = (c + 2) as u32;
                words[k] = (hi << 32) | lo;
            }
            vmath::open01_slice(&words[..m], &mut f1[..m]);
            let mut n = 0usize;
            for (k, &p) in f1[..m].iter().enumerate() {
                idxs[n] = k;
                f2[n] = p;
                n += (p > limit) as usize;
            }
            // Rounds r ≥ 1: one factor per survivor.
            let mut r = 0u64;
            while n > 0 {
                r += 1;
                if n < CPP_SCALAR_PEEL {
                    // Long tails: finish the few survivors serially.
                    for k in 0..n {
                        let j = idxs[k];
                        let i = alive[j];
                        let mut p = f2[k];
                        let mut c = counts[j];
                        while p > limit {
                            let w =
                                lane_u64(&mut rngs[i], i, views, view_ctr0, view_staged, cursors);
                            p *= vmath::open01(w);
                            c += 1;
                        }
                        counts[j] = c;
                    }
                    break;
                }
                if r < 8 {
                    // A survivor of round `r-1` has drawn `r` factors, so
                    // its cursor is at most `BLOCK_WORDS + 2r` — for
                    // r < 8 the next draw provably stays inside the row
                    // and the overrun branch is dead. Same unchecked
                    // load loop as round 0: no stream access at all.
                    for k in 0..n {
                        let i = alive[idxs[k]];
                        let c = (cursors[i] as usize).min(chacha::VIEW_STRIDE - 2);
                        let row = &views[i];
                        let lo = row[c] as u64;
                        let hi = row[c + 1] as u64;
                        cursors[i] = (c + 2) as u32;
                        words[k] = (hi << 32) | lo;
                    }
                } else {
                    for k in 0..n {
                        let i = alive[idxs[k]];
                        words[k] =
                            lane_u64(&mut rngs[i], i, views, view_ctr0, view_staged, cursors);
                    }
                }
                vmath::open01_slice(&words[..n], &mut f1[..n]);
                let mut w = 0usize;
                for k in 0..n {
                    let j = idxs[k];
                    let p = f2[k] * f1[k];
                    counts[j] = r;
                    idxs[w] = j;
                    f2[w] = p;
                    w += (p > limit) as usize;
                }
                n = w;
            }

            // Phase 2 — surplus update: premium in, counted jumps out
            // (`f2` switches from dense products to cohort-indexed
            // surplus; the products are spent).
            for (j, &i) in alive.iter().enumerate() {
                f2[j] = lanes[i] + self.premium;
            }
            self.drain_jumps(
                rngs,
                alive,
                words,
                f1,
                f2,
                idxs,
                counts,
                views,
                view_ctr0,
                view_staged,
                cursors,
            );

            for (j, &i) in alive.iter().enumerate() {
                if cursors[i] != chacha::VIEW_COMMITTED {
                    chacha::commit_view(&mut rngs[i], i, views, view_ctr0, view_staged, cursors[i]);
                }
                lanes[i] = f2[j];
                on_count(i, counts[j]);
            }
        })
    }

    /// Phase 2 of [`Self::batch_surplus`]: subtract each lane's
    /// `counts[j]` jump draws from the surplus in `u[j]`, cross-lane —
    /// pass `p` draws one jump word from every lane with more than `p`
    /// jumps and applies the jump transform slice-wise over the dense
    /// live set (same branchless compaction as phase 1). Per-lane draw
    /// order equals the serial loop's.
    #[allow(clippy::too_many_arguments)]
    fn drain_jumps(
        &self,
        rngs: &mut [SimRng],
        alive: &[usize],
        words: &mut [u64],
        vals: &mut [f64],
        u: &mut [f64],
        idxs: &mut [usize],
        counts: &[u64],
        views: &mut [[u32; chacha::VIEW_STRIDE]],
        view_ctr0: &mut [u64],
        view_staged: &mut [bool],
        cursors: &mut [u32],
    ) {
        let m = alive.len();
        if let JumpDistribution::Constant { value } = self.jumps {
            // No words drawn; repeated subtraction mirrors the scalar
            // loop bit-for-bit (u − v − v ≠ u − 2v in general).
            for j in 0..m {
                for _ in 0..counts[j] {
                    u[j] -= value;
                }
            }
            return;
        }
        let mut n = 0usize;
        for (j, &c) in counts[..m].iter().enumerate() {
            idxs[n] = j;
            n += (c > 0) as usize;
        }
        let mut pass = 0u64;
        while n > 0 {
            if n < CPP_SCALAR_PEEL {
                for &j in &idxs[..n] {
                    let i = alive[j];
                    for _ in pass..counts[j] {
                        let jump = self.jumps.sample_from(|| {
                            lane_u64(&mut rngs[i], i, views, view_ctr0, view_staged, cursors)
                        });
                        u[j] -= jump;
                    }
                }
                return;
            }
            for k in 0..n {
                let j = idxs[k];
                let i = alive[j];
                words[k] = lane_u64(&mut rngs[i], i, views, view_ctr0, view_staged, cursors);
            }
            vmath::u01_slice(&words[..n], &mut vals[..n]);
            match self.jumps {
                JumpDistribution::Uniform { lo, hi } => {
                    for x in &mut vals[..n] {
                        *x = lo + (hi - lo) * *x;
                    }
                }
                JumpDistribution::Exponential { mean } => {
                    for x in &mut vals[..n] {
                        *x = 1.0 - *x;
                    }
                    vmath::ln_slice(&mut vals[..n]);
                    for x in &mut vals[..n] {
                        *x *= -mean;
                    }
                }
                JumpDistribution::Constant { .. } => unreachable!("handled above"),
            }
            pass += 1;
            let mut w = 0usize;
            for k in 0..n {
                let j = idxs[k];
                u[j] -= vals[k];
                idxs[w] = j;
                w += (counts[j] > pass) as usize;
            }
            n = w;
        }
    }
}

impl SimulationModel for CompoundPoisson {
    type State = f64;

    fn initial_state(&self) -> f64 {
        self.initial
    }

    fn step(&self, state: &f64, _t: Time, rng: &mut SimRng) -> f64 {
        let pois = Poisson::new(self.intensity).expect("validated intensity");
        let n = pois.sample(rng) as u64;
        let mut u = state + self.premium;
        for _ in 0..n {
            u -= self.jumps.sample(rng);
        }
        u
    }

    /// Native batch kernel on the vectorized draw pipeline: block
    /// refills for the cohort are staged in multi-stream SIMD passes;
    /// the Knuth count and jump draws then run per lane from the staged
    /// words, draw-for-draw identical to the scalar `step`. Rates in the
    /// shim's normal-approximation regime (λ ≥ 30) fall back to the
    /// scalar sampler so the dual-regime draw pattern stays exact.
    fn step_batch(&self, lanes: &mut [f64], _ts: &[Time], rngs: &mut [SimRng], alive: &[usize]) {
        if self.intensity >= 30.0
            || !simd::pipeline_engaged(alive.len())
            || alive.len() < CPP_MIN_SIMD_COHORT
        {
            let pois = Poisson::new(self.intensity).expect("validated intensity");
            for &i in alive {
                let rng = &mut rngs[i];
                let n = pois.sample(rng) as u64;
                let mut u = lanes[i] + self.premium;
                for _ in 0..n {
                    u -= self.jumps.sample(rng);
                }
                lanes[i] = u;
            }
            return;
        }
        self.batch_surplus(self.intensity, lanes, rngs, alive, |_, _| {});
    }

    /// SIMD-hot below the normal-approximation regime: the persistent
    /// per-lane views and multi-stream block computes want wide, full
    /// cohorts. At λ ≥ 30 every step takes the scalar sampler anyway, so
    /// there is nothing for width to feed — class as an adapter kernel.
    fn kernel_class(&self) -> mlss_core::width::KernelClass {
        if self.intensity >= 30.0 {
            mlss_core::width::KernelClass::Adapter
        } else {
            mlss_core::width::KernelClass::SimdHot
        }
    }
}

impl TiltableModel for CompoundPoisson {
    /// Intensity tilt (the classical claim-frequency change of measure):
    /// the proposal runs the same surplus process with jump rate
    /// `λ_θ = λ·e^θ` and untilted jump sizes, so positive `θ` makes
    /// claims more frequent and ruin reachable. The per-step log
    /// likelihood-ratio for an observed count `n` is
    /// `(λ_θ − λ) − θ·n`; `θ = 0` is the plain process with weight 1.
    fn step_tilted(&self, state: &f64, _t: Time, theta: f64, rng: &mut SimRng) -> (f64, f64) {
        let tilted = self.intensity * theta.exp();
        let pois = Poisson::new(tilted).expect("tilted intensity must stay positive and finite");
        let n = pois.sample(rng) as u64;
        let mut u = state + self.premium;
        for _ in 0..n {
            u -= self.jumps.sample(rng);
        }
        (u, (tilted - self.intensity) - theta * n as f64)
    }

    /// Native tilted batch kernel: the plain staged-refill pipeline at
    /// the tilted rate, with the count folded into the lane's log-weight
    /// — bit-identical to the scalar [`TiltableModel::step_tilted`].
    fn step_tilted_batch(
        &self,
        lanes: &mut [f64],
        log_ws: &mut [f64],
        ts: &[Time],
        theta: f64,
        rngs: &mut [SimRng],
        alive: &[usize],
    ) {
        let tilted = self.intensity * theta.exp();
        if tilted >= 30.0
            || !simd::pipeline_engaged(alive.len())
            || alive.len() < CPP_MIN_SIMD_COHORT
        {
            for &i in alive {
                let (next, dlw) = self.step_tilted(&lanes[i], ts[i], theta, &mut rngs[i]);
                lanes[i] = next;
                log_ws[i] += dlw;
            }
            return;
        }
        // Validation only — keeps panic parity with the scalar
        // `step_tilted` for non-finite θ (NaN fails the ≥ 30 gate above,
        // so without this the native path would silently run on a NaN
        // Knuth limit while the adapter panics).
        let _ = Poisson::new(tilted).expect("tilted intensity must stay positive and finite");
        self.batch_surplus(tilted, lanes, rngs, alive, |i, n| {
            log_ws[i] += (tilted - self.intensity) - theta * n as f64;
        });
    }
}

/// Score for CPP durability queries: the surplus value itself.
pub fn surplus_score(state: &f64) -> f64 {
    *state
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlss_core::model::simulate_path;
    use mlss_core::rng::rng_from_seed;

    #[test]
    fn zero_drift_variant_has_zero_drift() {
        assert!(CompoundPoisson::zero_drift_default().drift().abs() < 1e-12);
    }

    #[test]
    fn paper_default_drift_is_negative() {
        let m = CompoundPoisson::paper_default();
        assert!((m.drift() - (4.5 - 0.8 * 7.5)).abs() < 1e-12);
        assert!(m.drift() < 0.0);
    }

    #[test]
    fn jump_moments() {
        let u = JumpDistribution::Uniform { lo: 5.0, hi: 10.0 };
        assert!((u.mean() - 7.5).abs() < 1e-12);
        assert!((u.second_moment() - (100.0 + 50.0 + 25.0) / 3.0).abs() < 1e-12);
        let e = JumpDistribution::Exponential { mean: 3.0 };
        assert!((e.second_moment() - 18.0).abs() < 1e-12);
        let c = JumpDistribution::Constant { value: 2.0 };
        assert_eq!(c.mean(), 2.0);
        assert_eq!(c.second_moment(), 4.0);
    }

    #[test]
    fn sample_respects_uniform_bounds() {
        let u = JumpDistribution::Uniform { lo: 5.0, hi: 10.0 };
        let mut rng = rng_from_seed(3);
        for _ in 0..1000 {
            let x = u.sample(&mut rng);
            assert!((5.0..10.0).contains(&x));
        }
    }

    #[test]
    fn empirical_drift_matches_theory() {
        let m = CompoundPoisson::paper_default();
        let horizon = 5000;
        let p = simulate_path(&m, horizon, &mut rng_from_seed(7));
        let final_u = *p.last().unwrap();
        let expected = m.initial + m.drift() * horizon as f64;
        let sd = (m.step_variance() * horizon as f64).sqrt();
        assert!(
            (final_u - expected).abs() < 4.0 * sd,
            "final {final_u} vs expected {expected} ± {sd}"
        );
    }

    #[test]
    fn paths_are_reproducible() {
        let m = CompoundPoisson::paper_default();
        let a = simulate_path(&m, 200, &mut rng_from_seed(9));
        let b = simulate_path(&m, 200, &mut rng_from_seed(9));
        assert_eq!(a.states, b.states);
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_intensity() {
        CompoundPoisson::new(0.0, 1.0, 0.0, JumpDistribution::Constant { value: 1.0 });
    }
}
