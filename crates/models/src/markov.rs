//! Finite discrete-time Markov chains (§2.1, example (2)).
//!
//! Time-homogeneous chains over a finite state space, with a per-state
//! real score for durability queries. Small chains double as *exactly
//! solvable* validation substrates: `mlss-analytic` computes their hitting
//! probabilities in closed form, which our unbiasedness tests compare
//! against.

use mlss_core::model::{SimulationModel, Time};
use mlss_core::rng::SimRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// A finite Markov chain with per-state scores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarkovChain {
    /// Row-stochastic transition matrix, `rows[i][j] = Pr[X_{t+1}=j | X_t=i]`.
    rows: Vec<Vec<f64>>,
    /// Real-valued score of each state (the query's `z`).
    scores: Vec<f64>,
    /// Initial state index.
    initial: usize,
}

impl MarkovChain {
    /// Build a chain; rows must be stochastic within `1e-9`.
    pub fn new(rows: Vec<Vec<f64>>, scores: Vec<f64>, initial: usize) -> Self {
        let n = rows.len();
        assert!(n > 0, "chain needs at least one state");
        assert_eq!(scores.len(), n, "one score per state");
        assert!(initial < n, "initial state out of range");
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), n, "row {i} has wrong length");
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "row {i} sums to {sum}, not 1");
            assert!(
                row.iter().all(|&p| p >= 0.0),
                "negative probability in row {i}"
            );
        }
        Self {
            rows,
            scores,
            initial,
        }
    }

    /// A birth-death chain on `{0..n-1}`: up with probability `p`, down
    /// with probability `q`, stay otherwise; reflecting at both ends
    /// (excess mass stays). Scores are the state indices. A discrete
    /// analogue of the queue process with exact analytics.
    pub fn birth_death(n: usize, p: f64, q: f64, initial: usize) -> Self {
        assert!(n >= 2);
        assert!(p >= 0.0 && q >= 0.0 && p + q <= 1.0);
        let mut rows = vec![vec![0.0; n]; n];
        for i in 0..n {
            let up = if i + 1 < n { p } else { 0.0 };
            let down = if i > 0 { q } else { 0.0 };
            if i + 1 < n {
                rows[i][i + 1] = up;
            }
            if i > 0 {
                rows[i][i - 1] = down;
            }
            rows[i][i] = 1.0 - up - down;
        }
        let scores = (0..n).map(|i| i as f64).collect();
        Self::new(rows, scores, initial)
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.rows.len()
    }

    /// Transition matrix rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// Per-state scores.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Initial state index.
    pub fn initial(&self) -> usize {
        self.initial
    }

    /// Score of state `i`.
    pub fn score_of(&self, i: usize) -> f64 {
        self.scores[i]
    }
}

impl SimulationModel for MarkovChain {
    type State = usize;

    fn initial_state(&self) -> usize {
        self.initial
    }

    fn step(&self, state: &usize, _t: Time, rng: &mut SimRng) -> usize {
        let row = &self.rows[*state];
        let mut u = rng.random::<f64>();
        for (j, &p) in row.iter().enumerate() {
            if u < p {
                return j;
            }
            u -= p;
        }
        // Floating-point slack: land on the last positive-probability state.
        row.iter()
            .rposition(|&p| p > 0.0)
            .expect("stochastic row has positive mass")
    }

    /// A step is one draw and a short row scan — staging a wide cohort
    /// costs more than it saves, so the `auto` width policy runs narrow.
    fn kernel_class(&self) -> mlss_core::width::KernelClass {
        mlss_core::width::KernelClass::Cheap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlss_core::model::simulate_path;
    use mlss_core::rng::rng_from_seed;

    #[test]
    fn birth_death_structure() {
        let c = MarkovChain::birth_death(5, 0.3, 0.4, 2);
        assert_eq!(c.num_states(), 5);
        assert!((c.rows()[0][0] - 0.7).abs() < 1e-12); // no down at 0
        assert!((c.rows()[4][4] - 0.6).abs() < 1e-12); // no up at top
        assert!((c.rows()[2][3] - 0.3).abs() < 1e-12);
        assert!((c.rows()[2][1] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn transition_frequencies_match_matrix() {
        let c = MarkovChain::birth_death(3, 0.25, 0.25, 1);
        let mut rng = rng_from_seed(5);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[c.step(&1, 1, &mut rng)] += 1;
        }
        assert!((counts[0] as f64 / 30_000.0 - 0.25).abs() < 0.02);
        assert!((counts[2] as f64 / 30_000.0 - 0.25).abs() < 0.02);
        assert!((counts[1] as f64 / 30_000.0 - 0.50).abs() < 0.02);
    }

    #[test]
    fn paths_stay_in_state_space() {
        let c = MarkovChain::birth_death(4, 0.4, 0.3, 0);
        let p = simulate_path(&c, 500, &mut rng_from_seed(2));
        assert!(p.states.iter().all(|&s| s < 4));
    }

    #[test]
    #[should_panic]
    fn rejects_nonstochastic_rows() {
        MarkovChain::new(vec![vec![0.5, 0.4], vec![0.5, 0.5]], vec![0.0, 1.0], 0);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_initial() {
        MarkovChain::birth_death(3, 0.2, 0.2, 7);
    }
}
