//! Auto-regressive AR(m) model (§2.1, example (1)).
//!
//! `v_t = Σ_{i=1..m} φ_i · v_{t-i} + ε_t` with i.i.d. Gaussian noise
//! `ε_t ~ N(0, σ)`. History-dependence is carried inside the state, which
//! stores the last `m` values (most recent first).

use mlss_core::is::TiltableModel;
use mlss_core::model::{SimulationModel, Time};
use mlss_core::rng::SimRng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// AR(m) state: the last `m` values, most recent first.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArState {
    /// Recent values, `history[0]` being `v_{t-1}`.
    pub history: Vec<f64>,
}

impl ArState {
    /// Current (most recent) value.
    pub fn value(&self) -> f64 {
        self.history[0]
    }
}

/// The AR(m) simulation model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArModel {
    /// Coefficients `φ_1..φ_m`.
    pub coefficients: Vec<f64>,
    /// Noise standard deviation σ.
    pub sigma: f64,
    /// Initial history (length m, most recent first).
    pub initial: Vec<f64>,
}

impl ArModel {
    /// New model; coefficient and initial-history lengths must match and
    /// σ must be positive.
    pub fn new(coefficients: Vec<f64>, sigma: f64, initial: Vec<f64>) -> Self {
        assert!(!coefficients.is_empty(), "AR order must be ≥ 1");
        assert_eq!(
            coefficients.len(),
            initial.len(),
            "initial history must have length m"
        );
        assert!(sigma.is_finite() && sigma > 0.0, "σ must be positive");
        Self {
            coefficients,
            sigma,
            initial,
        }
    }

    /// An AR(1) model `v_t = φ v_{t-1} + N(0, σ)` started at `v0`.
    pub fn ar1(phi: f64, sigma: f64, v0: f64) -> Self {
        Self::new(vec![phi], sigma, vec![v0])
    }

    /// Model order m.
    pub fn order(&self) -> usize {
        self.coefficients.len()
    }
}

impl SimulationModel for ArModel {
    type State = ArState;

    fn initial_state(&self) -> ArState {
        ArState {
            history: self.initial.clone(),
        }
    }

    fn step(&self, state: &ArState, _t: Time, rng: &mut SimRng) -> ArState {
        let normal = Normal::new(0.0, self.sigma).expect("validated σ");
        let mut v = normal.sample(rng);
        for (phi, past) in self.coefficients.iter().zip(&state.history) {
            v += phi * past;
        }
        let mut history = Vec::with_capacity(state.history.len());
        history.push(v);
        history.extend_from_slice(&state.history[..state.history.len() - 1]);
        ArState { history }
    }

    /// Native batch kernel: the noise distribution is built once per
    /// cohort step and each lane's history ring is rotated **in place**
    /// (`copy_within`) instead of reallocating a fresh `Vec` per path
    /// per step. Per-lane draws and arithmetic match the scalar `step`.
    fn step_batch(
        &self,
        lanes: &mut [ArState],
        _ts: &[Time],
        rngs: &mut [SimRng],
        alive: &[usize],
    ) {
        let normal = Normal::new(0.0, self.sigma).expect("validated σ");
        for &i in alive {
            let mut v = normal.sample(&mut rngs[i]);
            let history = &mut lanes[i].history;
            for (phi, past) in self.coefficients.iter().zip(history.iter()) {
                v += phi * past;
            }
            let len = history.len();
            history.copy_within(0..len - 1, 1);
            history[0] = v;
        }
    }
}

impl TiltableModel for ArModel {
    /// Exponential tilt: the Gaussian innovation mean is shifted by
    /// `theta`; the log likelihood-ratio increment is
    /// `(θ² − 2θε) / (2σ²)` for the realized innovation `ε`.
    fn step_tilted(
        &self,
        state: &ArState,
        _t: Time,
        theta: f64,
        rng: &mut SimRng,
    ) -> (ArState, f64) {
        let normal = Normal::new(theta, self.sigma).expect("validated σ");
        let eps = normal.sample(rng);
        let mut v = eps;
        for (phi, past) in self.coefficients.iter().zip(&state.history) {
            v += phi * past;
        }
        let mut history = Vec::with_capacity(state.history.len());
        history.push(v);
        history.extend_from_slice(&state.history[..state.history.len() - 1]);
        let log_w = (theta * theta - 2.0 * theta * eps) / (2.0 * self.sigma * self.sigma);
        (ArState { history }, log_w)
    }

    /// Native tilted batch kernel: like the plain [`SimulationModel::step_batch`]
    /// override, the shifted innovation distribution is constructed once
    /// per cohort step and the history ring rotates in place instead of
    /// allocating a fresh `Vec` per path per step. Per-lane draws,
    /// arithmetic, and the log-weight expression match the scalar
    /// [`TiltableModel::step_tilted`] exactly.
    fn step_tilted_batch(
        &self,
        lanes: &mut [ArState],
        log_ws: &mut [f64],
        _ts: &[Time],
        theta: f64,
        rngs: &mut [SimRng],
        alive: &[usize],
    ) {
        let normal = Normal::new(theta, self.sigma).expect("validated σ");
        let denom = 2.0 * self.sigma * self.sigma;
        for &i in alive {
            let eps = normal.sample(&mut rngs[i]);
            let mut v = eps;
            let history = &mut lanes[i].history;
            for (phi, past) in self.coefficients.iter().zip(history.iter()) {
                v += phi * past;
            }
            let len = history.len();
            history.copy_within(0..len - 1, 1);
            history[0] = v;
            log_ws[i] += (theta * theta - 2.0 * theta * eps) / denom;
        }
    }
}

/// Score for AR durability queries: the current value.
pub fn ar_value_score(state: &ArState) -> f64 {
    state.value()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlss_core::model::simulate_path;
    use mlss_core::rng::rng_from_seed;

    #[test]
    fn ar1_mean_reverts() {
        let m = ArModel::ar1(0.5, 0.1, 10.0);
        let p = simulate_path(&m, 200, &mut rng_from_seed(1));
        // Stationary mean is 0; after burn-in the value should be small.
        let tail_avg: f64 = p.states[100..].iter().map(|s| s.value()).sum::<f64>() / 100.0;
        assert!(tail_avg.abs() < 0.5, "tail avg {tail_avg}");
    }

    #[test]
    fn ar2_history_rotates() {
        let m = ArModel::new(vec![0.3, 0.2], 0.01, vec![1.0, 2.0]);
        let s0 = m.initial_state();
        let s1 = m.step(&s0, 1, &mut rng_from_seed(2));
        assert_eq!(s1.history.len(), 2);
        // Previous head becomes second entry.
        assert_eq!(s1.history[1], 1.0);
    }

    #[test]
    fn stationary_variance_of_ar1() {
        // Var = σ²/(1−φ²) for |φ| < 1.
        let phi = 0.8;
        let sigma = 1.0;
        let m = ArModel::ar1(phi, sigma, 0.0);
        let p = simulate_path(&m, 20_000, &mut rng_from_seed(3));
        let vals: Vec<f64> = p.states[1000..].iter().map(|s| s.value()).collect();
        let var = mlss_core::stats::sample_variance(&vals);
        let expect = sigma * sigma / (1.0 - phi * phi);
        assert!(
            (var - expect).abs() / expect < 0.15,
            "var {var} vs {expect}"
        );
    }

    #[test]
    fn tilted_ar_matches_plain_in_distribution_at_zero_tilt() {
        use mlss_core::is::TiltableModel;
        let m = ArModel::ar1(0.5, 0.3, 0.0);
        let s0 = m.initial_state();
        let mut r1 = rng_from_seed(11);
        let mut r2 = rng_from_seed(11);
        let plain = m.step(&s0, 1, &mut r1);
        let (tilted, log_w) = m.step_tilted(&s0, 1, 0.0, &mut r2);
        assert!((plain.value() - tilted.value()).abs() < 1e-12);
        assert_eq!(log_w, 0.0);
    }

    #[test]
    fn tilted_ar_weight_sign() {
        use mlss_core::is::TiltableModel;
        // Positive tilt makes large innovations over-represented, so their
        // weights must be < 1 (log_w < 0) when ε > θ/2.
        let m = ArModel::ar1(0.0, 1.0, 0.0);
        let s0 = m.initial_state();
        let mut rng = rng_from_seed(3);
        let mut saw_downweight = false;
        for _ in 0..50 {
            let (next, log_w) = m.step_tilted(&s0, 1, 0.5, &mut rng);
            let eps = next.value();
            if eps > 0.25 {
                assert!(log_w < 0.0, "eps {eps} log_w {log_w}");
                saw_downweight = true;
            }
        }
        assert!(saw_downweight);
    }

    #[test]
    #[should_panic]
    fn rejects_mismatched_history() {
        ArModel::new(vec![0.5, 0.2], 1.0, vec![0.0]);
    }
}
