//! # mlss-models
//!
//! Stochastic-process substrates for durability prediction queries — every
//! simulation model the paper evaluates on (§6) or uses as a running
//! example (§2), implemented from scratch against
//! [`mlss_core::model::SimulationModel`]:
//!
//! * [`queue`] — tandem queues with Poisson arrivals and exponential
//!   services (§6 model (1));
//! * [`cpp`] — compound-Poisson surplus processes (§6 model (2));
//! * [`volatile`] — impulse-jump variants that violate the no-level-
//!   skipping assumption (§6.2);
//! * [`ar`] — AR(m) processes (§2.1);
//! * [`markov`] — finite Markov chains (§2.1);
//! * [`network`] — k-station series queueing networks (tandem generalized);
//! * [`walk`] — integer random walks / gambler's ruin (§2.2);
//! * [`gbm`] — geometric Brownian motion and the synthetic price series
//!   that trains the `mlss-nn` black-box model.

#![warn(missing_docs)]

pub mod ar;
pub mod cpp;
pub mod gbm;
pub mod markov;
pub mod network;
pub mod queue;
pub mod volatile;
pub mod walk;

pub use ar::{ar_value_score, ArModel, ArState};
pub use cpp::{surplus_score, CompoundPoisson, JumpDistribution};
pub use gbm::{price_score, synthetic_price_series, GeometricBrownian};
pub use markov::MarkovChain;
pub use network::{last_station_score, total_customers_score, NetworkState, SeriesNetwork};
pub use queue::{queue2_score, QueueState, TandemQueue};
pub use volatile::{volatile_cpp, volatile_queue, Volatile};
pub use walk::{position_score, RandomWalk};

#[cfg(test)]
mod batch_kernel_tests {
    //! Every native `step_batch` kernel must be per-lane bit-identical to
    //! the scalar→batch adapter: same lane states, same per-lane RNG
    //! positions, dead lanes untouched.

    use super::*;
    use mlss_core::model::{ScalarAdapter, SimulationModel, Time};
    use mlss_core::rng::{rng_from_seed, SimRng};
    use rand::RngExt;
    use std::fmt::Debug;

    fn check_native_matches_adapter<M>(model: &M, steps: usize)
    where
        M: SimulationModel,
        M::State: PartialEq + Debug,
    {
        const W: usize = 8;
        let mut native: Vec<M::State> = (0..W).map(|_| model.initial_state()).collect();
        let mut adapted = native.clone();
        let mut rngs_n: Vec<SimRng> = (0..W).map(|k| rng_from_seed(900 + k as u64)).collect();
        let mut rngs_a = rngs_n.clone();
        let ts: Vec<Time> = (1..=W as Time).collect();
        let alive = [0usize, 2, 3, 5, 7];
        let wrapper = ScalarAdapter(model);
        for _ in 0..steps {
            model.step_batch(&mut native, &ts, &mut rngs_n, &alive);
            wrapper.step_batch(&mut adapted, &ts, &mut rngs_a, &alive);
        }
        assert_eq!(native, adapted, "lane states diverged");
        for k in 0..W {
            assert_eq!(
                rngs_n[k].random::<u64>(),
                rngs_a[k].random::<u64>(),
                "lane {k} RNG position diverged"
            );
        }
        // Dead lanes (1, 4, 6) were never stepped.
        for dead in [1usize, 4, 6] {
            assert_eq!(
                native[dead],
                model.initial_state(),
                "dead lane {dead} touched"
            );
        }
    }

    #[test]
    fn cpp_kernel_is_bit_identical() {
        check_native_matches_adapter(&CompoundPoisson::paper_default(), 80);
    }

    #[test]
    fn walk_kernel_is_bit_identical() {
        check_native_matches_adapter(&RandomWalk::new(0.3, 0.3, 2).reflected(), 200);
    }

    #[test]
    fn gbm_kernel_is_bit_identical() {
        check_native_matches_adapter(&GeometricBrownian::goog_like(), 200);
    }

    #[test]
    fn ar_kernel_is_bit_identical() {
        check_native_matches_adapter(
            &ArModel::new(vec![0.5, 0.2, -0.1], 0.4, vec![1.0, 0.5, 0.0]),
            120,
        );
    }

    #[test]
    fn queue_kernel_is_bit_identical() {
        check_native_matches_adapter(&TandemQueue::paper_default(), 120);
    }
}
