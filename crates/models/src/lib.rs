//! # mlss-models
//!
//! Stochastic-process substrates for durability prediction queries — every
//! simulation model the paper evaluates on (§6) or uses as a running
//! example (§2), implemented from scratch against
//! [`mlss_core::model::SimulationModel`]:
//!
//! * [`queue`] — tandem queues with Poisson arrivals and exponential
//!   services (§6 model (1));
//! * [`cpp`] — compound-Poisson surplus processes (§6 model (2));
//! * [`volatile`] — impulse-jump variants that violate the no-level-
//!   skipping assumption (§6.2);
//! * [`ar`] — AR(m) processes (§2.1);
//! * [`markov`] — finite Markov chains (§2.1);
//! * [`network`] — k-station series queueing networks (tandem generalized);
//! * [`walk`] — integer random walks / gambler's ruin (§2.2);
//! * [`gbm`] — geometric Brownian motion and the synthetic price series
//!   that trains the `mlss-nn` black-box model.

#![warn(missing_docs)]

pub mod ar;
pub mod cpp;
pub mod gbm;
pub mod markov;
pub mod network;
pub mod queue;
pub mod volatile;
pub mod walk;

pub use ar::{ar_value_score, ArModel, ArState};
pub use cpp::{surplus_score, CompoundPoisson, JumpDistribution};
pub use gbm::{price_score, synthetic_price_series, GeometricBrownian};
pub use markov::MarkovChain;
pub use network::{last_station_score, total_customers_score, NetworkState, SeriesNetwork};
pub use queue::{queue2_score, QueueState, TandemQueue};
pub use volatile::{volatile_cpp, volatile_queue, Volatile};
pub use walk::{position_score, RandomWalk};
