//! Geometric Brownian motion (§1 motivation; also the training-data
//! generator for the LSTM-MDN substrate).
//!
//! `S_{t+1} = S_t · exp((μ − σ²/2)Δ + σ√Δ · Z)`, the standard equity price
//! model. Besides serving as an examples substrate, [`synthetic_price_series`]
//! generates the seeded stand-in for the paper's Google 2015-2020 daily
//! closes used to train `mlss-nn` (DESIGN.md substitution 1).

use mlss_core::is::TiltableModel;
use mlss_core::model::{SimulationModel, Time};
use mlss_core::rng::SimRng;
use mlss_core::simd::{self, chacha, vmath};
use serde::{Deserialize, Serialize};

/// Geometric Brownian motion with per-step drift/volatility.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeometricBrownian {
    /// Initial price `S_0`.
    pub initial: f64,
    /// Annualized drift μ.
    pub drift: f64,
    /// Annualized volatility σ.
    pub volatility: f64,
    /// Step length Δ in years (1/252 for a trading day).
    pub dt: f64,
}

impl GeometricBrownian {
    /// New GBM; price, volatility and Δ must be positive.
    pub fn new(initial: f64, drift: f64, volatility: f64, dt: f64) -> Self {
        assert!(initial > 0.0 && initial.is_finite());
        assert!(volatility > 0.0 && volatility.is_finite());
        assert!(dt > 0.0 && dt.is_finite());
        assert!(drift.is_finite());
        Self {
            initial,
            drift,
            volatility,
            dt,
        }
    }

    /// Daily-stepped GBM calibrated to large-cap tech equity over
    /// 2015-2020 (μ ≈ 25%/yr, σ ≈ 28%/yr) starting at 525 — the synthetic
    /// stand-in for GOOG daily closes.
    pub fn goog_like() -> Self {
        Self::new(525.0, 0.25, 0.28, 1.0 / 252.0)
    }
}

impl GeometricBrownian {
    /// Per-step log-return drift `(μ − σ²/2)Δ` — the `a` in
    /// `S ← S·exp(a + b·Z)`.
    #[inline]
    fn log_drift(&self) -> f64 {
        (self.drift - 0.5 * self.volatility * self.volatility) * self.dt
    }

    /// Per-step diffusion coefficient `σ√Δ` — the `b` in
    /// `S ← S·exp(a + b·Z)`.
    #[inline]
    fn diffusion(&self) -> f64 {
        self.volatility * self.dt.sqrt()
    }

    /// The vectorized growth update shared by the plain and tilted batch
    /// kernels: gather two raw words per alive lane, run the shared
    /// normal transform and `exp` over the cohort, and fold per-lane
    /// post-processing (the tilt shift and log-weight) through `adjust`.
    #[inline]
    fn batch_growth(
        &self,
        lanes: &mut [f64],
        rngs: &mut [SimRng],
        alive: &[usize],
        mut adjust: impl FnMut(usize, f64) -> f64,
    ) {
        let a = self.log_drift();
        let b = self.diffusion();
        simd::with_scratch(|sc| {
            chacha::gather_u64(rngs, alive, 2, sc);
            sc.f1.clear();
            sc.f1.resize(alive.len(), 0.0);
            vmath::normal_from_words(&sc.words, &mut sc.f1);
            for (j, &i) in alive.iter().enumerate() {
                let z = adjust(i, sc.f1[j]);
                sc.f1[j] = a + b * z;
            }
            vmath::exp_slice(&mut sc.f1);
            for (j, &i) in alive.iter().enumerate() {
                lanes[i] *= sc.f1[j];
            }
        })
    }
}

impl SimulationModel for GeometricBrownian {
    type State = f64;

    fn initial_state(&self) -> f64 {
        self.initial
    }

    fn step(&self, state: &f64, _t: Time, rng: &mut SimRng) -> f64 {
        let z = vmath::normal01_draw(rng);
        state * vmath::exp(self.log_drift() + self.diffusion() * z)
    }

    /// Native batch kernel on the vectorized draw pipeline: two raw
    /// ChaCha words per lane (block refills computed multi-stream), the
    /// shared `vmath` normal transform and `exp` over the whole cohort.
    /// Scalar `step` and this kernel call the *same* `vmath` polynomial
    /// with the same per-lane operation order, so results are
    /// bit-identical at every width and on every backend. Small cohorts
    /// take the scalar loop (same draws, same bits).
    fn step_batch(&self, lanes: &mut [f64], ts: &[Time], rngs: &mut [SimRng], alive: &[usize]) {
        if alive.len() < simd::MIN_SIMD_COHORT {
            for &i in alive {
                lanes[i] = self.step(&lanes[i], ts[i], &mut rngs[i]);
            }
            return;
        }
        self.batch_growth(lanes, rngs, alive, |_, z| z);
    }

    /// SIMD-hot: wide cohorts keep the multi-stream ChaCha and chunked
    /// `vmath` passes full, so the `auto` width policy goes wide.
    fn kernel_class(&self) -> mlss_core::width::KernelClass {
        mlss_core::width::KernelClass::SimdHot
    }
}

impl TiltableModel for GeometricBrownian {
    /// Exponential tilt of the Brownian increment: the proposal draws
    /// `Z ~ N(θ, 1)`, pushing log-returns by `θ·σ√Δ` per step; the log
    /// likelihood-ratio increment is `θ²/2 − θZ`.
    fn step_tilted(&self, state: &f64, _t: Time, theta: f64, rng: &mut SimRng) -> (f64, f64) {
        let z = theta + vmath::normal01_draw(rng);
        let log_w = (0.5 * theta - z) * theta;
        (
            state * vmath::exp(self.log_drift() + self.diffusion() * z),
            log_w,
        )
    }

    /// Native tilted batch kernel: the plain vectorized pipeline with the
    /// mean shift and log-weight folded per lane — bit-identical to the
    /// scalar [`TiltableModel::step_tilted`] loop.
    fn step_tilted_batch(
        &self,
        lanes: &mut [f64],
        log_ws: &mut [f64],
        ts: &[Time],
        theta: f64,
        rngs: &mut [SimRng],
        alive: &[usize],
    ) {
        if alive.len() < simd::MIN_SIMD_COHORT {
            for &i in alive {
                let (next, dlw) = self.step_tilted(&lanes[i], ts[i], theta, &mut rngs[i]);
                lanes[i] = next;
                log_ws[i] += dlw;
            }
            return;
        }
        self.batch_growth(lanes, rngs, alive, |i, z0| {
            let z = theta + z0;
            log_ws[i] += (0.5 * theta - z) * theta;
            z
        });
    }
}

/// Generate a synthetic daily price series of `days` closes (plus the
/// initial price) from the GOOG-like GBM — the training corpus for the
/// LSTM-MDN model.
pub fn synthetic_price_series(days: usize, rng: &mut SimRng) -> Vec<f64> {
    let gbm = GeometricBrownian::goog_like();
    let mut out = Vec::with_capacity(days + 1);
    let mut s = gbm.initial;
    out.push(s);
    for t in 1..=days {
        s = gbm.step(&s, t as Time, rng);
        out.push(s);
    }
    out
}

/// Score for price durability queries: the price itself.
pub fn price_score(state: &f64) -> f64 {
    *state
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlss_core::model::simulate_path;
    use mlss_core::rng::rng_from_seed;

    #[test]
    fn prices_stay_positive() {
        let g = GeometricBrownian::goog_like();
        let p = simulate_path(&g, 2000, &mut rng_from_seed(1));
        assert!(p.states.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn log_return_moments_match() {
        let g = GeometricBrownian::new(100.0, 0.1, 0.2, 1.0 / 252.0);
        let p = simulate_path(&g, 50_000, &mut rng_from_seed(2));
        let rets: Vec<f64> = p.states.windows(2).map(|w| (w[1] / w[0]).ln()).collect();
        let mean = mlss_core::stats::mean(&rets);
        let var = mlss_core::stats::sample_variance(&rets);
        let expect_mean = (0.1 - 0.02) * (1.0 / 252.0);
        let expect_var: f64 = 0.04 / 252.0;
        assert!((mean - expect_mean).abs() < 3.0 * (expect_var / 50_000.0).sqrt());
        assert!((var - expect_var).abs() / expect_var < 0.05);
    }

    #[test]
    fn synthetic_series_has_expected_shape() {
        let mut rng = rng_from_seed(2015);
        let series = synthetic_price_series(1259, &mut rng);
        assert_eq!(series.len(), 1260);
        assert!((series[0] - 525.0).abs() < 1e-9);
        assert!(series.iter().all(|&p| p > 100.0 && p < 10_000.0));
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_price() {
        GeometricBrownian::new(0.0, 0.1, 0.2, 1.0);
    }
}
