//! Volatile process variants (§6.2).
//!
//! To demonstrate level skipping, the paper modifies the queue and CPP
//! processes with *impulse jumps*: once `t > 0.8·s`, each step adds a
//! large value increase with a small probability. [`Volatile`] is the
//! generic wrapper; [`volatile_cpp`] and [`volatile_queue`] bake in the
//! paper's impulse parameters.

use crate::cpp::CompoundPoisson;
use crate::queue::{QueueState, TandemQueue};
use mlss_core::model::{SimulationModel, Time};
use mlss_core::rng::SimRng;
use rand::RngExt;

/// A model wrapper that, from time `after` (exclusive), applies an impulse
/// to the freshly stepped state with probability `prob` per step.
#[derive(Debug, Clone, Copy)]
pub struct Volatile<M, F> {
    inner: M,
    /// Impulses activate for `t > after`.
    pub after: Time,
    /// Per-step impulse probability.
    pub prob: f64,
    impulse: F,
}

impl<M, F> Volatile<M, F> {
    /// Wrap `inner`; impulses fire for `t > after` with probability `prob`.
    pub fn new(inner: M, after: Time, prob: f64, impulse: F) -> Self {
        assert!((0.0..=1.0).contains(&prob), "impulse probability in [0,1]");
        Self {
            inner,
            after,
            prob,
            impulse,
        }
    }

    /// Access the wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M, F> SimulationModel for Volatile<M, F>
where
    M: SimulationModel,
    F: Fn(&mut M::State) + Sync,
{
    type State = M::State;

    fn initial_state(&self) -> Self::State {
        self.inner.initial_state()
    }

    fn step(&self, state: &Self::State, t: Time, rng: &mut SimRng) -> Self::State {
        let mut next = self.inner.step(state, t, rng);
        if t > self.after && rng.random::<f64>() < self.prob {
            (self.impulse)(&mut next);
        }
        next
    }
}

/// The paper's Volatile CPP: for `t > 0.8·s`, add `+200` to the surplus
/// with probability `0.005` per step.
pub fn volatile_cpp(
    base: CompoundPoisson,
    horizon: Time,
) -> Volatile<CompoundPoisson, impl Fn(&mut f64) + Sync + Copy> {
    Volatile::new(base, horizon * 8 / 10, 0.005, |u: &mut f64| *u += 200.0)
}

/// The Volatile Queue: for `t > 0.8·s`, add a burst of customers to
/// Queue 2 with a small per-step probability.
///
/// Calibration note (DESIGN.md, substitution 4): the paper states `+5`
/// with probability `0.2`/step, but at that rate essentially *every*
/// path gains ≈ +100 customers and the hitting probability saturates
/// near 1 for any reachable β. We use `+15` with probability `0.015`/step,
/// which keeps the impulse and diffusion contributions comparable (so
/// thresholds stay in the paper's Tiny/Rare bands) while making each
/// impulse large relative to β — the level-skipping behaviour §6.2 is
/// designed to exhibit.
pub fn volatile_queue(
    base: TandemQueue,
    horizon: Time,
) -> Volatile<TandemQueue, impl Fn(&mut QueueState) + Sync + Copy> {
    Volatile::new(base, horizon * 8 / 10, 0.015, |s: &mut QueueState| {
        s.q2 += 15
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlss_core::model::simulate_path;
    use mlss_core::rng::rng_from_seed;

    /// Deterministic base model for impulse timing tests.
    struct Flat;

    impl SimulationModel for Flat {
        type State = f64;

        fn initial_state(&self) -> f64 {
            0.0
        }

        fn step(&self, s: &f64, _t: Time, _rng: &mut SimRng) -> f64 {
            *s
        }
    }

    #[test]
    fn no_impulses_before_activation() {
        let m = Volatile::new(Flat, 400, 1.0, |s: &mut f64| *s += 100.0);
        let p = simulate_path(&m, 400, &mut rng_from_seed(1));
        assert!(p.states.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn certain_impulses_after_activation() {
        let m = Volatile::new(Flat, 10, 1.0, |s: &mut f64| *s += 1.0);
        let p = simulate_path(&m, 20, &mut rng_from_seed(1));
        // Impulse applies at t = 11..=20 → final value 10.
        assert_eq!(*p.last().unwrap(), 10.0);
    }

    #[test]
    fn zero_probability_means_base_process() {
        let base = CompoundPoisson::paper_default();
        let wrapped = Volatile::new(base, 0, 0.0, |_: &mut f64| unreachable!());
        let a = simulate_path(&base, 100, &mut rng_from_seed(4));
        // The wrapper draws one extra uniform per active step, so compare
        // against prob = 0 with after = horizon (never active, no draws).
        let never = Volatile::new(base, 100, 0.5, |_: &mut f64| {});
        let b = simulate_path(&never, 100, &mut rng_from_seed(4));
        assert_eq!(a.states, b.states);
        // And zero-prob active wrapper still yields a valid path.
        let c = simulate_path(&wrapped, 100, &mut rng_from_seed(4));
        assert_eq!(c.states.len(), 101);
    }

    #[test]
    fn volatile_cpp_jumps_appear_late() {
        let m = volatile_cpp(CompoundPoisson::paper_default(), 500);
        assert_eq!(m.after, 400);
        let mut seen_jump = false;
        for seed in 0..40 {
            let p = simulate_path(&m, 500, &mut rng_from_seed(seed));
            for w in p.states.windows(2) {
                if w[1] - w[0] > 150.0 {
                    seen_jump = true;
                }
            }
        }
        assert!(seen_jump, "expected at least one +200 impulse in 40 paths");
    }

    #[test]
    fn volatile_queue_jumps_queue2() {
        let m = volatile_queue(TandemQueue::paper_default(), 500);
        let mut jumped = false;
        for seed in 0..40 {
            let p = simulate_path(&m, 500, &mut rng_from_seed(seed));
            for w in p.states.windows(2) {
                if w[1].q2 >= w[0].q2 + 15 {
                    jumped = true;
                }
            }
        }
        assert!(
            jumped,
            "q2 should show a +15 impulse within 40 paths (p=0.015/step over 100 steps)"
        );
    }
}
