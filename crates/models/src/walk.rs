//! Integer random walks (§2.2 "Analytical Solution").
//!
//! A lazy ±1 walk with optional absorption at 0 — the gambler's-ruin
//! process. Random walks admit exact first-hitting answers
//! (`mlss-analytic::walk`), making them the primary validation substrate
//! for estimator unbiasedness.

use mlss_core::is::TiltableModel;
use mlss_core::model::{SimulationModel, Time};
use mlss_core::rng::SimRng;
use mlss_core::simd::{self, chacha, vmath};
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// A lazy integer random walk.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomWalk {
    /// Probability of a +1 step.
    pub up: f64,
    /// Probability of a −1 step (stay put otherwise).
    pub down: f64,
    /// Starting position.
    pub start: i64,
    /// Reflect at zero (positions never go negative) when true; otherwise
    /// the walk is free.
    pub reflect_at_zero: bool,
}

impl RandomWalk {
    /// New walk; `up + down` must not exceed 1.
    pub fn new(up: f64, down: f64, start: i64) -> Self {
        assert!(up >= 0.0 && down >= 0.0 && up + down <= 1.0 + 1e-12);
        Self {
            up,
            down,
            start,
            reflect_at_zero: false,
        }
    }

    /// Enable reflection at zero.
    pub fn reflected(mut self) -> Self {
        self.reflect_at_zero = true;
        self
    }

    /// Per-step drift `up − down`.
    pub fn drift(&self) -> f64 {
        self.up - self.down
    }
}

impl SimulationModel for RandomWalk {
    type State = i64;

    fn initial_state(&self) -> i64 {
        self.start
    }

    fn step(&self, state: &i64, _t: Time, rng: &mut SimRng) -> i64 {
        let u = rng.random::<f64>();
        let mut next = if u < self.up {
            state + 1
        } else if u < self.up + self.down {
            state - 1
        } else {
            *state
        };
        if self.reflect_at_zero && next < 0 {
            next = 0;
        }
        next
    }

    /// Native batch kernel on the vectorized draw pipeline: one raw
    /// ChaCha word per lane, with all block refills for the cohort
    /// computed in one multi-stream SIMD pass; the threshold compare and
    /// integer update stay per lane. Per-lane draws are bit-identical to
    /// the scalar `step` (the walk is pure RNG cost — the draw gather
    /// *is* the kernel).
    fn step_batch(&self, lanes: &mut [i64], ts: &[Time], rngs: &mut [SimRng], alive: &[usize]) {
        if !simd::pipeline_engaged(alive.len()) {
            for &i in alive {
                lanes[i] = self.step(&lanes[i], ts[i], &mut rngs[i]);
            }
            return;
        }
        let stay = self.up + self.down;
        simd::with_scratch(|sc| {
            chacha::gather_u64(rngs, alive, 1, sc);
            sc.f1.clear();
            sc.f1.resize(alive.len(), 0.0);
            vmath::u01_slice(&sc.words, &mut sc.f1);
            for (j, &i) in alive.iter().enumerate() {
                let u = sc.f1[j];
                let s = lanes[i];
                let mut next = if u < self.up {
                    s + 1
                } else if u < stay {
                    s - 1
                } else {
                    s
                };
                if self.reflect_at_zero && next < 0 {
                    next = 0;
                }
                lanes[i] = next;
            }
        })
    }

    /// SIMD-hot: the walk is pure RNG cost, and the multi-stream draw
    /// gather scales with cohort width.
    fn kernel_class(&self) -> mlss_core::width::KernelClass {
        mlss_core::width::KernelClass::SimdHot
    }
}

/// Per-`θ` constants of the walk's exponential tilt: proposal
/// probabilities `q ∝ (up·e^θ, down·e^−θ, stay)` and the per-branch log
/// likelihood-ratios. Computed with the same expressions in the scalar
/// and batched tilted steps, so both paths share every bit.
struct WalkTilt {
    /// Threshold for a +1 step under the proposal.
    q_up: f64,
    /// Threshold for a ±1 step under the proposal.
    q_updown: f64,
    /// `ln Z(θ)` — the common part of each branch's log-weight.
    ln_z: f64,
}

impl WalkTilt {
    fn new(walk: &RandomWalk, theta: f64) -> Self {
        let et = theta.exp();
        let zu = walk.up * et;
        let zd = walk.down / et;
        let stay = 1.0 - walk.up - walk.down;
        let z = zu + zd + stay;
        Self {
            q_up: zu / z,
            q_updown: (zu + zd) / z,
            ln_z: z.ln(),
        }
    }

    /// Advance one position by the tilted proposal; returns
    /// `(next, log-weight increment)`.
    #[inline]
    fn step(&self, walk: &RandomWalk, s: i64, theta: f64, u: f64) -> (i64, f64) {
        let (mut next, log_w) = if u < self.q_up {
            (s + 1, self.ln_z - theta)
        } else if u < self.q_updown {
            (s - 1, self.ln_z + theta)
        } else {
            (s, self.ln_z)
        };
        if walk.reflect_at_zero && next < 0 {
            next = 0;
        }
        (next, log_w)
    }
}

impl TiltableModel for RandomWalk {
    /// Exponential tilt: step probabilities reweighted to
    /// `q ∝ (up·e^θ, down·e^−θ, stay)`, the classical change of measure
    /// for discrete walks. One uniform per step, exactly like the plain
    /// walk; the log-weight is `ln Z(θ) − θ·(step)`.
    fn step_tilted(&self, state: &i64, _t: Time, theta: f64, rng: &mut SimRng) -> (i64, f64) {
        let tilt = WalkTilt::new(self, theta);
        tilt.step(self, *state, theta, rng.random::<f64>())
    }

    /// Native tilted batch kernel: vectorized draw gather, per-lane
    /// threshold compare — bit-identical to the scalar tilted step.
    fn step_tilted_batch(
        &self,
        lanes: &mut [i64],
        log_ws: &mut [f64],
        _ts: &[Time],
        theta: f64,
        rngs: &mut [SimRng],
        alive: &[usize],
    ) {
        let tilt = WalkTilt::new(self, theta);
        if !simd::pipeline_engaged(alive.len()) {
            for &i in alive {
                let (next, dlw) = tilt.step(self, lanes[i], theta, rngs[i].random::<f64>());
                lanes[i] = next;
                log_ws[i] += dlw;
            }
            return;
        }
        simd::with_scratch(|sc| {
            chacha::gather_u64(rngs, alive, 1, sc);
            sc.f1.clear();
            sc.f1.resize(alive.len(), 0.0);
            vmath::u01_slice(&sc.words, &mut sc.f1);
            for (j, &i) in alive.iter().enumerate() {
                let (next, dlw) = tilt.step(self, lanes[i], theta, sc.f1[j]);
                lanes[i] = next;
                log_ws[i] += dlw;
            }
        })
    }
}

/// Score for walk durability queries: the position.
pub fn position_score(state: &i64) -> f64 {
    *state as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlss_core::model::simulate_path;
    use mlss_core::rng::rng_from_seed;

    #[test]
    fn symmetric_walk_has_zero_drift() {
        let w = RandomWalk::new(0.5, 0.5, 0);
        assert_eq!(w.drift(), 0.0);
        let p = simulate_path(&w, 10_000, &mut rng_from_seed(1));
        let last = *p.last().unwrap();
        // Final position within 4 standard deviations of 0.
        assert!(last.abs() < 400, "last = {last}");
    }

    #[test]
    fn reflection_keeps_walk_nonnegative() {
        let w = RandomWalk::new(0.2, 0.6, 1).reflected();
        let p = simulate_path(&w, 2000, &mut rng_from_seed(2));
        assert!(p.states.iter().all(|&s| s >= 0));
    }

    #[test]
    fn lazy_steps_occur() {
        let w = RandomWalk::new(0.2, 0.2, 0);
        let p = simulate_path(&w, 1000, &mut rng_from_seed(3));
        let stays = p.states.windows(2).filter(|ab| ab[0] == ab[1]).count();
        // 60% of steps are stays.
        assert!(stays > 400 && stays < 800, "stays = {stays}");
    }

    #[test]
    fn empirical_drift() {
        let w = RandomWalk::new(0.6, 0.2, 0);
        let p = simulate_path(&w, 5000, &mut rng_from_seed(4));
        let last = *p.last().unwrap() as f64;
        let expect = 0.4 * 5000.0;
        assert!((last - expect).abs() < 300.0, "last {last} vs {expect}");
    }

    #[test]
    #[should_panic]
    fn rejects_overfull_probabilities() {
        RandomWalk::new(0.7, 0.6, 0);
    }
}
