//! Integer random walks (§2.2 "Analytical Solution").
//!
//! A lazy ±1 walk with optional absorption at 0 — the gambler's-ruin
//! process. Random walks admit exact first-hitting answers
//! (`mlss-analytic::walk`), making them the primary validation substrate
//! for estimator unbiasedness.

use mlss_core::model::{SimulationModel, Time};
use mlss_core::rng::SimRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// A lazy integer random walk.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomWalk {
    /// Probability of a +1 step.
    pub up: f64,
    /// Probability of a −1 step (stay put otherwise).
    pub down: f64,
    /// Starting position.
    pub start: i64,
    /// Reflect at zero (positions never go negative) when true; otherwise
    /// the walk is free.
    pub reflect_at_zero: bool,
}

impl RandomWalk {
    /// New walk; `up + down` must not exceed 1.
    pub fn new(up: f64, down: f64, start: i64) -> Self {
        assert!(up >= 0.0 && down >= 0.0 && up + down <= 1.0 + 1e-12);
        Self {
            up,
            down,
            start,
            reflect_at_zero: false,
        }
    }

    /// Enable reflection at zero.
    pub fn reflected(mut self) -> Self {
        self.reflect_at_zero = true;
        self
    }

    /// Per-step drift `up − down`.
    pub fn drift(&self) -> f64 {
        self.up - self.down
    }
}

impl SimulationModel for RandomWalk {
    type State = i64;

    fn initial_state(&self) -> i64 {
        self.start
    }

    fn step(&self, state: &i64, _t: Time, rng: &mut SimRng) -> i64 {
        let u = rng.random::<f64>();
        let mut next = if u < self.up {
            state + 1
        } else if u < self.up + self.down {
            state - 1
        } else {
            *state
        };
        if self.reflect_at_zero && next < 0 {
            next = 0;
        }
        next
    }

    /// Native batch kernel: contiguous `i64` lanes updated in place with
    /// the branch thresholds hoisted out of the loop. Per-lane draws are
    /// identical to the scalar `step`.
    fn step_batch(&self, lanes: &mut [i64], _ts: &[Time], rngs: &mut [SimRng], alive: &[usize]) {
        let stay = self.up + self.down;
        for &i in alive {
            let u = rngs[i].random::<f64>();
            let s = lanes[i];
            let mut next = if u < self.up {
                s + 1
            } else if u < stay {
                s - 1
            } else {
                s
            };
            if self.reflect_at_zero && next < 0 {
                next = 0;
            }
            lanes[i] = next;
        }
    }
}

/// Score for walk durability queries: the position.
pub fn position_score(state: &i64) -> f64 {
    *state as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlss_core::model::simulate_path;
    use mlss_core::rng::rng_from_seed;

    #[test]
    fn symmetric_walk_has_zero_drift() {
        let w = RandomWalk::new(0.5, 0.5, 0);
        assert_eq!(w.drift(), 0.0);
        let p = simulate_path(&w, 10_000, &mut rng_from_seed(1));
        let last = *p.last().unwrap();
        // Final position within 4 standard deviations of 0.
        assert!(last.abs() < 400, "last = {last}");
    }

    #[test]
    fn reflection_keeps_walk_nonnegative() {
        let w = RandomWalk::new(0.2, 0.6, 1).reflected();
        let p = simulate_path(&w, 2000, &mut rng_from_seed(2));
        assert!(p.states.iter().all(|&s| s >= 0));
    }

    #[test]
    fn lazy_steps_occur() {
        let w = RandomWalk::new(0.2, 0.2, 0);
        let p = simulate_path(&w, 1000, &mut rng_from_seed(3));
        let stays = p.states.windows(2).filter(|ab| ab[0] == ab[1]).count();
        // 60% of steps are stays.
        assert!(stays > 400 && stays < 800, "stays = {stays}");
    }

    #[test]
    fn empirical_drift() {
        let w = RandomWalk::new(0.6, 0.2, 0);
        let p = simulate_path(&w, 5000, &mut rng_from_seed(4));
        let last = *p.last().unwrap() as f64;
        let expect = 0.4 * 5000.0;
        assert!((last - expect).abs() < 300.0, "last {last} vs {expect}");
    }

    #[test]
    #[should_panic]
    fn rejects_overfull_probabilities() {
        RandomWalk::new(0.7, 0.6, 0);
    }
}
