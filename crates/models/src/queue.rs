//! Tandem queue model (§6, model (1), Figure 4).
//!
//! Two queues in series: customers arrive at Queue 1 as a Poisson process,
//! are served with exponential service times, proceed to Queue 2, are
//! served again, and leave. The durability query scores the state by the
//! number of customers in Queue 2.
//!
//! The underlying process is a continuous-time Markov chain; one
//! invocation of the simulation procedure `g` advances it by **one unit of
//! time** (running the embedded event loop with exponential clocks) and
//! returns the state observed at the next integer timestamp — the paper's
//! discrete-time view of the system.
//!
//! Parameter note: the paper writes `Exp(μ1)`, `μ1 = 2` for services. With
//! rate-2 services the system is ρ = 0.25-utilized and Queue 2 essentially
//! never reaches the paper's thresholds; with **mean-2** services (rate
//! 0.5, matching the arrival rate 0.5) the queue is critically loaded and
//! the Table 2/3 probability bands are reachable. We therefore read
//! `Exp(2)` as mean-2 service times; `TandemQueue::paper_default()`
//! encodes that reading (see DESIGN.md, substitution 4).

use mlss_core::model::{SimulationModel, Time};
use mlss_core::rng::SimRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// State of the tandem system: queue lengths including in-service
/// customers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueState {
    /// Customers in Queue 1 (waiting + in service).
    pub q1: u32,
    /// Customers in Queue 2 (waiting + in service).
    pub q2: u32,
}

/// The tandem queue simulation model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TandemQueue {
    /// Poisson arrival rate λ into Queue 1 (events per unit time).
    pub arrival_rate: f64,
    /// Service rate of Queue 1 (1 / mean service time).
    pub service_rate1: f64,
    /// Service rate of Queue 2.
    pub service_rate2: f64,
}

impl TandemQueue {
    /// New tandem queue; all rates must be positive and finite.
    pub fn new(arrival_rate: f64, service_rate1: f64, service_rate2: f64) -> Self {
        for r in [arrival_rate, service_rate1, service_rate2] {
            assert!(r.is_finite() && r > 0.0, "rates must be positive, got {r}");
        }
        Self {
            arrival_rate,
            service_rate1,
            service_rate2,
        }
    }

    /// The paper's experimental setting: λ = 0.5 arrivals/unit, mean-2
    /// (rate 0.5) services at both queues — a critically loaded system.
    pub fn paper_default() -> Self {
        Self::new(0.5, 0.5, 0.5)
    }

    /// Advance the embedded CTMC by one unit of time.
    fn advance_unit(&self, state: &QueueState, rng: &mut SimRng) -> QueueState {
        let mut q1 = state.q1;
        let mut q2 = state.q2;
        let mut remaining = 1.0_f64;
        loop {
            let r1 = if q1 > 0 { self.service_rate1 } else { 0.0 };
            let r2 = if q2 > 0 { self.service_rate2 } else { 0.0 };
            let total = self.arrival_rate + r1 + r2;
            // Memorylessness lets us resample all clocks after every event.
            let dt = -(1.0 - rng.random::<f64>()).ln() / total;
            if dt >= remaining {
                break;
            }
            remaining -= dt;
            let u = rng.random::<f64>() * total;
            if u < self.arrival_rate {
                q1 += 1;
            } else if u < self.arrival_rate + r1 {
                q1 -= 1;
                q2 += 1;
            } else {
                q2 -= 1;
            }
        }
        QueueState { q1, q2 }
    }
}

impl SimulationModel for TandemQueue {
    type State = QueueState;

    fn initial_state(&self) -> QueueState {
        // The paper always starts with an empty system.
        QueueState { q1: 0, q2: 0 }
    }

    fn step(&self, state: &QueueState, _t: Time, rng: &mut SimRng) -> QueueState {
        self.advance_unit(state, rng)
    }

    /// Native batch kernel. The embedded CTMC event loop is inherently
    /// serial per lane (a data-dependent number of exponential clocks),
    /// so the kernel's only wins are in-place updates over the contiguous
    /// lane array and the skipped per-step dispatch; draws per lane are
    /// identical to the scalar `step`.
    fn step_batch(
        &self,
        lanes: &mut [QueueState],
        _ts: &[Time],
        rngs: &mut [SimRng],
        alive: &[usize],
    ) {
        for &i in alive {
            lanes[i] = self.advance_unit(&lanes[i], &mut rngs[i]);
        }
    }
}

/// The paper's score for queue durability queries: customers in Queue 2.
pub fn queue2_score(state: &QueueState) -> f64 {
    state.q2 as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlss_core::model::simulate_path;
    use mlss_core::rng::rng_from_seed;

    #[test]
    fn starts_empty() {
        let q = TandemQueue::paper_default();
        assert_eq!(q.initial_state(), QueueState { q1: 0, q2: 0 });
    }

    #[test]
    fn paths_are_reproducible() {
        let q = TandemQueue::paper_default();
        let a = simulate_path(&q, 100, &mut rng_from_seed(5));
        let b = simulate_path(&q, 100, &mut rng_from_seed(5));
        assert_eq!(a.states, b.states);
    }

    #[test]
    fn queue_lengths_stay_nonnegative_and_bounded() {
        let q = TandemQueue::paper_default();
        let p = simulate_path(&q, 500, &mut rng_from_seed(1));
        for s in &p.states {
            // u32 enforces non-negativity; sanity-bound explosion.
            assert!(s.q1 < 10_000 && s.q2 < 10_000);
        }
    }

    #[test]
    fn flow_conservation_under_subcritical_load() {
        // With fast services the system drains: average occupancy small.
        let q = TandemQueue::new(0.5, 2.0, 2.0);
        let p = simulate_path(&q, 2000, &mut rng_from_seed(2));
        let avg_q2: f64 = p.states.iter().map(|s| s.q2 as f64).sum::<f64>() / p.states.len() as f64;
        // M/M/1 with ρ = 0.25 has E[N] = ρ/(1−ρ) = 1/3; q2 sees the
        // departure process of q1 (also Poisson by Burke's theorem).
        assert!(avg_q2 < 1.0, "avg q2 = {avg_q2}");
    }

    #[test]
    fn critical_queue_wanders_higher() {
        let q = TandemQueue::paper_default();
        let mut max_q2 = 0;
        for seed in 0..20 {
            let p = simulate_path(&q, 500, &mut rng_from_seed(seed));
            max_q2 = max_q2.max(p.states.iter().map(|s| s.q2).max().unwrap());
        }
        // Critically loaded queue reaches double digits within 500 units
        // on at least one of 20 paths (diffusive scale √t ≈ 22).
        assert!(max_q2 >= 10, "max q2 over 20 paths = {max_q2}");
    }

    #[test]
    fn score_reads_queue2() {
        assert_eq!(queue2_score(&QueueState { q1: 3, q2: 7 }), 7.0);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_rate() {
        TandemQueue::new(0.0, 1.0, 1.0);
    }
}
