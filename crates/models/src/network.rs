//! Generalized queueing networks: a series of `k` stations (the tandem
//! queue is the `k = 2` special case).
//!
//! The paper motivates queueing models as the foundation for birth-death
//! processes, supply chains, and computer-network analysis (§6); this
//! module provides the natural extension users would reach for — an
//! arbitrary-length series line with per-station exponential service
//! rates — while reusing the same unit-time CTMC stepping discipline as
//! [`crate::queue`].

use mlss_core::model::{SimulationModel, Time};
use mlss_core::rng::SimRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// State: the number of customers at each station.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkState {
    /// Queue length (incl. in service) per station.
    pub queues: Vec<u32>,
}

impl NetworkState {
    /// Total customers in the system.
    pub fn total(&self) -> u32 {
        self.queues.iter().sum()
    }

    /// Customers at the last station (the bottleneck the paper's queries
    /// watch).
    pub fn last(&self) -> u32 {
        *self.queues.last().expect("non-empty network")
    }
}

/// A series line of single-server exponential stations fed by Poisson
/// arrivals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesNetwork {
    /// Poisson arrival rate into station 0.
    pub arrival_rate: f64,
    /// Service rate per station.
    pub service_rates: Vec<f64>,
}

impl SeriesNetwork {
    /// New network; all rates must be positive and finite.
    pub fn new(arrival_rate: f64, service_rates: Vec<f64>) -> Self {
        assert!(!service_rates.is_empty(), "need at least one station");
        assert!(
            arrival_rate.is_finite() && arrival_rate > 0.0,
            "arrival rate must be positive"
        );
        for &r in &service_rates {
            assert!(r.is_finite() && r > 0.0, "service rates must be positive");
        }
        Self {
            arrival_rate,
            service_rates,
        }
    }

    /// Number of stations `k`.
    pub fn stations(&self) -> usize {
        self.service_rates.len()
    }

    /// Advance the CTMC by one unit of time.
    fn advance_unit(&self, state: &NetworkState, rng: &mut SimRng) -> NetworkState {
        let mut q = state.queues.clone();
        let k = q.len();
        let mut remaining = 1.0_f64;
        loop {
            let mut total = self.arrival_rate;
            for (i, &rate) in self.service_rates.iter().enumerate() {
                if q[i] > 0 {
                    total += rate;
                }
            }
            let dt = -(1.0 - rng.random::<f64>()).ln() / total;
            if dt >= remaining {
                break;
            }
            remaining -= dt;
            let mut u = rng.random::<f64>() * total;
            if u < self.arrival_rate {
                q[0] += 1;
                continue;
            }
            u -= self.arrival_rate;
            for i in 0..k {
                if q[i] == 0 {
                    continue;
                }
                if u < self.service_rates[i] {
                    q[i] -= 1;
                    if i + 1 < k {
                        q[i + 1] += 1;
                    }
                    break;
                }
                u -= self.service_rates[i];
            }
        }
        NetworkState { queues: q }
    }
}

impl SimulationModel for SeriesNetwork {
    type State = NetworkState;

    fn initial_state(&self) -> NetworkState {
        NetworkState {
            queues: vec![0; self.stations()],
        }
    }

    fn step(&self, state: &NetworkState, _t: Time, rng: &mut SimRng) -> NetworkState {
        self.advance_unit(state, rng)
    }
}

/// Score: customers at the final station.
pub fn last_station_score(state: &NetworkState) -> f64 {
    state.last() as f64
}

/// Score: total customers in the system.
pub fn total_customers_score(state: &NetworkState) -> f64 {
    state.total() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::TandemQueue;
    use mlss_core::model::simulate_path;
    use mlss_core::rng::rng_from_seed;

    #[test]
    fn two_station_network_statistically_matches_tandem_queue() {
        // Same rates, same stepping discipline, same RNG usage pattern ⇒
        // identical distributions; verify by comparing long-run averages.
        let net = SeriesNetwork::new(0.5, vec![0.5, 0.5]);
        let tq = TandemQueue::paper_default();

        let pn = simulate_path(&net, 3000, &mut rng_from_seed(1));
        let pt = simulate_path(&tq, 3000, &mut rng_from_seed(1));
        let avg_n: f64 = pn.states.iter().map(|s| s.last() as f64).sum::<f64>() / 3001.0;
        let avg_t: f64 = pt.states.iter().map(|s| s.q2 as f64).sum::<f64>() / 3001.0;
        // The event-selection order differs slightly, so compare
        // statistically rather than exactly.
        assert!(
            (avg_n - avg_t).abs() < 0.35 * avg_t.max(1.0),
            "network {avg_n} vs tandem {avg_t}"
        );
    }

    #[test]
    fn longer_lines_accumulate_in_later_stations() {
        let net = SeriesNetwork::new(0.8, vec![1.0, 1.0, 0.85]);
        let p = simulate_path(&net, 4000, &mut rng_from_seed(2));
        let avg = |i: usize| -> f64 {
            p.states.iter().map(|s| s.queues[i] as f64).sum::<f64>() / p.states.len() as f64
        };
        // The slowest (last) station has the longest queue on average.
        assert!(avg(2) > avg(0), "bottleneck {} vs first {}", avg(2), avg(0));
    }

    #[test]
    fn customers_conserved_within_step_events() {
        // Departures only happen at the last station; totals never jump
        // by more than arrivals allow.
        let net = SeriesNetwork::new(0.5, vec![0.7, 0.7]);
        let p = simulate_path(&net, 500, &mut rng_from_seed(3));
        for s in &p.states {
            assert!(s.total() < 1000);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_empty_network() {
        SeriesNetwork::new(0.5, vec![]);
    }
}
