//! Crash-recovery identity: the WAL-backed session must make results
//! durable and ASYNC queries resumable **bit-exactly**.
//!
//! The headline suite is a crash-point sweep: for each estimator, a
//! pinned-seed ASYNC query runs to completion once without interference
//! (the reference), then again under a [`CrashPlan`] wedging the log
//! after every possible record count — plus torn-tail variants that
//! leave a partial frame on disk. Each wedged directory is reopened as
//! a fresh session and the recovered `results` row is compared against
//! the reference **bit for bit** (excluding `millis`, the one
//! legitimately non-deterministic column).
//!
//! The per-point expectation is decided by what actually reached disk,
//! not by an assumed record order: if the durable prefix contains the
//! `AsyncSubmit` record, recovery must produce exactly the reference
//! row (replayed from a durable `AsyncDone`, resumed from a checkpoint,
//! or re-run cold from the pinned seed — all three are bit-equivalent);
//! if the submit itself was lost, the reopened session must be empty.
//! Because the sweep covers *every* append boundary it necessarily
//! includes a crash between a shard-store deposit's acceptance and its
//! journaling, and a crash between checkpoint and done — the
//! crash-during-deposit and write-ahead cases fall out of the sweep.

use mlss_db::{Durability, ExecResult, Session, SessionConfig, Value, WalSessionConfig};
use mlss_store::{CrashPlan, Record, Wal, WalOptions};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique, empty WAL directory under the system temp dir.
fn fresh_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "mlss-recovery-{}-{}-{}",
        std::process::id(),
        tag,
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create wal dir");
    dir
}

/// One worker + scalar slices + checkpoint-every-slice: the maximally
/// deterministic scheduler shape, with a checkpoint at every commit so
/// the sweep crosses every record kind.
fn wal_config(dir: &Path, crash: Option<CrashPlan>) -> SessionConfig {
    let mut wal = WalSessionConfig::new(dir).with_checkpoint_every(1);
    if let Some(plan) = crash {
        wal = wal.with_crash(plan);
    }
    SessionConfig {
        workers: 1,
        slice_budget: 512,
        batch_width: 0,
        seed: 7,
        durability: Durability::Wal(wal),
        ..SessionConfig::default()
    }
}

/// The pinned-seed ASYNC statement under test, per requested method.
fn statement(method: &str) -> String {
    let using = if method == "srs" {
        "USING srs".to_string()
    } else {
        format!("USING {method}(levels=3)")
    };
    format!(
        "ESTIMATE DURABILITY OF walk(beta=6) WITHIN 50 {using} \
         TARGET RE 0.15 WITH (seed=4242) ASYNC"
    )
}

/// Submit the statement and block until the scheduler finishes it (the
/// wait also records the in-memory `results` row, like a client poll).
fn submit_and_wait(session: &Session, method: &str) {
    let res = session.execute(&statement(method)).expect("submit");
    let ExecResult::Rows { rows, .. } = res else {
        panic!("ASYNC statement must return a query_id row");
    };
    let id = rows[0][0].as_i64().expect("query_id") as u64;
    session
        .wait(id)
        .expect("wait")
        .expect("submitted id must be known");
}

/// The `results` rows as comparable fingerprints: every column except
/// `millis` (index 8), floats rendered by bit pattern.
fn result_fingerprints(session: &Session) -> Vec<Vec<String>> {
    session
        .db()
        .with_table("results", |t| {
            t.scan()
                .map(|row| {
                    row.iter()
                        .enumerate()
                        .filter(|(c, _)| *c != 8)
                        .map(|(_, v)| match v {
                            Value::Float(f) => format!("f:{:016x}", f.to_bits()),
                            Value::Int(i) => format!("i:{i}"),
                            Value::Text(s) => format!("t:{s}"),
                            other => format!("?:{other:?}"),
                        })
                        .collect()
                })
                .collect()
        })
        .unwrap_or_default()
}

/// The durable record kinds in a (closed) WAL directory, in log order.
/// Raw reopen repairs a torn tail exactly like session recovery would.
fn durable_records(dir: &Path) -> Vec<Record> {
    let (_, replay) = Wal::open(dir, WalOptions::default()).expect("raw wal reopen");
    replay.records
}

/// Short display name of a record's kind (diagnostic output only).
fn record_kind(r: &Record) -> &'static str {
    match r {
        Record::ResultRow(_) => "row",
        Record::PlanEntry { .. } => "plan",
        Record::ShardDeposit { .. } => "deposit",
        Record::AsyncSubmit { .. } => "submit",
        Record::AsyncCheckpoint { .. } => "checkpoint",
        Record::AsyncDone { .. } => "done",
        Record::AsyncEnd { .. } => "end",
        Record::SqlStatement { .. } => "sql",
    }
}

struct Reference {
    /// The single `results` row's bit fingerprint.
    row: Vec<String>,
    /// Total records the uncrashed run appended (the sweep bound).
    records: u64,
}

/// Run the statement once with journaling and no crash plan; capture
/// the row bits and the full record count, and sanity-check that the
/// log exercises every lifecycle kind the sweep is supposed to cross.
fn reference_run(method: &str) -> Reference {
    let dir = fresh_dir(&format!("ref-{method}"));
    let session = Session::new(wal_config(&dir, None)).expect("reference session");
    submit_and_wait(&session, method);
    let rows = result_fingerprints(&session);
    assert_eq!(rows.len(), 1, "{method}: reference run records one row");
    let records = session.wal().expect("journaling on").stats().records;
    drop(session);

    let kinds = durable_records(&dir);
    eprintln!(
        "{method}: {:?}",
        kinds.iter().map(record_kind).collect::<Vec<_>>()
    );
    assert_eq!(kinds.len() as u64, records, "{method}: stats vs replay");
    let has = |pred: fn(&Record) -> bool| kinds.iter().any(pred);
    assert!(
        has(|r| matches!(r, Record::AsyncSubmit { .. })),
        "{method}: reference log must journal the submission"
    );
    assert!(
        has(|r| matches!(r, Record::AsyncCheckpoint { .. })),
        "{method}: checkpoint_every=1 must journal checkpoints"
    );
    assert!(
        has(|r| matches!(r, Record::AsyncDone { .. })),
        "{method}: reference log must journal completion"
    );
    assert!(
        has(|r| matches!(r, Record::ShardDeposit { .. })),
        "{method}: completion must deposit into the shard store — \
         the sweep needs a crash-during-deposit boundary"
    );
    if method != "srs" {
        assert!(
            has(|r| matches!(r, Record::PlanEntry { .. })),
            "{method}: the derived level plan must be journaled"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    Reference {
        row: rows.into_iter().next().unwrap(),
        records,
    }
}

/// One crash point: run wedged, reopen, compare against the reference.
fn check_crash_point(method: &str, reference: &Reference, plan: CrashPlan, label: &str) {
    let dir = fresh_dir(&format!("{method}-{label}"));
    {
        let crashed = Session::new(wal_config(&dir, Some(plan))).expect("crashed session");
        submit_and_wait(&crashed, method);
        // The wedge only stops the log; the in-memory session keeps
        // serving — exactly a process whose death hasn't happened yet.
        assert_eq!(
            result_fingerprints(&crashed).len(),
            1,
            "{method} {label}: live session still answers"
        );
    }

    let submit_durable = durable_records(&dir)
        .iter()
        .any(|r| matches!(r, Record::AsyncSubmit { .. }));
    let done_durable = durable_records(&dir)
        .iter()
        .any(|r| matches!(r, Record::AsyncDone { .. }));

    let recovered_session = Session::new(wal_config(&dir, None)).expect("recovery session");
    let resumed = recovered_session.wait_recovered().expect("wait recovered");
    let rows = result_fingerprints(&recovered_session);

    if submit_durable {
        assert_eq!(rows.len(), 1, "{method} {label}: one recovered row");
        assert_eq!(
            rows[0], reference.row,
            "{method} {label}: recovered row must be bit-identical to the reference"
        );
        // Write-ahead ordering, observed from the wreckage: a durable
        // done is replayed without re-running; a lost done means the
        // query was resubmitted (and still converged to the same bits).
        assert_eq!(
            resumed.len(),
            usize::from(!done_durable),
            "{method} {label}: resubmission iff the done record was lost"
        );
    } else {
        assert!(
            rows.is_empty(),
            "{method} {label}: a lost submission must not resurrect rows"
        );
        assert!(
            resumed.is_empty(),
            "{method} {label}: nothing to resume without a submit record"
        );
    }
    drop(recovered_session);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Sweep every record boundary, plus torn tails at the start, middle,
/// and end of the log (1 byte = inside the length header; 9 bytes =
/// header valid, payload cut).
fn crash_sweep(method: &str) {
    let reference = reference_run(method);
    assert!(
        reference.records >= 3,
        "{method}: the run must span submit + checkpoint + done"
    );
    for k in 0..=reference.records {
        check_crash_point(
            method,
            &reference,
            CrashPlan::after(k),
            &format!("after{k}"),
        );
    }
    for k in [0, reference.records / 2, reference.records] {
        for bytes in [1usize, 9] {
            check_crash_point(
                method,
                &reference,
                CrashPlan::torn(k, bytes),
                &format!("torn{k}x{bytes}"),
            );
        }
    }
}

#[test]
fn srs_crash_sweep_recovers_bit_identically() {
    crash_sweep("srs");
}

#[test]
fn smlss_crash_sweep_recovers_bit_identically() {
    crash_sweep("smlss");
}

#[test]
fn gmlss_crash_sweep_recovers_bit_identically() {
    crash_sweep("gmlss");
}

/// The fourth estimator. Importance sampling is not reachable from the
/// SQL surface, so its recovery contract is pinned at the layer the
/// session builds on: a running IS job's durability checkpoint, pushed
/// through the real record codec and a real on-disk WAL, must resume
/// via [`EstimatorQuery::from_parts`] to the exact bits an undisturbed
/// run produces.
#[test]
fn is_checkpoint_roundtrips_through_the_wal_bit_exactly() {
    use mlss_core::is::{IsEstimator, IsShard, TiltableModel};
    use mlss_core::prelude::*;
    use mlss_core::scheduler::{EstimatorQuery, SliceableQuery};
    use rand::RngExt;

    /// ±1 walk with the classical exponential tilt.
    #[derive(Clone)]
    struct TiltWalk {
        up: f64,
    }
    impl SimulationModel for TiltWalk {
        type State = f64;
        fn initial_state(&self) -> f64 {
            0.0
        }
        fn step(&self, s: &f64, _t: Time, rng: &mut SimRng) -> f64 {
            if rng.random::<f64>() < self.up {
                s + 1.0
            } else {
                s - 1.0
            }
        }
    }
    impl TiltableModel for TiltWalk {
        fn step_tilted(&self, s: &f64, _t: Time, theta: f64, rng: &mut SimRng) -> (f64, f64) {
            let w_up = self.up * theta.exp();
            let w_down = (1.0 - self.up) * (-theta).exp();
            let z = w_up + w_down;
            if rng.random::<f64>() < w_up / z {
                (s + 1.0, z.ln() - theta)
            } else {
                (s - 1.0, z.ln() + theta)
            }
        }
    }

    fn score(s: &f64) -> f64 {
        *s
    }
    type IsJob = EstimatorQuery<TiltWalk, RatioValue<fn(&f64) -> f64>, IsEstimator>;
    let job = |entry: Option<(IsShard, SimRng)>| -> IsJob {
        let model = TiltWalk { up: 0.35 };
        let value_fn = RatioValue::new(score as fn(&f64) -> f64, 8.0);
        let estimator = IsEstimator::new(0.5);
        let control = RunControl::budget(30_000);
        match entry {
            None => EstimatorQuery::from_seed(model, value_fn, 40, estimator, control, 99),
            Some((shard, rng)) => {
                EstimatorQuery::from_parts(model, value_fn, 40, estimator, control, shard, rng)
            }
        }
    };
    let finish = |mut q: IsJob| {
        for _ in 0..1_000 {
            if q.finished() {
                break;
            }
            q.run_slice(2_048);
        }
        assert!(q.finished(), "budget control must terminate");
        q.estimate()
    };

    // Reference: one undisturbed run.
    let reference = finish(job(None));
    assert!(reference.n_roots > 0);

    // "Crashed" run: advance a few slices, capture the durability
    // checkpoint, push it through the real WAL, abandon the job.
    let mut interrupted = job(None);
    for _ in 0..3 {
        interrupted.run_slice(2_048);
    }
    let (method, entry) = interrupted
        .checkpoint()
        .expect("estimator jobs are checkpointable");
    assert_eq!(method, "is");
    let dir = fresh_dir("is-roundtrip");
    {
        let (wal, _) = Wal::open(&dir, WalOptions::default()).expect("wal open");
        let appended = wal
            .append(&Record::AsyncCheckpoint {
                qid: 1,
                method: method.to_string(),
                slices: 3,
                entry,
            })
            .expect("append checkpoint");
        assert!(appended);
    }
    drop(interrupted); // the process "dies" here

    // Recovery: decode the checkpoint from disk and resume from it.
    let records = durable_records(&dir);
    let Some(Record::AsyncCheckpoint { entry, .. }) = records.into_iter().next() else {
        panic!("the checkpoint record must replay");
    };
    let shard = entry
        .shard_as::<IsShard>()
        .expect("is-tagged shard decodes to IsShard")
        .clone();
    let resumed = finish(job(Some((shard, entry.rng.clone()))));

    assert_eq!(reference.tau.to_bits(), resumed.tau.to_bits());
    assert_eq!(reference.variance.to_bits(), resumed.variance.to_bits());
    assert_eq!(reference.steps, resumed.steps);
    assert_eq!(reference.n_roots, resumed.n_roots);
    assert_eq!(reference.hits, resumed.hits);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Plain SQL DDL/DML is journaled **write-behind** (executed first,
/// appended on success), so a crash loses at most the statement whose
/// record never reached disk. The sweep wedges the log after every
/// statement boundary — plus a torn tail — and recovery must restore
/// the user table to exactly the durable prefix's state.
#[test]
fn sql_statement_crash_sweep_restores_user_tables() {
    let stmts = [
        "CREATE TABLE fleet (name TEXT, beta FLOAT)",
        "INSERT INTO fleet VALUES ('ares', 4.0), ('hermes', 6.5)",
        "INSERT INTO fleet VALUES ('zeus', 9.0)",
        "DELETE FROM fleet WHERE name = 'ares'",
    ];
    // `fleet`'s row count after each durable prefix; `None` while the
    // CREATE itself is lost (the table must not resurrect).
    let expected = [None, Some(0), Some(2), Some(3), Some(2)];
    let count = |session: &Session| -> Option<i64> {
        match session.execute("SELECT COUNT(*) FROM fleet") {
            Ok(ExecResult::Rows { rows, .. }) => rows[0][0].as_i64(),
            _ => None,
        }
    };

    let mut plans: Vec<(CrashPlan, u64, String)> = (0..=stmts.len() as u64)
        .map(|k| (CrashPlan::after(k), k, format!("after{k}")))
        .collect();
    // A torn SQL frame is repaired away like any other torn tail: the
    // durable prefix is the records before it.
    plans.push((CrashPlan::torn(2, 9), 2, "torn2x9".to_string()));

    for (plan, durable_prefix, label) in plans {
        let dir = fresh_dir(&format!("sql-{label}"));
        {
            let crashed = Session::new(wal_config(&dir, Some(plan))).expect("crashed session");
            for stmt in &stmts {
                crashed
                    .execute(stmt)
                    .expect("the wedge only stops the log, not execution");
            }
            assert_eq!(
                count(&crashed),
                Some(2),
                "sql {label}: live session sees all four statements"
            );
        }

        let sql_durable = durable_records(&dir)
            .iter()
            .filter(|r| matches!(r, Record::SqlStatement { .. }))
            .count() as u64;
        assert_eq!(
            sql_durable,
            durable_prefix.min(stmts.len() as u64),
            "sql {label}: exactly the prefix reached disk"
        );

        let recovered = Session::new(wal_config(&dir, None)).expect("recovery session");
        assert_eq!(
            count(&recovered),
            expected[durable_prefix as usize].map(|n| n as i64),
            "sql {label}: recovered table state must match the durable prefix"
        );
        drop(recovered);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// SQL statements and estimate results share one log: a session that
/// creates a user table *and* runs a pinned ASYNC estimate recovers
/// both — and a second reopen replays the compacted log identically.
#[test]
fn sql_and_results_recover_together_and_survive_compaction() {
    let dir = fresh_dir("sql-mixed");
    let reference_row;
    {
        let session = Session::new(wal_config(&dir, None)).expect("session");
        session
            .execute("CREATE TABLE notes (k INT, v TEXT)")
            .expect("create");
        session
            .execute("INSERT INTO notes VALUES (1, 'pre-estimate')")
            .expect("insert");
        submit_and_wait(&session, "srs");
        session
            .execute("INSERT INTO notes VALUES (2, 'post-estimate')")
            .expect("insert");
        reference_row = result_fingerprints(&session).remove(0);
    }
    // Two reopens: the second replays the log the first one compacted
    // at startup, so SQL records must survive compaction too.
    for pass in ["reopen", "reopen-after-compaction"] {
        let recovered = Session::new(wal_config(&dir, None)).expect(pass);
        assert!(
            recovered.wait_recovered().expect("recover").is_empty(),
            "{pass}: the query completed before the close"
        );
        let rows = result_fingerprints(&recovered);
        assert_eq!(rows.len(), 1, "{pass}: one results row");
        assert_eq!(rows[0], reference_row, "{pass}: bit-identical results");
        let ExecResult::Rows { rows, .. } = recovered
            .execute("SELECT v FROM notes ORDER BY k")
            .expect("select")
        else {
            panic!("SELECT returns rows");
        };
        let texts: Vec<_> = rows.iter().filter_map(|r| r[0].as_str()).collect();
        assert_eq!(
            texts,
            vec!["pre-estimate", "post-estimate"],
            "{pass}: user rows recovered in order"
        );
        drop(recovered);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Pin the `SHOW DIAGNOSTICS` surface a journaling session serves: the
/// exact three-column layout, the per-component blocks in order, and
/// the WAL counter block's full counter set. Monitoring scrapes this
/// shape — changing it is a breaking change and must show up here.
#[test]
fn show_diagnostics_layout_is_pinned_with_a_wal_block() {
    let dir = fresh_dir("diagnostics");
    let session = Session::new(wal_config(&dir, None)).expect("session");
    submit_and_wait(&session, "gmlss");

    let ExecResult::Rows { columns, rows } =
        session.execute("SHOW DIAGNOSTICS").expect("diagnostics")
    else {
        panic!("SHOW DIAGNOSTICS returns rows");
    };
    assert_eq!(columns, vec!["component", "counter", "value"]);
    for row in &rows {
        assert_eq!(row.len(), 3, "every diagnostics row has three cells");
        assert!(matches!(row[0], Value::Text(_)), "component is text");
        assert!(matches!(row[1], Value::Text(_)), "counter is text");
        assert!(matches!(row[2], Value::Float(_)), "value is a float");
    }

    // Component blocks, in serving order.
    let components: Vec<&str> = {
        let mut seen = Vec::new();
        for row in &rows {
            let c = row[0].as_str().unwrap();
            if seen.last() != Some(&c) {
                seen.push(c);
            }
        }
        seen
    };
    assert_eq!(
        components,
        vec![
            "plan_cache",
            "shard_store",
            "scheduler",
            "wal",
            "width_policy",
            "ranking"
        ],
        "journaling sessions serve all six component blocks"
    );

    // The WAL block's counter set, pinned exactly.
    let wal_counters: Vec<&str> = rows
        .iter()
        .filter(|r| r[0].as_str() == Some("wal"))
        .map(|r| r[1].as_str().unwrap())
        .collect();
    assert_eq!(
        wal_counters,
        vec![
            "wal_records",
            "wal_bytes",
            "wal_fsyncs",
            "wal_compactions",
            "wal_replayed_records",
            "wal_replayed_rows",
            "wal_resumed",
            "wal_truncated",
        ],
        "the WAL counter block is part of the serving contract"
    );
    let lookup = |name: &str| {
        rows.iter()
            .find(|r| r[0].as_str() == Some("wal") && r[1].as_str() == Some(name))
            .and_then(|r| r[2].as_f64())
            .unwrap()
    };
    assert!(lookup("wal_records") >= 3.0, "the run journaled records");
    assert!(lookup("wal_fsyncs") >= 1.0, "FsyncPolicy::Always fsyncs");
    assert_eq!(lookup("wal_truncated"), 0.0, "clean log, no repair");
    drop(session);
    let _ = std::fs::remove_dir_all(&dir);
}
