//! Cross-crate unbiasedness validation — the empirical counterpart of
//! Propositions 1 and 2: SRS, s-MLSS, and g-MLSS estimates must all agree
//! with *exact* hitting probabilities computed by `mlss-analytic`.

use mlss_analytic::{hitting_probability, walk_hitting_probability, WalkSpec};
use mlss_core::prelude::*;
use mlss_core::smlss::{SMlssConfig, SMlssSampler};
use mlss_models::{position_score, MarkovChain, RandomWalk};

/// Tolerance: estimate must sit within `z` standard errors of the truth.
fn assert_within(tau_hat: f64, variance: f64, truth: f64, z: f64, label: &str) {
    let se = variance.max(0.0).sqrt();
    let diff = (tau_hat - truth).abs();
    assert!(
        diff <= z * se + 1e-4,
        "{label}: estimate {tau_hat} vs truth {truth} (|diff| {diff} > {z}·se {se})"
    );
}

/// Shared fixture: birth-death chain whose durability answer is exact.
fn chain() -> (MarkovChain, f64) {
    let chain = MarkovChain::birth_death(25, 0.3, 0.35, 2);
    let truth = hitting_probability(chain.rows(), |j| j >= 14, chain.initial(), 120);
    (chain, truth)
}

#[test]
fn srs_matches_exact_markov_answer() {
    let (chain, truth) = chain();
    assert!(truth > 1e-4 && truth < 0.2, "fixture sanity: {truth}");
    let score = |s: &usize| *s as f64;
    let vf = RatioValue::new(score, 14.0);
    let problem = Problem::new(&chain, &vf, 120);
    let res = SrsSampler::new(RunControl::budget(4_000_000)).run(problem, &mut rng_from_seed(1));
    assert_within(res.estimate.tau, res.estimate.variance, truth, 4.0, "SRS");
}

#[test]
fn smlss_matches_exact_markov_answer() {
    let (chain, truth) = chain();
    let score = |s: &usize| *s as f64;
    let vf = RatioValue::new(score, 14.0);
    let problem = Problem::new(&chain, &vf, 120);
    // Boundaries aligned to attainable score values k/14; the chain moves
    // one state per step, so no level skipping occurs and Proposition 1
    // applies.
    let plan = PartitionPlan::new(vec![5.0 / 14.0, 8.0 / 14.0, 11.0 / 14.0]).unwrap();
    let cfg = SMlssConfig::new(plan, RunControl::budget(4_000_000)).with_ratio(3);
    let res = SMlssSampler::new(cfg).run(problem, &mut rng_from_seed(2));
    assert_within(
        res.estimate.tau,
        res.estimate.variance,
        truth,
        4.0,
        "s-MLSS",
    );
}

#[test]
fn gmlss_matches_exact_markov_answer() {
    let (chain, truth) = chain();
    let score = |s: &usize| *s as f64;
    let vf = RatioValue::new(score, 14.0);
    let problem = Problem::new(&chain, &vf, 120);
    let plan = PartitionPlan::new(vec![0.3, 0.55, 0.8]).unwrap();
    let cfg = GMlssConfig::new(plan, RunControl::budget(4_000_000)).with_ratio(3);
    let res = GMlssSampler::new(cfg).run(problem, &mut rng_from_seed(3));
    assert_within(
        res.estimate.tau,
        res.estimate.variance,
        truth,
        4.0,
        "g-MLSS",
    );
}

#[test]
fn gmlss_matches_exact_walk_answer() {
    // Reflected lazy walk, exact DP truth.
    let walk = RandomWalk::new(0.25, 0.40, 0).reflected();
    let spec = WalkSpec {
        up: 0.25,
        down: 0.40,
        start: 0,
        floor: Some(0),
    };
    let target = 12;
    let horizon = 200;
    let truth = walk_hitting_probability(spec, target, horizon);
    assert!(truth > 1e-4 && truth < 0.05, "fixture sanity: {truth}");

    let vf = RatioValue::new(position_score, target as f64);
    let problem = Problem::new(&walk, &vf, horizon);
    let plan = PartitionPlan::new(vec![0.25, 0.5, 0.75]).unwrap();
    let cfg = GMlssConfig::new(plan, RunControl::budget(6_000_000)).with_ratio(3);
    let res = GMlssSampler::new(cfg).run(problem, &mut rng_from_seed(4));
    assert_within(
        res.estimate.tau,
        res.estimate.variance,
        truth,
        4.0,
        "g-MLSS walk",
    );
}

#[test]
fn srs_equals_mlss_with_ratio_one_exactly() {
    // With r = 1 and the same seed, MLSS spends its budget on plain root
    // paths; the estimator reduces to N_m / N_0 (§3.1).
    let walk = RandomWalk::new(0.3, 0.3, 0).reflected();
    let vf = RatioValue::new(position_score, 6.0);
    let problem = Problem::new(&walk, &vf, 60);
    let plan = PartitionPlan::new(vec![0.5]).unwrap();
    let cfg = SMlssConfig::new(plan, RunControl::budget(500_000)).with_ratio(1);
    let res = SMlssSampler::new(cfg).run(problem, &mut rng_from_seed(5));
    let est = res.estimate;
    assert!((est.tau - est.hits as f64 / est.n_roots as f64).abs() < 1e-15);
}

#[test]
fn estimates_are_probabilities() {
    let (chain, _) = chain();
    let score = |s: &usize| *s as f64;
    let vf = RatioValue::new(score, 14.0);
    let problem = Problem::new(&chain, &vf, 120);
    for seed in 0..5 {
        let plan = PartitionPlan::uniform(4);
        let cfg = GMlssConfig::new(plan, RunControl::budget(100_000));
        let res = GMlssSampler::new(cfg).run(problem, &mut rng_from_seed(seed));
        assert!((0.0..=1.0).contains(&res.estimate.tau));
        for pi in &res.pi_hats {
            assert!((0.0..=1.0).contains(pi), "π̂ = {pi}");
        }
    }
}

#[test]
fn start_above_first_levels_stays_unbiased() {
    // The CPP starts at u = 15; with β = 37 the initial value function is
    // f₀ ≈ 0.41, above several boundaries of a low plan. Both samplers
    // must still agree with SRS (regression test for the t = 0 crossing
    // accounting).
    use mlss_models::{surplus_score, CompoundPoisson};
    let model = CompoundPoisson::paper_default();
    let vf = RatioValue::new(surplus_score, 37.0);
    let problem = Problem::new(&model, &vf, 200);

    let srs = SrsSampler::new(RunControl::budget(2_000_000)).run(problem, &mut rng_from_seed(61));

    // Plan with boundaries straddling f₀ = 0.405.
    let plan = PartitionPlan::new(vec![0.2, 0.3, 0.6, 0.8]).unwrap();
    let g_cfg = GMlssConfig::new(plan.clone(), RunControl::budget(2_000_000)).with_ratio(3);
    let g = GMlssSampler::new(g_cfg).run(problem, &mut rng_from_seed(62));
    assert!(g.estimate.tau > 0.0, "g-MLSS must not collapse to zero");
    let diff = (srs.estimate.tau - g.estimate.tau).abs();
    let tol = 5.0 * (srs.estimate.variance + g.estimate.variance.max(0.0)).sqrt();
    assert!(
        diff <= tol.max(5e-3),
        "SRS {} vs g-MLSS {} with start above L0",
        srs.estimate.tau,
        g.estimate.tau
    );

    let s_cfg = SMlssConfig::new(plan, RunControl::budget(2_000_000)).with_ratio(3);
    let s = SMlssSampler::new(s_cfg).run(problem, &mut rng_from_seed(63));
    assert!(s.estimate.tau > 0.0, "s-MLSS must not collapse to zero");
    let diff = (srs.estimate.tau - s.estimate.tau).abs();
    let tol = 5.0 * (srs.estimate.variance + s.estimate.variance.max(0.0)).sqrt();
    assert!(
        diff <= tol.max(8e-3),
        "SRS {} vs s-MLSS {} with start above L0",
        srs.estimate.tau,
        s.estimate.tau
    );
}

#[test]
fn start_at_target_counts_only_future_hits() {
    // Durability counts t ≥ 1: a process born at the target that
    // immediately falls away and never returns has τ = 0 — both SRS and
    // g-MLSS must agree (regression test for t = 0 handling).
    struct Born;
    impl SimulationModel for Born {
        type State = f64;
        fn initial_state(&self) -> f64 {
            10.0
        }
        fn step(&self, _s: &f64, _t: mlss_core::model::Time, _rng: &mut SimRng) -> f64 {
            0.0
        }
    }
    let model = Born;
    let vf = RatioValue::new(|s: &f64| *s, 5.0);
    let problem = Problem::new(&model, &vf, 10);
    let srs = SrsSampler::new(RunControl::budget(1_000)).run(problem, &mut rng_from_seed(64));
    assert_eq!(srs.estimate.tau, 0.0);
    let cfg = GMlssConfig::new(PartitionPlan::uniform(3), RunControl::budget(1_000));
    let res = GMlssSampler::new(cfg).run(problem, &mut rng_from_seed(64));
    assert_eq!(res.estimate.tau, 0.0);
    assert!(res.estimate.steps >= 1_000);
}
