//! Scalar-vs-batched bit-identity: the frontier's defining property.
//!
//! The batched execution path (`run_chunk_batched` and everything built
//! on it) gives every root path its own RNG stream and commits roots in
//! launch order, so the committed shard is a pure function of the master
//! RNG state and the budget — **independent of the frontier width** and
//! of whether the model runs its native batch kernel or the scalar→batch
//! adapter. These tests pin that property end to end:
//!
//! * every estimator (SRS, s-MLSS, g-MLSS, IS) produces bit-identical
//!   shards at widths {1, 7, 64};
//! * a native batch kernel (compound-Poisson) and the
//!   [`ScalarAdapter`]-forced scalar loop produce bit-identical shards;
//! * a checkpoint cut mid-run (between frontier chunks — chunks always
//!   drain their frontier, so shard + RNG is the complete state) resumes
//!   to the same estimate, both through the sequential driver and
//!   through a scheduler pause/detach/resubmit cycle;
//! * `StepCounter` meters a batch of `k` alive lanes as exactly `k`
//!   invocations of `g`.

use durability_mlss::models::{
    ar_value_score, surplus_score, ArModel, CompoundPoisson, GeometricBrownian, RandomWalk,
};
use mlss_core::estimator::{run_sequential_batched, run_sequential_batched_from};
use mlss_core::is::IsEstimator;
use mlss_core::prelude::*;
use mlss_core::smlss::SMlssConfig;
use rand::RngExt;

const WIDTHS: [usize; 3] = [1, 7, 64];

type CppVf = RatioValue<fn(&f64) -> f64>;

fn cpp_vf(beta: f64) -> CppVf {
    RatioValue::new(surplus_score as fn(&f64) -> f64, beta)
}

type ArVf = RatioValue<fn(&durability_mlss::models::ArState) -> f64>;

fn ar_vf(beta: f64) -> ArVf {
    RatioValue::new(
        ar_value_score as fn(&durability_mlss::models::ArState) -> f64,
        beta,
    )
}

/// Signature of a finished run: counters, point estimate bits, variance
/// bits (final estimate evaluated on a fixed fresh RNG), and the master
/// RNG's post-chunk position.
fn signature<M, V, E>(
    estimator: &E,
    problem: Problem<'_, M, V>,
    budget: u64,
    seed: u64,
    width: usize,
) -> (u64, u64, u64, u64, u64, u64)
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
    E: Estimator<M, V>,
{
    let mut rng = rng_from_seed(seed);
    let mut shard = estimator.shard();
    estimator.run_chunk_batched(problem, &mut shard, budget, &mut rng, width);
    let est = estimator.estimate(&shard, &mut rng_from_seed(0));
    (
        shard.steps(),
        shard.n_roots(),
        est.hits,
        est.tau.to_bits(),
        est.variance.to_bits(),
        rng.random::<u64>(),
    )
}

fn check_widths<M, V, E>(name: &str, estimator: &E, problem: Problem<'_, M, V>, budget: u64)
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
    E: Estimator<M, V>,
{
    let reference = signature(estimator, problem, budget, 9, WIDTHS[0]);
    for &w in &WIDTHS[1..] {
        let sig = signature(estimator, problem, budget, 9, w);
        assert_eq!(reference, sig, "{name}: width {w} diverged from width 1");
    }
}

#[test]
fn srs_is_bit_identical_across_widths() {
    let model = CompoundPoisson::zero_drift_default();
    let v = cpp_vf(40.0);
    check_widths("srs", &SrsEstimator, Problem::new(&model, &v, 80), 60_000);
}

#[test]
fn smlss_is_bit_identical_across_widths() {
    let model = CompoundPoisson::zero_drift_default();
    let v = cpp_vf(40.0);
    let cfg = SMlssConfig::new(
        PartitionPlan::new(vec![0.4, 0.7]).unwrap(),
        RunControl::budget(1),
    );
    check_widths("smlss", &cfg, Problem::new(&model, &v, 80), 60_000);
}

#[test]
fn gmlss_is_bit_identical_across_widths() {
    // CPP jumps skip levels, so this exercises skip events, the ledger,
    // and the bootstrap-bearing shard under reordering.
    let model = CompoundPoisson::zero_drift_default();
    let v = cpp_vf(40.0);
    // Boundaries 4 surplus units apart: the +6/step premium can cross
    // two at once, so level skips genuinely occur.
    let mut cfg = GMlssConfig::new(
        PartitionPlan::new(vec![0.4, 0.5]).unwrap(),
        RunControl::budget(1),
    );
    cfg.keep_ledger = true;
    let problem = Problem::new(&model, &v, 80);
    check_widths("gmlss", &cfg, problem, 60_000);

    // The per-root ledger must match record-for-record, not just in
    // aggregate — bootstrap resampling replays it by index.
    let run_ledger = |width: usize| {
        let mut rng = rng_from_seed(5);
        let mut shard = mlss_core::estimator::shard_for(&cfg, &problem);
        cfg.run_chunk_batched(problem, &mut shard, 40_000, &mut rng, width);
        assert!(shard.skip_events > 0, "test requires observed skipping");
        let n = shard.ledger.n_roots();
        let hits: Vec<u32> = (0..n).map(|i| shard.ledger.root_hits(i)).collect();
        (n, hits, shard.ledger.aggregate())
    };
    let (n1, hits1, agg1) = run_ledger(1);
    let (n64, hits64, agg64) = run_ledger(64);
    assert_eq!(n1, n64);
    assert_eq!(hits1, hits64, "per-root ledger order must match");
    assert_eq!(agg1, agg64);
}

#[test]
fn is_estimator_is_bit_identical_across_widths() {
    // ar's tilted stepping now runs a native batched kernel too.
    let model = ArModel::ar1(0.6, 1.0, 0.0);
    let v = ar_vf(6.0);
    check_widths(
        "is",
        &IsEstimator::new(0.4),
        Problem::new(&model, &v, 60),
        50_000,
    );
}

#[test]
fn is_estimator_is_bit_identical_across_widths_on_native_tilted_kernels() {
    // The PR-5 native `step_tilted_batch` kernels (cpp, walk, gbm on the
    // vectorized draw pipeline): the IS estimator must stay a pure
    // function of (master RNG, budget) at every width.
    let cpp = CompoundPoisson::zero_drift_default();
    let v = cpp_vf(40.0);
    check_widths(
        "is/cpp",
        &IsEstimator::new(0.3),
        Problem::new(&cpp, &v, 80),
        50_000,
    );

    let walk = RandomWalk::new(0.3, 0.3, 0);
    type WalkVf = RatioValue<fn(&i64) -> f64>;
    fn walk_score(s: &i64) -> f64 {
        *s as f64
    }
    let wv: WalkVf = RatioValue::new(walk_score as fn(&i64) -> f64, 10.0);
    check_widths(
        "is/walk",
        &IsEstimator::new(0.4),
        Problem::new(&walk, &wv, 60),
        50_000,
    );

    let gbm = GeometricBrownian::goog_like();
    let gv = cpp_vf(600.0);
    check_widths(
        "is/gbm",
        &IsEstimator::new(0.6),
        Problem::new(&gbm, &gv, 50),
        50_000,
    );
}

#[test]
fn is_mid_run_checkpoint_resumes_to_the_same_estimate() {
    // Satellite: the one estimator the resume tests used to exercise
    // only through the adapter — cut a checkpoint between batched IS
    // chunks on a native tilted kernel and resume through the batched
    // sequential driver.
    let model = CompoundPoisson::zero_drift_default();
    let v = cpp_vf(40.0);
    let problem = Problem::new(&model, &v, 80);
    let control = RunControl::budget(90_000);
    let est = IsEstimator::new(0.3);

    let whole = run_sequential_batched(&est, problem, control, &mut rng_from_seed(21), 32);

    let mut rng = rng_from_seed(21);
    let mut checkpoint = <IsEstimator as Estimator<CompoundPoisson, CppVf>>::shard(&est);
    est.run_chunk_batched(problem, &mut checkpoint, 30_000, &mut rng, 32);
    assert!(checkpoint.steps() > 0 && checkpoint.steps() < 90_000);
    let resumed = run_sequential_batched_from(&est, problem, control, &mut rng, checkpoint, 32);

    assert_eq!(whole.estimate.steps, resumed.estimate.steps);
    assert_eq!(whole.estimate.n_roots, resumed.estimate.n_roots);
    assert_eq!(whole.estimate.hits, resumed.estimate.hits);
    assert_eq!(whole.estimate.tau.to_bits(), resumed.estimate.tau.to_bits());
}

#[test]
fn is_scheduler_batched_slices_match_sequential_and_survive_detach() {
    // IS through the scheduler on a native tilted kernel, with a
    // pause/detach/resubmit cycle mid-run — bit-identical to one
    // uninterrupted batched sequential run.
    let model = CompoundPoisson::zero_drift_default();
    let v = cpp_vf(40.0);
    let problem = Problem::new(&model, &v, 80);
    let control = RunControl::budget(120_000);
    let seed = 33u64;
    let width = 16usize;
    let est = IsEstimator::new(0.3);

    let seq = run_sequential_batched(
        &est,
        problem,
        control,
        &mut StreamFactory::new(seed).stream(0),
        width,
    )
    .estimate;

    let sched = Scheduler::new(SchedulerConfig {
        workers: 1,
        slice_budget: 10_000,
        max_retries: 0,
        batch_width: width,
        tenant_weights: Vec::new(),
    });
    let id = sched.submit(
        CompoundPoisson::zero_drift_default(),
        cpp_vf(40.0),
        80,
        est,
        control,
        seed,
        0,
    );
    loop {
        let p = sched.progress(id).unwrap();
        if p.steps > 0 {
            break;
        }
        std::thread::yield_now();
    }
    sched.pause(id);
    loop {
        if matches!(sched.progress(id).unwrap().status, QueryStatus::Paused) {
            break;
        }
        std::thread::yield_now();
    }
    let job = sched.detach(id).expect("paused job detaches");
    let mid_steps = job.steps();
    assert!(mid_steps > 0 && mid_steps < 120_000, "checkpoint mid-run");
    let id2 = sched.submit_query(job, 0);
    let est_out = *sched.wait(id2).unwrap().estimate().unwrap();

    assert_eq!(est_out.steps, seq.steps);
    assert_eq!(est_out.n_roots, seq.n_roots);
    assert_eq!(est_out.hits, seq.hits);
    assert_eq!(est_out.tau.to_bits(), seq.tau.to_bits());
}

#[test]
fn native_kernel_and_scalar_adapter_agree() {
    // Same estimator, same seed: the model's native batch kernel vs the
    // adapter-forced scalar loop must produce bit-identical shards.
    let native_model = CompoundPoisson::zero_drift_default();
    let adapter_model = ScalarAdapter(CompoundPoisson::zero_drift_default());
    let v = cpp_vf(40.0);
    let cfg = GMlssConfig::new(
        PartitionPlan::new(vec![0.4, 0.7]).unwrap(),
        RunControl::budget(1),
    );
    let native = signature(&cfg, Problem::new(&native_model, &v, 80), 50_000, 3, 64);
    let adapted = signature(&cfg, Problem::new(&adapter_model, &v, 80), 50_000, 3, 64);
    assert_eq!(native, adapted, "native kernel diverged from adapter");
}

#[test]
fn mid_run_checkpoint_resumes_to_the_same_estimate() {
    // Cut a checkpoint between batched chunks and resume through the
    // batched sequential driver: identical to the uninterrupted run.
    let model = CompoundPoisson::zero_drift_default();
    let v = cpp_vf(40.0);
    let problem = Problem::new(&model, &v, 80);
    let control = RunControl::budget(90_000);

    let whole = run_sequential_batched(&SrsEstimator, problem, control, &mut rng_from_seed(11), 32);

    let mut rng = rng_from_seed(11);
    let mut checkpoint = <SrsEstimator as Estimator<CompoundPoisson, CppVf>>::shard(&SrsEstimator);
    SrsEstimator.run_chunk_batched(problem, &mut checkpoint, 30_000, &mut rng, 32);
    assert!(checkpoint.steps() > 0 && checkpoint.steps() < 90_000);
    let resumed =
        run_sequential_batched_from(&SrsEstimator, problem, control, &mut rng, checkpoint, 32);

    assert_eq!(whole.estimate.steps, resumed.estimate.steps);
    assert_eq!(whole.estimate.n_roots, resumed.estimate.n_roots);
    assert_eq!(whole.estimate.hits, resumed.estimate.hits);
    assert_eq!(whole.estimate.tau.to_bits(), resumed.estimate.tau.to_bits());
}

#[test]
fn scheduler_batched_slices_match_sequential_and_survive_detach() {
    // A batched query sliced by the scheduler — including a pause /
    // detach (the checkpoint) / resubmit cycle in the middle — must be
    // bit-identical to one uninterrupted batched sequential run.
    let model = CompoundPoisson::zero_drift_default();
    let v = cpp_vf(40.0);
    let problem = Problem::new(&model, &v, 80);
    let control = RunControl::budget(120_000);
    let seed = 17u64;
    let width = 16usize;

    let seq = run_sequential_batched(
        &SrsEstimator,
        problem,
        control,
        &mut StreamFactory::new(seed).stream(0),
        width,
    )
    .estimate;

    let sched = Scheduler::new(SchedulerConfig {
        workers: 1,
        slice_budget: 10_000,
        max_retries: 0,
        batch_width: width,
        tenant_weights: Vec::new(),
    });
    let id = sched.submit(
        CompoundPoisson::zero_drift_default(),
        cpp_vf(40.0),
        80,
        SrsEstimator,
        control,
        seed,
        0,
    );
    // Let it progress, then checkpoint mid-flight.
    loop {
        let p = sched.progress(id).unwrap();
        if p.steps > 0 {
            break;
        }
        std::thread::yield_now();
    }
    sched.pause(id);
    loop {
        if matches!(sched.progress(id).unwrap().status, QueryStatus::Paused) {
            break;
        }
        std::thread::yield_now();
    }
    let job = sched.detach(id).expect("paused job detaches");
    let mid_steps = job.steps();
    assert!(mid_steps > 0 && mid_steps < 120_000, "checkpoint mid-run");
    let id2 = sched.submit_query(job, 0);
    let est = *sched.wait(id2).unwrap().estimate().unwrap();

    assert_eq!(est.steps, seq.steps);
    assert_eq!(est.n_roots, seq.n_roots);
    assert_eq!(est.hits, seq.hits);
    assert_eq!(est.tau.to_bits(), seq.tau.to_bits());
}

#[test]
fn budget_boundary_clamps_the_final_cohort_width() {
    // Satellite: when the remaining budget pays for fewer roots than the
    // configured width, the batched sequential driver narrows the cohort
    // instead of launching a full frontier of doomed speculation. The
    // StepCounter meters all launched work (committed + discarded); the
    // clamp must cut the discarded share without perturbing the
    // committed shard — results stay bit-identical across widths.
    let budget = 2_000u64;
    let width = 64usize;
    let counted = StepCounter::new(CompoundPoisson::zero_drift_default());
    let v = cpp_vf(40.0);
    let problem = Problem::new(&counted, &v, 80);

    // Unclamped baseline: a raw chunk at width 64 launches the full
    // cohort even though the budget pays for ~25 roots of horizon 80.
    let mut raw =
        <SrsEstimator as Estimator<StepCounter<CompoundPoisson>, CppVf>>::shard(&SrsEstimator);
    SrsEstimator.run_chunk_batched(problem, &mut raw, budget, &mut rng_from_seed(7), width);
    let raw_speculation = counted.steps() - raw.steps();

    // The driver clamps the launch width to ⌈budget / per_root⌉.
    counted.reset();
    let driven = run_sequential_batched(
        &SrsEstimator,
        problem,
        RunControl::budget(budget),
        &mut rng_from_seed(7),
        width,
    );
    let driven_speculation = counted.steps() - driven.shard.steps();

    assert_eq!(
        driven.shard.steps(),
        raw.steps(),
        "clamp must not change committed work"
    );
    assert!(
        driven_speculation < raw_speculation,
        "clamped cohort must speculate less: {driven_speculation} vs {raw_speculation}"
    );

    // And the clamped run stays bit-identical to the width-1 run.
    let model = CompoundPoisson::zero_drift_default();
    let plain = Problem::new(&model, &v, 80);
    let narrow = run_sequential_batched(
        &SrsEstimator,
        plain,
        RunControl::budget(budget),
        &mut rng_from_seed(7),
        1,
    );
    let wide = run_sequential_batched(
        &SrsEstimator,
        plain,
        RunControl::budget(budget),
        &mut rng_from_seed(7),
        width,
    );
    assert_eq!(narrow.estimate.steps, wide.estimate.steps);
    assert_eq!(narrow.estimate.n_roots, wide.estimate.n_roots);
    assert_eq!(narrow.estimate.hits, wide.estimate.hits);
    assert_eq!(narrow.estimate.tau.to_bits(), wide.estimate.tau.to_bits());
}

#[test]
fn step_counter_meters_batches_exactly() {
    let counted = StepCounter::new(CompoundPoisson::zero_drift_default());
    let mut lanes: Vec<f64> = (0..8).map(|_| counted.initial_state()).collect();
    let ts: Vec<Time> = vec![1; 8];
    let mut rngs: Vec<SimRng> = (0..8).map(rng_from_seed).collect();

    // A batch of 5 alive lanes counts exactly 5 invocations of g.
    counted.step_batch(&mut lanes, &ts, &mut rngs, &[0, 2, 3, 5, 7]);
    assert_eq!(counted.steps(), 5);
    counted.step_batch(&mut lanes, &ts, &mut rngs, &[1, 4]);
    assert_eq!(counted.steps(), 7);
    counted.step_batch(&mut lanes, &ts, &mut rngs, &[]);
    assert_eq!(counted.steps(), 7);

    // Through a whole width-1 batched chunk the meter equals the shard's
    // committed step count exactly (no speculation at width 1).
    counted.reset();
    let v = cpp_vf(40.0);
    let problem = Problem::new(&counted, &v, 80);
    let mut shard =
        <SrsEstimator as Estimator<StepCounter<CompoundPoisson>, CppVf>>::shard(&SrsEstimator);
    SrsEstimator.run_chunk_batched(problem, &mut shard, 20_000, &mut rng_from_seed(2), 1);
    assert_eq!(counted.steps(), shard.steps());

    // At width 64 the meter may additionally count discarded speculative
    // work at the chunk boundary, but never less than what committed.
    counted.reset();
    let mut shard64 =
        <SrsEstimator as Estimator<StepCounter<CompoundPoisson>, CppVf>>::shard(&SrsEstimator);
    SrsEstimator.run_chunk_batched(problem, &mut shard64, 20_000, &mut rng_from_seed(2), 64);
    assert!(counted.steps() >= shard64.steps());
    assert_eq!(shard64.steps(), shard.steps(), "widths agree on the shard");
}
