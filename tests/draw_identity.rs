//! The lane-identity harness for the vectorized draw pipeline (PR 5).
//!
//! The SIMD rewrite of the closed-form kernels is only safe to keep
//! iterating on because these properties pin it bit-exactly:
//!
//! * **Kernel identity** — for every model with a native kernel, the
//!   SIMD `step_batch` / `step_tilted_batch` paths produce bit-identical
//!   lane states, log-weights, and per-lane RNG positions to the
//!   [`ScalarAdapter`]-forced scalar loop at widths {1, 3, 8, 64},
//!   under partially-alive masks and mid-batch deaths. (Widths below
//!   the SIMD cohort threshold exercise the small-batch fallback; the
//!   wide ones the vectorized path — both must agree with scalar.)
//! * **Estimator identity** — driving whole estimators (s-MLSS, g-MLSS
//!   with its ledger, SRS, IS) over native-vs-adapter models yields
//!   bit-identical shards: counters, `ExactSum`-backed estimates,
//!   integer-exact `HitMoments`, per-root ledger records.
//! * **vmath conformance** — scalar and SIMD instantiations of
//!   `exp`/`ln`/`cos_tau`/the normal transform are bit-equal over a
//!   seeded grid including ±subnormal and edge inputs, and `exp`/`ln`
//!   are within 2 ULP of the libm reference.
//! * **ChaCha stream equivalence** — the multi-stream block generator
//!   equals N independent scalar `ChaCha12` streams word for word,
//!   across block boundaries and `split_rng` seeds.
//!
//! CI runs this suite (with the rest of the workspace) under
//! `MLSS_SIMD=scalar` and `MLSS_SIMD=sse2` (the backend-matrix job) and
//! under the auto-detected backend (the build-test and scheduler jobs),
//! so "passes on every backend" is pinned for every tested width.

use durability_mlss::models::{
    ar_value_score, surplus_score, ArModel, ArState, CompoundPoisson, GeometricBrownian,
    JumpDistribution, RandomWalk,
};
use mlss_core::is::{IsEstimator, TiltableModel};
use mlss_core::prelude::*;
use mlss_core::simd::{chacha, vmath, Backend, KernelScratch};
use mlss_core::smlss::SMlssConfig;
use rand::RngExt;
use std::fmt::Debug;

const WIDTHS: [usize; 4] = [1, 3, 8, 64];

/// Deterministic evolving alive-set: start full, kill lanes pseudo-
/// randomly mid-run (mid-batch deaths), revive everyone when the cohort
/// runs dry — so every width sees full, partial, and near-empty masks.
fn evolve_alive(alive: &mut Vec<usize>, width: usize, pattern: &mut SimRng) {
    alive.retain(|_| pattern.random::<f64>() > 0.18);
    if alive.is_empty() {
        *alive = (0..width).collect();
    }
}

// ---- kernel-level identity -------------------------------------------------

fn check_step_batch_identity<M>(name: &str, make: impl Fn() -> M)
where
    M: SimulationModel,
    M::State: PartialEq + Debug,
{
    for &width in &WIDTHS {
        let native = make();
        let adapter = ScalarAdapter(make());
        let mut lanes_n: Vec<M::State> = (0..width).map(|_| native.initial_state()).collect();
        let mut lanes_a: Vec<M::State> = (0..width).map(|_| adapter.initial_state()).collect();
        let mut rngs_n: Vec<SimRng> = (0..width).map(|k| rng_from_seed(40 + k as u64)).collect();
        let mut rngs_a = rngs_n.clone();
        let mut alive: Vec<usize> = (0..width).collect();
        let mut pattern = rng_from_seed(7 * width as u64 + 1);
        for step in 0..60u64 {
            let ts: Vec<Time> = vec![step + 1; width];
            native.step_batch(&mut lanes_n, &ts, &mut rngs_n, &alive);
            adapter.step_batch(&mut lanes_a, &ts, &mut rngs_a, &alive);
            evolve_alive(&mut alive, width, &mut pattern);
        }
        assert_eq!(
            lanes_n, lanes_a,
            "{name}: width {width} lane states diverged"
        );
        for k in 0..width {
            assert_eq!(
                rngs_n[k].random::<u64>(),
                rngs_a[k].random::<u64>(),
                "{name}: width {width} lane {k} RNG position diverged"
            );
        }
    }
}

fn check_step_tilted_batch_identity<M>(name: &str, make: impl Fn() -> M, theta: f64)
where
    M: TiltableModel,
    M::State: PartialEq + Debug,
{
    for &width in &WIDTHS {
        let native = make();
        let adapter = ScalarAdapter(make());
        let mut lanes_n: Vec<M::State> = (0..width).map(|_| native.initial_state()).collect();
        let mut lanes_a: Vec<M::State> = (0..width).map(|_| adapter.initial_state()).collect();
        let mut lw_n = vec![0.0f64; width];
        let mut lw_a = vec![0.0f64; width];
        let mut rngs_n: Vec<SimRng> = (0..width).map(|k| rng_from_seed(90 + k as u64)).collect();
        let mut rngs_a = rngs_n.clone();
        let mut alive: Vec<usize> = (0..width).collect();
        let mut pattern = rng_from_seed(11 * width as u64 + 3);
        for step in 0..60u64 {
            let ts: Vec<Time> = vec![step + 1; width];
            native.step_tilted_batch(&mut lanes_n, &mut lw_n, &ts, theta, &mut rngs_n, &alive);
            adapter.step_tilted_batch(&mut lanes_a, &mut lw_a, &ts, theta, &mut rngs_a, &alive);
            evolve_alive(&mut alive, width, &mut pattern);
        }
        assert_eq!(
            lanes_n, lanes_a,
            "{name}: width {width} tilted lanes diverged"
        );
        for k in 0..width {
            assert_eq!(
                lw_n[k].to_bits(),
                lw_a[k].to_bits(),
                "{name}: width {width} lane {k} log-weight diverged"
            );
            assert_eq!(
                rngs_n[k].random::<u64>(),
                rngs_a[k].random::<u64>(),
                "{name}: width {width} lane {k} RNG position diverged (tilted)"
            );
        }
    }
}

#[test]
fn cpp_kernels_are_bit_identical_under_masks() {
    check_step_batch_identity("cpp", CompoundPoisson::paper_default);
    check_step_batch_identity("cpp-zero-drift", CompoundPoisson::zero_drift_default);
    // Exponential jumps exercise the vmath::ln tail of the jump sampler.
    check_step_batch_identity("cpp-exp-jumps", || {
        CompoundPoisson::new(15.0, 4.5, 0.8, JumpDistribution::Exponential { mean: 7.5 })
    });
    check_step_tilted_batch_identity("cpp", CompoundPoisson::zero_drift_default, 0.3);
    check_step_tilted_batch_identity("cpp-neg-tilt", CompoundPoisson::paper_default, -0.2);
}

#[test]
fn walk_kernels_are_bit_identical_under_masks() {
    check_step_batch_identity("walk", || RandomWalk::new(0.3, 0.3, 2).reflected());
    check_step_batch_identity("walk-free", || RandomWalk::new(0.45, 0.35, 0));
    check_step_tilted_batch_identity("walk", || RandomWalk::new(0.3, 0.3, 2).reflected(), 0.4);
    check_step_tilted_batch_identity("walk-free", || RandomWalk::new(0.45, 0.35, 0), -0.25);
}

#[test]
fn gbm_kernels_are_bit_identical_under_masks() {
    check_step_batch_identity("gbm", GeometricBrownian::goog_like);
    check_step_tilted_batch_identity("gbm", GeometricBrownian::goog_like, 0.5);
}

#[test]
fn ar_tilted_kernel_is_bit_identical_under_masks() {
    check_step_tilted_batch_identity(
        "ar",
        || ArModel::new(vec![0.5, 0.2, -0.1], 0.4, vec![1.0, 0.5, 0.0]),
        0.35,
    );
}

// ---- estimator-level identity ---------------------------------------------

type CppVf = RatioValue<fn(&f64) -> f64>;

fn cpp_vf(beta: f64) -> CppVf {
    RatioValue::new(surplus_score as fn(&f64) -> f64, beta)
}

type WalkVf = RatioValue<fn(&i64) -> f64>;

fn walk_vf(beta: f64) -> WalkVf {
    fn score(s: &i64) -> f64 {
        *s as f64
    }
    RatioValue::new(score as fn(&i64) -> f64, beta)
}

type ArVf = RatioValue<fn(&ArState) -> f64>;

fn ar_vf(beta: f64) -> ArVf {
    RatioValue::new(ar_value_score as fn(&ArState) -> f64, beta)
}

/// Run a whole chunk and summarize everything the shard exposes:
/// counters, estimate bits (τ̂ and variance ride on `ExactSum` /
/// `HitMoments`), and the master RNG's exit position.
fn shard_signature<M, V, E>(
    estimator: &E,
    problem: Problem<'_, M, V>,
    budget: u64,
    seed: u64,
    width: usize,
) -> (u64, u64, u64, u64, u64, u64)
where
    M: SimulationModel,
    V: ValueFunction<M::State>,
    E: Estimator<M, V>,
{
    let mut rng = rng_from_seed(seed);
    let mut shard = estimator.shard();
    estimator.run_chunk_batched(problem, &mut shard, budget, &mut rng, width);
    let est = estimator.estimate(&shard, &mut rng_from_seed(0));
    (
        shard.steps(),
        shard.n_roots(),
        est.hits,
        est.tau.to_bits(),
        est.variance.to_bits(),
        rng.random::<u64>(),
    )
}

#[test]
fn estimators_agree_native_vs_adapter_at_every_width() {
    // SRS and s-MLSS over the cpp native kernel; SRS over walk and gbm.
    for &width in &WIDTHS {
        let v = cpp_vf(40.0);
        let native = CompoundPoisson::zero_drift_default();
        let adapted = ScalarAdapter(CompoundPoisson::zero_drift_default());
        let cfg = SMlssConfig::new(
            PartitionPlan::new(vec![0.4, 0.7]).unwrap(),
            RunControl::budget(1),
        );
        assert_eq!(
            shard_signature(&cfg, Problem::new(&native, &v, 80), 40_000, 5, width),
            shard_signature(&cfg, Problem::new(&adapted, &v, 80), 40_000, 5, width),
            "smlss/cpp width {width}"
        );
        assert_eq!(
            shard_signature(
                &SrsEstimator,
                Problem::new(&native, &v, 80),
                40_000,
                5,
                width
            ),
            shard_signature(
                &SrsEstimator,
                Problem::new(&adapted, &v, 80),
                40_000,
                5,
                width
            ),
            "srs/cpp width {width}"
        );

        let wv = walk_vf(8.0);
        let w_native = RandomWalk::new(0.35, 0.3, 0).reflected();
        let w_adapted = ScalarAdapter(RandomWalk::new(0.35, 0.3, 0).reflected());
        assert_eq!(
            shard_signature(
                &SrsEstimator,
                Problem::new(&w_native, &wv, 60),
                40_000,
                6,
                width
            ),
            shard_signature(
                &SrsEstimator,
                Problem::new(&w_adapted, &wv, 60),
                40_000,
                6,
                width
            ),
            "srs/walk width {width}"
        );

        let gv = cpp_vf(560.0);
        let g_native = GeometricBrownian::goog_like();
        let g_adapted = ScalarAdapter(GeometricBrownian::goog_like());
        assert_eq!(
            shard_signature(
                &SrsEstimator,
                Problem::new(&g_native, &gv, 40),
                40_000,
                7,
                width
            ),
            shard_signature(
                &SrsEstimator,
                Problem::new(&g_adapted, &gv, 40),
                40_000,
                7,
                width
            ),
            "srs/gbm width {width}"
        );
    }
}

#[test]
fn gmlss_ledger_agrees_native_vs_adapter_record_for_record() {
    // The bootstrap replays the ledger by index: records (not just
    // aggregates) must match between the native SIMD kernel and the
    // adapter, at a width that runs the vectorized path.
    let v = cpp_vf(40.0);
    let mut cfg = GMlssConfig::new(
        PartitionPlan::new(vec![0.4, 0.5]).unwrap(),
        RunControl::budget(1),
    );
    cfg.keep_ledger = true;
    let run = |use_native: bool| {
        let mut rng = rng_from_seed(12);
        if use_native {
            let model = CompoundPoisson::zero_drift_default();
            let problem = Problem::new(&model, &v, 80);
            let mut shard = mlss_core::estimator::shard_for(&cfg, &problem);
            cfg.run_chunk_batched(problem, &mut shard, 40_000, &mut rng, 64);
            let n = shard.ledger.n_roots();
            let hits: Vec<u32> = (0..n).map(|i| shard.ledger.root_hits(i)).collect();
            (n, hits, shard.ledger.aggregate(), shard.tau().to_bits())
        } else {
            let model = ScalarAdapter(CompoundPoisson::zero_drift_default());
            let problem = Problem::new(&model, &v, 80);
            let mut shard = mlss_core::estimator::shard_for(&cfg, &problem);
            cfg.run_chunk_batched(problem, &mut shard, 40_000, &mut rng, 64);
            let n = shard.ledger.n_roots();
            let hits: Vec<u32> = (0..n).map(|i| shard.ledger.root_hits(i)).collect();
            (n, hits, shard.ledger.aggregate(), shard.tau().to_bits())
        }
    };
    assert_eq!(run(true), run(false));
}

#[test]
fn is_estimator_agrees_native_vs_adapter_on_every_tilted_model() {
    for &width in &WIDTHS {
        let v = cpp_vf(40.0);
        let native = CompoundPoisson::zero_drift_default();
        let adapted = ScalarAdapter(CompoundPoisson::zero_drift_default());
        assert_eq!(
            shard_signature(
                &IsEstimator::new(0.3),
                Problem::new(&native, &v, 80),
                30_000,
                8,
                width
            ),
            shard_signature(
                &IsEstimator::new(0.3),
                Problem::new(&adapted, &v, 80),
                30_000,
                8,
                width
            ),
            "is/cpp width {width}"
        );

        let wv = walk_vf(10.0);
        let w_native = RandomWalk::new(0.3, 0.3, 0);
        let w_adapted = ScalarAdapter(RandomWalk::new(0.3, 0.3, 0));
        assert_eq!(
            shard_signature(
                &IsEstimator::new(0.4),
                Problem::new(&w_native, &wv, 60),
                30_000,
                9,
                width
            ),
            shard_signature(
                &IsEstimator::new(0.4),
                Problem::new(&w_adapted, &wv, 60),
                30_000,
                9,
                width
            ),
            "is/walk width {width}"
        );

        let gv = cpp_vf(600.0);
        let g_native = GeometricBrownian::goog_like();
        let g_adapted = ScalarAdapter(GeometricBrownian::goog_like());
        assert_eq!(
            shard_signature(
                &IsEstimator::new(0.6),
                Problem::new(&g_native, &gv, 50),
                30_000,
                10,
                width
            ),
            shard_signature(
                &IsEstimator::new(0.6),
                Problem::new(&g_adapted, &gv, 50),
                30_000,
                10,
                width
            ),
            "is/gbm width {width}"
        );

        let av = ar_vf(6.0);
        let a_native = ArModel::ar1(0.6, 1.0, 0.0);
        let a_adapted = ScalarAdapter(ArModel::ar1(0.6, 1.0, 0.0));
        assert_eq!(
            shard_signature(
                &IsEstimator::new(0.4),
                Problem::new(&a_native, &av, 60),
                30_000,
                11,
                width
            ),
            shard_signature(
                &IsEstimator::new(0.4),
                Problem::new(&a_adapted, &av, 60),
                30_000,
                11,
                width
            ),
            "is/ar width {width}"
        );
    }
}

// ---- vmath conformance ----------------------------------------------------

fn ulp_diff(a: f64, b: f64) -> u64 {
    if a == b {
        return 0;
    }
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    let (ia, ib) = (a.to_bits() as i64, b.to_bits() as i64);
    let ma = if ia < 0 { i64::MIN - ia } else { ia };
    let mb = if ib < 0 { i64::MIN - ib } else { ib };
    ma.abs_diff(mb)
}

/// The seeded conformance grid: dense random coverage plus every edge
/// class — ±subnormals, ±0, ±∞, NaN, overflow/underflow boundaries.
fn conformance_grid() -> Vec<f64> {
    let mut rng = rng_from_seed(2026);
    let mut grid: Vec<f64> = vec![
        0.0,
        -0.0,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::NAN,
        f64::MIN_POSITIVE,
        -f64::MIN_POSITIVE,
        5e-324,
        -5e-324,
        f64::MAX,
        f64::MIN,
        709.782712893384,
        -745.1332191019411,
        1.0,
        -1.0,
        1.0 - 1e-16,
        1.0 + 2e-16,
    ];
    for _ in 0..4_000 {
        // Uniformly spread exponents across the whole double range,
        // both signs, including the subnormal band.
        let sign = if rng.random::<bool>() { 1.0 } else { -1.0 };
        let exp2 = (rng.random::<f64>() - 0.5) * 2160.0;
        grid.push(sign * exp2.exp2() * (1.0 + rng.random::<f64>()));
        grid.push((rng.random::<f64>() - 0.5) * 1500.0);
    }
    grid
}

#[test]
fn vmath_scalar_and_simd_are_bit_equal_on_the_conformance_grid() {
    let grid = conformance_grid();
    let mut words: Vec<u64> = Vec::new();
    let mut rng = rng_from_seed(99);
    for _ in 0..2 * grid.len() {
        words.push(rng.random::<u64>());
    }
    for backend in Backend::available() {
        let mut e = grid.clone();
        vmath::exp_slice_with(backend, &mut e);
        let mut l = grid.clone();
        vmath::ln_slice_with(backend, &mut l);
        let mut c = grid.clone();
        vmath::cos_tau_slice_with(backend, &mut c);
        for (k, &x) in grid.iter().enumerate() {
            assert_eq!(
                e[k].to_bits(),
                vmath::exp(x).to_bits(),
                "{backend} exp({x:e})"
            );
            assert_eq!(
                l[k].to_bits(),
                vmath::ln(x).to_bits(),
                "{backend} ln({x:e})"
            );
            if x.abs() < 2.0f64.powi(50) {
                // cos_tau's magic-number reduction is specified for the
                // draw domain; pin it wherever reduction is defined.
                assert_eq!(
                    c[k].to_bits(),
                    vmath::cos_tau(x).to_bits(),
                    "{backend} cos_tau({x:e})"
                );
            }
        }
        let mut z = vec![0.0; grid.len()];
        vmath::normal_from_words_with(backend, &words, &mut z);
        for (k, zk) in z.iter().enumerate() {
            assert_eq!(
                zk.to_bits(),
                vmath::normal01_words(words[2 * k], words[2 * k + 1]).to_bits(),
                "{backend} normal lane {k}"
            );
        }
        let mut u = vec![0.0; grid.len()];
        vmath::u01_slice_with(backend, &words[..grid.len()], &mut u);
        for (k, uk) in u.iter().enumerate() {
            assert_eq!(
                uk.to_bits(),
                vmath::u01(words[k]).to_bits(),
                "{backend} u01 {k}"
            );
        }
    }
}

#[test]
fn vmath_exp_ln_are_within_two_ulp_of_libm() {
    // The documented ULP budget of the shared polynomial, pinned over a
    // seeded grid of in-range arguments (docs/kernel.md).
    let mut rng = rng_from_seed(77);
    let mut worst_exp = 0u64;
    let mut worst_ln = 0u64;
    for _ in 0..50_000 {
        let x = (rng.random::<f64>() - 0.5) * 1400.0;
        worst_exp = worst_exp.max(ulp_diff(vmath::exp(x), x.exp()));
        let y = ((rng.random::<f64>() - 0.5) * 2100.0).exp2() * (1.0 + rng.random::<f64>());
        worst_ln = worst_ln.max(ulp_diff(vmath::ln(y), y.ln()));
    }
    // NaN / ∞ / negative-domain agreement with libm semantics.
    assert!(vmath::ln(-3.0).is_nan());
    assert_eq!(vmath::exp(f64::NEG_INFINITY), 0.0);
    assert!(worst_exp <= 2, "exp worst error {worst_exp} ULP");
    assert!(worst_ln <= 2, "ln worst error {worst_ln} ULP");
}

// ---- ChaCha stream equivalence --------------------------------------------

#[test]
fn multi_stream_blocks_equal_scalar_streams_word_for_word() {
    // N independent streams from split_rng seeds: draining B blocks per
    // stream through the multi-stream generator must equal the scalar
    // streams' u32 word sequences exactly, across block boundaries.
    for backend in Backend::available() {
        let mut parent = rng_from_seed(314);
        let n = 13;
        let mut streams: Vec<SimRng> = (0..n).map(|_| split_rng(&mut parent)).collect();
        let mut scalars = streams.clone();
        for _round in 0..5 {
            let keys: Vec<[u32; 8]> = streams.iter().map(|r| *r.block_key()).collect();
            let counters: Vec<u64> = streams.iter().map(|r| r.block_counter()).collect();
            let mut blocks = vec![[0u32; 16]; n];
            chacha::compute_blocks_with(backend, &keys, &counters, &mut blocks);
            for (s, block) in streams.iter_mut().zip(&blocks) {
                // Drain whatever remains of the current block first so the
                // scalar stream crosses its boundary in lockstep.
                while s.words_remaining() > 0 {
                    let _ = rand::RngCore::next_u32(s);
                }
                s.install_block(*block);
            }
            for (s, reference) in streams.iter_mut().zip(scalars.iter_mut()) {
                for _ in 0..16 {
                    assert_eq!(
                        rand::RngCore::next_u32(s),
                        rand::RngCore::next_u32(reference),
                        "{backend}: word mismatch"
                    );
                }
            }
        }
    }
}

#[test]
fn gathered_draws_equal_scalar_streams_across_seeds() {
    // The gather front end over split_rng children at staggered
    // positions, interleaved with direct scalar draws: values and
    // stream positions stay in lockstep with pure scalar streams.
    let mut parent_a = rng_from_seed(271);
    let mut parent_b = rng_from_seed(271);
    let n = 11usize;
    let mut gathered: Vec<SimRng> = (0..n).map(|_| split_rng(&mut parent_a)).collect();
    let mut scalar: Vec<SimRng> = (0..n).map(|_| split_rng(&mut parent_b)).collect();
    // Stagger positions so lanes sit at different block offsets.
    for (k, (g, s)) in gathered.iter_mut().zip(scalar.iter_mut()).enumerate() {
        for _ in 0..(k % 5) {
            let _ = g.random::<u64>();
            let _ = s.random::<u64>();
        }
    }
    let lanes: Vec<usize> = (0..n).collect();
    let mut sc = KernelScratch::default();
    let mut pattern = rng_from_seed(4);
    for round in 0..40 {
        let per_lane = 1 + round % 3;
        chacha::gather_u64(&mut gathered, &lanes, per_lane, &mut sc);
        for (j, &i) in lanes.iter().enumerate() {
            for d in 0..per_lane {
                assert_eq!(
                    sc.words[j * per_lane + d],
                    scalar[i].random::<u64>(),
                    "round {round} lane {i} draw {d}"
                );
            }
        }
        // Interleave direct scalar draws on a pseudo-random lane — the
        // gather must keep working from arbitrary positions.
        let pick = pattern.random_range(0..n);
        assert_eq!(
            gathered[pick].random::<u64>(),
            scalar[pick].random::<u64>(),
            "interleaved draw, lane {pick}"
        );
    }
}
