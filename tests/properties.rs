//! Cross-crate property tests on estimator and plan invariants.
//!
//! Earlier revisions used `proptest`; the offline build environment
//! vendors no third-party crates (see `crates/shims/`), so the properties
//! are exercised over deterministic seed/parameter grids instead — same
//! invariants, reproducible counterexamples by construction.

use mlss_core::estimator::run_sequential;
use mlss_core::prelude::*;
use mlss_core::smlss::{SMlssConfig, SMlssSampler};
use mlss_models::{position_score, RandomWalk};
use rand::RngExt;

/// The toy clamp-walk of the paper's running examples: ±0.05 steps on
/// `[0, 1]`, absorbing clamp at the edges, up-probability `up`.
struct ClampWalk {
    up: f64,
}

impl SimulationModel for ClampWalk {
    type State = f64;

    fn initial_state(&self) -> f64 {
        0.0
    }

    fn step(&self, s: &f64, _t: Time, rng: &mut SimRng) -> f64 {
        (s + if rng.random::<f64>() < self.up {
            0.05
        } else {
            -0.05
        })
        .clamp(0.0, 1.0)
    }
}

/// Exponential-family tilt for the clamp walk: shift the up-probability
/// by `theta` and weight each step with the likelihood ratio of the move
/// actually taken.
impl TiltableModel for ClampWalk {
    fn step_tilted(&self, s: &f64, _t: Time, theta: f64, rng: &mut SimRng) -> (f64, f64) {
        let q = (self.up + theta).clamp(1e-6, 1.0 - 1e-6);
        let went_up = rng.random::<f64>() < q;
        let log_w = if went_up {
            (self.up / q).ln()
        } else {
            ((1.0 - self.up) / (1.0 - q)).ln()
        };
        let next = (s + if went_up { 0.05 } else { -0.05 }).clamp(0.0, 1.0);
        (next, log_w)
    }
}

fn clamp_vf() -> RatioValue<fn(&f64) -> f64> {
    fn score(s: &f64) -> f64 {
        *s
    }
    RatioValue::new(score as fn(&f64) -> f64, 1.0)
}

/// Shard merging is associative and order-insensitive: merging N shards
/// in any permutation (and any grouping) yields **bit-identical**
/// estimates. This is the contract the parallel driver's sharded
/// reduction and the scheduler's slice merging rely on — without it,
/// thread scheduling would leak into reported variances. It holds
/// exactly because shard statistics are integer counters, integer-exact
/// `HitMoments`, or full-precision `ExactSum` accumulators (see
/// `mlss_core::stats`).
fn check_merge_permutation_invariance<E>(name: &str, estimator: &E)
where
    E: Estimator<ClampWalk, RatioValue<fn(&f64) -> f64>>,
    E::Shard: Clone,
{
    let model = ClampWalk { up: 0.48 };
    let vf = clamp_vf();
    let problem = Problem::new(&model, &vf, 60);

    // Four shards from four independent streams.
    let shards: Vec<E::Shard> = (0..4u64)
        .map(|k| {
            let mut s = estimator.shard();
            estimator.run_chunk(problem, &mut s, 20_000, &mut rng_from_seed(1_000 + k));
            s
        })
        .collect();

    let estimate_of = |shard: &E::Shard| estimator.estimate(shard, &mut rng_from_seed(0));
    let fold = |order: &[usize]| {
        let mut acc = estimator.shard();
        for &i in order {
            acc.merge(shards[i].clone());
        }
        estimate_of(&acc)
    };

    let reference = fold(&[0, 1, 2, 3]);
    assert!(reference.n_roots > 0, "{name}: shards must be non-trivial");
    let check = |est: Estimate, what: &str| {
        assert_eq!(est.steps, reference.steps, "{name}: steps ({what})");
        assert_eq!(est.n_roots, reference.n_roots, "{name}: roots ({what})");
        assert_eq!(est.hits, reference.hits, "{name}: hits ({what})");
        assert_eq!(
            est.tau.to_bits(),
            reference.tau.to_bits(),
            "{name}: τ̂ not bit-identical ({what}): {} vs {}",
            est.tau,
            reference.tau
        );
        assert_eq!(
            est.variance.to_bits(),
            reference.variance.to_bits(),
            "{name}: variance not bit-identical ({what}): {} vs {}",
            est.variance,
            reference.variance
        );
    };

    // Every permutation of the four shards.
    for a in 0..4usize {
        for b in 0..4 {
            for c in 0..4 {
                for d in 0..4 {
                    let order = [a, b, c, d];
                    let mut seen = [false; 4];
                    order.iter().for_each(|&i| seen[i] = true);
                    if seen != [true; 4] {
                        continue;
                    }
                    check(fold(&order), &format!("permutation {order:?}"));
                }
            }
        }
    }

    // Different groupings: ((0+1)+(2+3)) and (0+(1+(2+3))).
    let balanced = {
        let mut left = shards[0].clone();
        left.merge(shards[1].clone());
        let mut right = shards[2].clone();
        right.merge(shards[3].clone());
        left.merge(right);
        estimate_of(&left)
    };
    check(balanced, "balanced grouping");
    let right_deep = {
        let mut inner = shards[2].clone();
        inner.merge(shards[3].clone());
        let mut mid = shards[1].clone();
        mid.merge(inner);
        let mut out = shards[0].clone();
        out.merge(mid);
        estimate_of(&out)
    };
    check(right_deep, "right-deep grouping");
}

/// Merge permutation/associativity bit-identity for all four estimators.
#[test]
fn shard_merge_is_associative_and_order_insensitive() {
    check_merge_permutation_invariance("srs", &SrsEstimator);
    check_merge_permutation_invariance(
        "smlss",
        &SMlssConfig::new(
            PartitionPlan::new(vec![0.4, 0.7]).unwrap(),
            RunControl::budget(1),
        ),
    );
    // No-skip regime: the deterministic per-root-hit variance applies.
    // (With skips, g-MLSS τ̂ stays bit-identical but the *bootstrap*
    // variance resamples roots by index, which is intentionally
    // order-sensitive — see docs/serving.md.)
    check_merge_permutation_invariance(
        "gmlss",
        &GMlssConfig::new(
            PartitionPlan::new(vec![0.4, 0.7]).unwrap(),
            RunControl::budget(1),
        ),
    );
    check_merge_permutation_invariance("is", &IsEstimator::new(0.02));
}

/// The trait-level unbiasedness property the paper's Propositions 1–2
/// imply: every `Estimator` implementation must agree with the SRS
/// reference within statistical error. Checked at three seeds, with a
/// 5-relative-standard-error tolerance per comparison.
#[test]
fn all_four_estimators_agree_with_srs_within_5_rse() {
    let model = ClampWalk { up: 0.48 };
    let vf = clamp_vf();
    let problem = Problem::new(&model, &vf, 120);
    let budget = RunControl::budget(250_000);

    let smlss = SMlssConfig::new(
        PartitionPlan::new(vec![0.4, 0.7]).unwrap(),
        RunControl::budget(1), // superseded by the driver's control
    );
    let gmlss = GMlssConfig::new(
        PartitionPlan::new(vec![0.4, 0.7]).unwrap(),
        RunControl::budget(1),
    );
    let is = IsEstimator::new(0.02);

    for seed in [11u64, 12, 13] {
        // Independent SRS reference stream per seed.
        let reference = run_sequential(
            &SrsEstimator,
            problem,
            RunControl::budget(500_000),
            &mut rng_from_seed(seed ^ 0xA5A5_0000),
        )
        .estimate;
        assert!(reference.tau > 0.0, "reference run must observe hits");

        let check = |name: &str, est: Estimate| {
            let diff = (est.tau - reference.tau).abs();
            let tol = 5.0 * (est.variance.max(0.0) + reference.variance.max(0.0)).sqrt();
            assert!(
                diff <= tol.max(1e-3),
                "seed {seed}: {name} τ̂={} disagrees with SRS τ̂={} (diff {diff}, tol {tol})",
                est.tau,
                reference.tau
            );
            assert!((0.0..=1.0).contains(&est.tau), "{name}: τ̂ out of [0,1]");
        };

        check(
            "srs",
            run_sequential(&SrsEstimator, problem, budget, &mut rng_from_seed(seed)).estimate,
        );
        check(
            "smlss",
            run_sequential(&smlss, problem, budget, &mut rng_from_seed(seed + 100)).estimate,
        );
        check(
            "gmlss",
            run_sequential(&gmlss, problem, budget, &mut rng_from_seed(seed + 200)).estimate,
        );
        check(
            "is",
            run_sequential(&is, problem, budget, &mut rng_from_seed(seed + 300)).estimate,
        );
    }
}

/// All four estimators also run through the *parallel* driver and still
/// agree with the sequential SRS reference.
#[test]
fn all_four_estimators_run_through_run_parallel() {
    let model = ClampWalk { up: 0.48 };
    let vf = clamp_vf();
    let problem = Problem::new(&model, &vf, 120);
    let cfg = ParallelConfig {
        threads: 2,
        sync_every: 20_000,
        seed: 77,
        bootstrap_resamples: 50,
        batch_width: 0,
    };
    let control = RunControl::budget(200_000);

    let reference = run_sequential(
        &SrsEstimator,
        problem,
        RunControl::budget(500_000),
        &mut rng_from_seed(2024),
    )
    .estimate;

    let check = |name: &str, est: Estimate| {
        assert!(est.steps >= 200_000, "{name}: budget underrun");
        let diff = (est.tau - reference.tau).abs();
        let tol = 5.0 * (est.variance.max(0.0) + reference.variance.max(0.0)).sqrt();
        assert!(
            diff <= tol.max(5e-3),
            "{name} through run_parallel: τ̂={} vs SRS {}",
            est.tau,
            reference.tau
        );
    };

    check(
        "srs",
        run_parallel(problem, &SrsEstimator, control, &cfg).estimate,
    );
    let smlss = SMlssConfig::new(
        PartitionPlan::new(vec![0.4, 0.7]).unwrap(),
        RunControl::budget(1),
    );
    check(
        "smlss",
        run_parallel(problem, &smlss, control, &cfg).estimate,
    );
    let gmlss = GMlssConfig::new(
        PartitionPlan::new(vec![0.4, 0.7]).unwrap(),
        RunControl::budget(1),
    );
    check(
        "gmlss",
        run_parallel(problem, &gmlss, control, &cfg).estimate,
    );
    check(
        "is",
        run_parallel(problem, &IsEstimator::new(0.02), control, &cfg).estimate,
    );
}

/// Any valid plan yields a probability estimate and consistent counters
/// on a random walk (over a grid of plans × seeds × drifts).
#[test]
fn gmlss_estimate_is_probability() {
    let boundary_sets: [&[f64]; 4] = [
        &[0.5],
        &[0.25, 0.55],
        &[0.2, 0.4, 0.6, 0.8],
        &[0.1, 0.65, 0.9],
    ];
    for (i, bs) in boundary_sets.iter().enumerate() {
        for seed in [1u64, 77, 991] {
            let up = 0.25 + 0.05 * i as f64;
            let plan = PartitionPlan::new(bs.to_vec()).unwrap();
            let walk = RandomWalk::new(up, 0.45, 0).reflected();
            let vf = RatioValue::new(position_score, 8.0);
            let problem = Problem::new(&walk, &vf, 50);
            let cfg = GMlssConfig::new(plan, RunControl::budget(20_000));
            let res = GMlssSampler::new(cfg).run(problem, &mut rng_from_seed(seed));
            assert!((0.0..=1.0).contains(&res.estimate.tau));
            assert!(res.estimate.steps >= 20_000);
            for pi in &res.pi_hats {
                assert!((0.0..=1.0).contains(pi));
            }
            // Crossings bounded by r × landings at each level.
            for (c, l) in res.crossings.iter().zip(&res.landings) {
                assert!(*c <= 3 * *l);
            }
        }
    }
}

/// s-MLSS with r = 1 reduces exactly to the SRS estimator form.
#[test]
fn ratio_one_reduces_to_srs() {
    for seed in 0u64..20 {
        let walk = RandomWalk::new(0.35, 0.35, 0).reflected();
        let vf = RatioValue::new(position_score, 6.0);
        let problem = Problem::new(&walk, &vf, 40);
        let plan = PartitionPlan::new(vec![0.5]).unwrap();
        let cfg = SMlssConfig::new(plan, RunControl::budget(10_000)).with_ratio(1);
        let res = SMlssSampler::new(cfg).run(problem, &mut rng_from_seed(seed));
        let est = res.estimate;
        assert!(
            (est.tau - est.hits as f64 / est.n_roots as f64).abs() < 1e-15,
            "seed {seed}: r=1 estimator must be N_m/N_0"
        );
    }
}

/// Same seed ⇒ identical runs (full determinism across the stack).
#[test]
fn runs_are_deterministic() {
    for seed in [0u64, 3, 59, 140, 199] {
        let walk = RandomWalk::new(0.4, 0.42, 0).reflected();
        let vf = RatioValue::new(position_score, 7.0);
        let problem = Problem::new(&walk, &vf, 60);
        let plan = PartitionPlan::new(vec![0.3, 0.6]).unwrap();
        let run = |s| {
            let cfg = GMlssConfig::new(plan.clone(), RunControl::budget(15_000));
            GMlssSampler::new(cfg).run(problem, &mut rng_from_seed(s))
        };
        let a = run(seed);
        let b = run(seed);
        assert_eq!(a.estimate.tau, b.estimate.tau);
        assert_eq!(a.estimate.steps, b.estimate.steps);
        assert_eq!(a.estimate.hits, b.estimate.hits);
    }
}

/// Hitting probability is monotone in the threshold (estimated with
/// enough budget that orderings hold with margin).
#[test]
fn estimates_monotone_in_threshold() {
    for seed in [7u64, 23, 41] {
        let walk = RandomWalk::new(0.40, 0.42, 0).reflected();
        let run_beta = |beta: f64| {
            let vf = RatioValue::new(position_score, beta);
            let problem = Problem::new(&walk, &vf, 80);
            let cfg = GMlssConfig::new(PartitionPlan::uniform(3), RunControl::budget(150_000));
            GMlssSampler::new(cfg)
                .run(problem, &mut rng_from_seed(seed))
                .estimate
                .tau
        };
        let lo = run_beta(4.0);
        let hi = run_beta(12.0);
        assert!(
            lo >= hi,
            "seed {seed}: τ(β=4)={lo} should be ≥ τ(β=12)={hi}"
        );
    }
}

/// The estimator trait's chunking is invisible: a chunked run and the
/// sequential sampler consume the same RNG stream and produce the same
/// counters.
#[test]
fn chunked_trait_run_matches_sampler_exactly() {
    let model = ClampWalk { up: 0.48 };
    let vf = clamp_vf();
    let problem = Problem::new(&model, &vf, 60);
    let plan = PartitionPlan::new(vec![0.5]).unwrap();
    let cfg = GMlssConfig::new(plan, RunControl::budget(30_000));

    let sampler = GMlssSampler::new(cfg.clone()).run(problem, &mut rng_from_seed(4));
    let trait_run = run_sequential(
        &cfg,
        problem,
        RunControl::budget(30_000),
        &mut rng_from_seed(4),
    );
    assert_eq!(sampler.estimate.steps, trait_run.estimate.steps);
    assert_eq!(sampler.estimate.hits, trait_run.estimate.hits);
    assert_eq!(sampler.estimate.tau, trait_run.estimate.tau);
}
