//! Cross-crate property-based tests (proptest) on estimator and plan
//! invariants.

use mlss_core::prelude::*;
use mlss_core::smlss::{SMlssConfig, SMlssSampler};
use mlss_models::{position_score, RandomWalk};
use proptest::prelude::*;

/// Strategy: a sorted set of 1..=4 distinct interior boundaries.
fn boundaries() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.05f64..0.95, 1..=4).prop_map(|mut v| {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v.dedup_by(|a, b| (*a - *b).abs() < 0.02);
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any valid plan yields a probability estimate and consistent
    /// counters on a random walk.
    #[test]
    fn gmlss_estimate_is_probability(bs in boundaries(), seed in 0u64..1000, up in 0.2f64..0.45) {
        let plan = match PartitionPlan::new(bs) {
            Ok(p) => p,
            Err(_) => return Ok(()), // dedup may have emptied / collided
        };
        let walk = RandomWalk::new(up, 0.45, 0).reflected();
        let vf = RatioValue::new(position_score, 8.0);
        let problem = Problem::new(&walk, &vf, 50);
        let cfg = GMlssConfig::new(plan, RunControl::budget(20_000));
        let res = GMlssSampler::new(cfg).run(problem, &mut rng_from_seed(seed));
        prop_assert!((0.0..=1.0).contains(&res.estimate.tau));
        prop_assert!(res.estimate.steps >= 20_000);
        for pi in &res.pi_hats {
            prop_assert!((0.0..=1.0).contains(pi));
        }
        // Crossings bounded by r × landings at each level.
        for (c, l) in res.crossings.iter().zip(&res.landings) {
            prop_assert!(*c <= 3 * *l);
        }
    }

    /// s-MLSS with r = 1 reduces exactly to the SRS estimator form.
    #[test]
    fn ratio_one_reduces_to_srs(seed in 0u64..500) {
        let walk = RandomWalk::new(0.35, 0.35, 0).reflected();
        let vf = RatioValue::new(position_score, 6.0);
        let problem = Problem::new(&walk, &vf, 40);
        let plan = PartitionPlan::new(vec![0.5]).unwrap();
        let cfg = SMlssConfig::new(plan, RunControl::budget(10_000)).with_ratio(1);
        let res = SMlssSampler::new(cfg).run(problem, &mut rng_from_seed(seed));
        let est = res.estimate;
        prop_assert!((est.tau - est.hits as f64 / est.n_roots as f64).abs() < 1e-15);
    }

    /// Same seed ⇒ identical runs (full determinism across the stack).
    #[test]
    fn runs_are_deterministic(seed in 0u64..200) {
        let walk = RandomWalk::new(0.4, 0.42, 0).reflected();
        let vf = RatioValue::new(position_score, 7.0);
        let problem = Problem::new(&walk, &vf, 60);
        let plan = PartitionPlan::new(vec![0.3, 0.6]).unwrap();
        let run = |s| {
            let cfg = GMlssConfig::new(plan.clone(), RunControl::budget(15_000));
            GMlssSampler::new(cfg).run(problem, &mut rng_from_seed(s))
        };
        let a = run(seed);
        let b = run(seed);
        prop_assert_eq!(a.estimate.tau, b.estimate.tau);
        prop_assert_eq!(a.estimate.steps, b.estimate.steps);
        prop_assert_eq!(a.estimate.hits, b.estimate.hits);
    }

    /// Hitting probability is monotone in the threshold (estimated with
    /// enough budget that orderings hold with margin).
    #[test]
    fn estimates_monotone_in_threshold(seed in 0u64..50) {
        let walk = RandomWalk::new(0.40, 0.42, 0).reflected();
        let run_beta = |beta: f64| {
            let vf = RatioValue::new(position_score, beta);
            let problem = Problem::new(&walk, &vf, 80);
            let cfg = GMlssConfig::new(PartitionPlan::uniform(3), RunControl::budget(150_000));
            GMlssSampler::new(cfg).run(problem, &mut rng_from_seed(seed)).estimate.tau
        };
        let lo = run_beta(4.0);
        let hi = run_beta(12.0);
        prop_assert!(lo >= hi, "τ(β=4)={lo} should be ≥ τ(β=12)={hi}");
    }
}
