//! Failure-injection and robustness tests: hostile models and degenerate
//! configurations must degrade gracefully, never panic or poison
//! estimates with NaN.

use mlss_core::prelude::*;
use mlss_core::smlss::{SMlssConfig, SMlssSampler};
use rand::RngExt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A model that emits NaN scores after a while.
struct NanModel;

impl SimulationModel for NanModel {
    type State = f64;

    fn initial_state(&self) -> f64 {
        0.0
    }

    fn step(&self, s: &f64, t: Time, _rng: &mut SimRng) -> f64 {
        if t > 5 {
            f64::NAN
        } else {
            s + 0.1
        }
    }
}

/// A model that jumps to ±∞.
struct InfModel;

impl SimulationModel for InfModel {
    type State = f64;

    fn initial_state(&self) -> f64 {
        0.0
    }

    fn step(&self, _s: &f64, t: Time, _rng: &mut SimRng) -> f64 {
        if t.is_multiple_of(2) {
            f64::INFINITY
        } else {
            f64::NEG_INFINITY
        }
    }
}

#[test]
fn nan_scores_do_not_poison_estimates() {
    let model = NanModel;
    let vf = RatioValue::new(|s: &f64| *s, 10.0);
    let problem = Problem::new(&model, &vf, 20);
    let res = SrsSampler::new(RunControl::budget(10_000)).run(problem, &mut rng_from_seed(1));
    assert!(res.estimate.tau.is_finite());
    assert_eq!(res.estimate.tau, 0.0, "NaN never satisfies the query");

    let cfg = GMlssConfig::new(PartitionPlan::uniform(3), RunControl::budget(10_000));
    let res = GMlssSampler::new(cfg).run(problem, &mut rng_from_seed(2));
    assert!(res.estimate.tau.is_finite());
}

#[test]
fn infinite_scores_clamp_into_levels() {
    let model = InfModel;
    let vf = RatioValue::new(|s: &f64| *s, 5.0);
    let problem = Problem::new(&model, &vf, 10);
    let cfg = GMlssConfig::new(PartitionPlan::uniform(4), RunControl::budget(5_000));
    let res = GMlssSampler::new(cfg).run(problem, &mut rng_from_seed(3));
    // +∞ score clamps to f = 1 (target), −∞ to ε: every root hits at t=2.
    assert!((res.estimate.tau - 1.0).abs() < 1e-12);
}

#[test]
fn zero_budget_returns_empty_estimate() {
    let model = NanModel;
    let vf = RatioValue::new(|s: &f64| *s, 10.0);
    let problem = Problem::new(&model, &vf, 20);
    let res = SrsSampler::new(RunControl::budget(0)).run(problem, &mut rng_from_seed(4));
    assert_eq!(res.estimate.n_roots, 0);
    assert_eq!(res.estimate.tau, 0.0);
    assert!(res.estimate.variance.is_infinite());
}

#[test]
fn horizon_one_is_single_step_bernoulli() {
    struct Coin;
    impl SimulationModel for Coin {
        type State = f64;
        fn initial_state(&self) -> f64 {
            0.0
        }
        fn step(&self, _s: &f64, _t: Time, rng: &mut SimRng) -> f64 {
            use rand::RngExt;
            if rng.random::<f64>() < 0.3 {
                1.0
            } else {
                0.0
            }
        }
    }
    let model = Coin;
    let vf = RatioValue::new(|s: &f64| *s, 1.0);
    let problem = Problem::new(&model, &vf, 1);
    let res = SrsSampler::new(RunControl::budget(200_000)).run(problem, &mut rng_from_seed(5));
    assert!((res.estimate.tau - 0.3).abs() < 0.01);
    assert_eq!(res.estimate.steps, res.estimate.n_roots);
}

#[test]
fn smlss_survives_all_boundaries_identical_region() {
    // Degenerate-ish plan: boundaries bunched into a sliver. Must still
    // produce a valid probability without panicking.
    struct Up;
    impl SimulationModel for Up {
        type State = f64;
        fn initial_state(&self) -> f64 {
            0.0
        }
        fn step(&self, s: &f64, _t: Time, rng: &mut SimRng) -> f64 {
            use rand::RngExt;
            (s + rng.random::<f64>() * 0.1).min(1.0)
        }
    }
    let model = Up;
    let vf = RatioValue::new(|s: &f64| *s, 1.0);
    let problem = Problem::new(&model, &vf, 50);
    let plan = PartitionPlan::new(vec![0.8999, 0.9, 0.9001]).unwrap();
    let cfg = SMlssConfig::new(plan, RunControl::budget(50_000)).with_ratio(3);
    let res = SMlssSampler::new(cfg).run(problem, &mut rng_from_seed(6));
    assert!((0.0..=1.0).contains(&res.estimate.tau));
}

// ---- scheduler failure injection ---------------------------------------

/// Silence the default "thread panicked" stderr spew from intentionally
/// injected panics (the scheduler catches them; the noise is misleading).
fn quiet_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !format!("{info}").contains("injected") {
                default(info); // real failures still report normally
            }
        }));
    });
}

/// A well-behaved walk for the victim queries.
#[derive(Clone)]
struct GoodWalk;

impl SimulationModel for GoodWalk {
    type State = f64;

    fn initial_state(&self) -> f64 {
        0.0
    }

    fn step(&self, s: &f64, _t: Time, rng: &mut SimRng) -> f64 {
        (s + if rng.random::<f64>() < 0.48 {
            0.05
        } else {
            -0.05
        })
        .clamp(0.0, 1.0)
    }
}

/// A model that always panics a few steps in — a deterministic bug.
struct AlwaysPanics;

impl SimulationModel for AlwaysPanics {
    type State = f64;

    fn initial_state(&self) -> f64 {
        0.0
    }

    fn step(&self, s: &f64, t: Time, _rng: &mut SimRng) -> f64 {
        assert!(t < 5, "injected failure");
        s + 0.01
    }
}

/// A model that panics exactly once (first trigger), then behaves — a
/// transient fault the retry policy should absorb.
struct PanicsOnce {
    armed: Arc<AtomicBool>,
}

impl SimulationModel for PanicsOnce {
    type State = f64;

    fn initial_state(&self) -> f64 {
        0.0
    }

    fn step(&self, s: &f64, t: Time, rng: &mut SimRng) -> f64 {
        if t == 3 && self.armed.swap(false, Ordering::SeqCst) {
            panic!("injected transient failure");
        }
        (s + if rng.random::<f64>() < 0.48 {
            0.05
        } else {
            -0.05
        })
        .clamp(0.0, 1.0)
    }
}

type Vf = RatioValue<fn(&f64) -> f64>;

fn walk_vf() -> Vf {
    fn score(s: &f64) -> f64 {
        *s
    }
    RatioValue::new(score as fn(&f64) -> f64, 1.0)
}

#[test]
fn scheduler_survives_a_panicking_query() {
    quiet_panics();
    let sched = Scheduler::new(SchedulerConfig {
        workers: 2,
        slice_budget: 8_192,
        max_retries: 1,
        batch_width: 0,
        tenant_weights: Vec::new(),
    });

    // A doomed query between two healthy ones.
    let good_a = sched.submit(
        GoodWalk,
        walk_vf(),
        70,
        SrsEstimator,
        RunControl::budget(60_000),
        5,
        0,
    );
    let doomed = sched.submit(
        AlwaysPanics,
        walk_vf(),
        70,
        SrsEstimator,
        RunControl::budget(60_000),
        6,
        0,
    );
    let good_b = sched.submit(
        GoodWalk,
        walk_vf(),
        70,
        SrsEstimator,
        RunControl::budget(60_000),
        7,
        0,
    );

    // The doomed query fails (after exhausting its retry) without
    // poisoning the pool.
    let status = sched.wait(doomed).unwrap();
    match status {
        QueryStatus::Failed(msg) => assert!(msg.contains("injected failure"), "{msg}"),
        other => panic!("doomed query should fail, got {other:?}"),
    }

    // Both healthy queries finish with *correct* results: bit-identical
    // to an undisturbed sequential run over the same stream.
    for (id, seed) in [(good_a, 5u64), (good_b, 7u64)] {
        let est = *sched.wait(id).unwrap().estimate().expect("healthy query");
        let model = GoodWalk;
        let v = walk_vf();
        let problem = Problem::new(&model, &v, 70);
        let seq = run_sequential(
            &SrsEstimator,
            problem,
            RunControl::budget(60_000),
            &mut StreamFactory::new(seed).stream(0),
        )
        .estimate;
        assert_eq!(est.steps, seq.steps);
        assert_eq!(est.hits, seq.hits);
        assert_eq!(est.tau.to_bits(), seq.tau.to_bits());
    }

    let stats = sched.stats();
    assert!(stats.panics >= 2, "panic + retry panic are both counted");
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.completed, 2);

    // The pool still accepts and completes new work after the failure.
    let after = sched.submit(
        GoodWalk,
        walk_vf(),
        50,
        SrsEstimator,
        RunControl::budget(20_000),
        8,
        0,
    );
    assert!(sched.wait(after).unwrap().estimate().is_some());
}

#[test]
fn transient_panic_is_retried_without_losing_state() {
    quiet_panics();
    let sched = Scheduler::new(SchedulerConfig {
        workers: 1,
        slice_budget: 8_192,
        max_retries: 1,
        batch_width: 0,
        tenant_weights: Vec::new(),
    });
    let armed = Arc::new(AtomicBool::new(true));
    let id = sched.submit(
        PanicsOnce {
            armed: Arc::clone(&armed),
        },
        walk_vf(),
        70,
        SrsEstimator,
        RunControl::budget(40_000),
        11,
        0,
    );
    let est = *sched
        .wait(id)
        .unwrap()
        .estimate()
        .expect("query completes after one retry");
    assert!(est.steps >= 40_000);
    assert!(!armed.load(Ordering::SeqCst), "the fault did fire");
    let progress = sched.progress(id).unwrap();
    assert_eq!(progress.retries, 1, "exactly one retry absorbed the fault");
    assert_eq!(sched.stats().failed, 0);
}

#[test]
fn db_recovers_from_truncated_files() {
    use mlss_db::{execute, load, save, Database};
    let dir = std::env::temp_dir().join(format!("mlss-failure-inj-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Database::new();
    execute(&db, "CREATE TABLE a (x INT)").unwrap();
    execute(&db, "CREATE TABLE b (y INT)").unwrap();
    execute(&db, "INSERT INTO a VALUES (1), (2)").unwrap();
    execute(&db, "INSERT INTO b VALUES (3)").unwrap();
    save(&db, &dir).unwrap();

    // Truncate one table file mid-way (simulated crash during write is
    // impossible thanks to temp+rename, so simulate disk corruption).
    let victim = dir.join("a.table.json");
    let bytes = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &bytes[..bytes.len() / 3]).unwrap();

    let report = load(&dir).unwrap();
    assert_eq!(report.skipped.len(), 1);
    assert_eq!(report.skipped[0].0, "a");
    // The intact table survived.
    let res = execute(&report.db, "SELECT COUNT(*) FROM b").unwrap();
    assert_eq!(res.scalar(), Some(&mlss_db::Value::Int(1)));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Write-ahead ordering, observed at the instant of visibility: the
/// moment a result is *visible* to a client — a sync statement returned
/// its row, or `wait` published `Done` — the corresponding record must
/// already be on disk. The session fsyncs every append, so copying the
/// log files out from under the live session is exactly the disk state
/// a `SIGKILL` at that instant would leave; a record missing from the
/// copy would be a result that could vanish after being served.
#[test]
fn visible_results_are_already_durable() {
    use mlss_db::{Durability, ExecResult, Session, SessionConfig, WalSessionConfig};
    use mlss_store::{Record, Wal, WalOptions};

    let dir = std::env::temp_dir().join(format!("mlss-write-ahead-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let session = Session::new(SessionConfig {
        workers: 1,
        slice_budget: 4_096,
        seed: 5,
        durability: Durability::Wal(WalSessionConfig::new(&dir)),
        ..SessionConfig::default()
    })
    .unwrap();

    // Freeze the on-disk state while the session is live (no locks: the
    // log is append-only and fsynced, so a prefix copy is always valid).
    let snapshot_of = |tag: &str| {
        let copy = dir.with_file_name(format!("mlss-write-ahead-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&copy);
        std::fs::create_dir_all(&copy).unwrap();
        for f in ["snapshot.wal", "tail.wal"] {
            if dir.join(f).exists() {
                std::fs::copy(dir.join(f), copy.join(f)).unwrap();
            }
        }
        let (_, replay) = Wal::open(&copy, WalOptions::default()).unwrap();
        let _ = std::fs::remove_dir_all(&copy);
        replay.records
    };

    // Sync: the statement has returned its row — the row record must
    // already be durable (it is journaled *before* the insert).
    session
        .execute(
            "ESTIMATE DURABILITY OF walk(beta=6) WITHIN 50 USING srs TARGET RE 0.3 WITH (seed=11)",
        )
        .unwrap();
    assert!(
        snapshot_of("sync")
            .iter()
            .any(|r| matches!(r, Record::ResultRow(_))),
        "a returned sync row must already have its record on disk"
    );

    // Async: `wait` observed `Done` — the done record (written before
    // the scheduler publishes the status) must already be durable.
    let res = session
        .execute("ESTIMATE DURABILITY OF walk(beta=6) WITHIN 50 USING srs TARGET RE 0.3 WITH (seed=12) ASYNC")
        .unwrap();
    let ExecResult::Rows { rows, .. } = res else {
        panic!("async statement returns a query_id row")
    };
    let id = rows[0][0].as_i64().unwrap() as u64;
    session.wait(id).unwrap().unwrap();
    let records = snapshot_of("async");
    assert!(
        records
            .iter()
            .any(|r| matches!(r, Record::AsyncSubmit { .. })),
        "a waited query's submission must be durable"
    );
    assert!(
        records
            .iter()
            .any(|r| matches!(r, Record::AsyncDone { .. })),
        "a published Done must already have its record on disk"
    );
    drop(session);
    let _ = std::fs::remove_dir_all(&dir);
}
