//! Failure-injection and robustness tests: hostile models and degenerate
//! configurations must degrade gracefully, never panic or poison
//! estimates with NaN.

use mlss_core::prelude::*;
use mlss_core::smlss::{SMlssConfig, SMlssSampler};

/// A model that emits NaN scores after a while.
struct NanModel;

impl SimulationModel for NanModel {
    type State = f64;

    fn initial_state(&self) -> f64 {
        0.0
    }

    fn step(&self, s: &f64, t: Time, _rng: &mut SimRng) -> f64 {
        if t > 5 {
            f64::NAN
        } else {
            s + 0.1
        }
    }
}

/// A model that jumps to ±∞.
struct InfModel;

impl SimulationModel for InfModel {
    type State = f64;

    fn initial_state(&self) -> f64 {
        0.0
    }

    fn step(&self, _s: &f64, t: Time, _rng: &mut SimRng) -> f64 {
        if t.is_multiple_of(2) {
            f64::INFINITY
        } else {
            f64::NEG_INFINITY
        }
    }
}

#[test]
fn nan_scores_do_not_poison_estimates() {
    let model = NanModel;
    let vf = RatioValue::new(|s: &f64| *s, 10.0);
    let problem = Problem::new(&model, &vf, 20);
    let res = SrsSampler::new(RunControl::budget(10_000)).run(problem, &mut rng_from_seed(1));
    assert!(res.estimate.tau.is_finite());
    assert_eq!(res.estimate.tau, 0.0, "NaN never satisfies the query");

    let cfg = GMlssConfig::new(PartitionPlan::uniform(3), RunControl::budget(10_000));
    let res = GMlssSampler::new(cfg).run(problem, &mut rng_from_seed(2));
    assert!(res.estimate.tau.is_finite());
}

#[test]
fn infinite_scores_clamp_into_levels() {
    let model = InfModel;
    let vf = RatioValue::new(|s: &f64| *s, 5.0);
    let problem = Problem::new(&model, &vf, 10);
    let cfg = GMlssConfig::new(PartitionPlan::uniform(4), RunControl::budget(5_000));
    let res = GMlssSampler::new(cfg).run(problem, &mut rng_from_seed(3));
    // +∞ score clamps to f = 1 (target), −∞ to ε: every root hits at t=2.
    assert!((res.estimate.tau - 1.0).abs() < 1e-12);
}

#[test]
fn zero_budget_returns_empty_estimate() {
    let model = NanModel;
    let vf = RatioValue::new(|s: &f64| *s, 10.0);
    let problem = Problem::new(&model, &vf, 20);
    let res = SrsSampler::new(RunControl::budget(0)).run(problem, &mut rng_from_seed(4));
    assert_eq!(res.estimate.n_roots, 0);
    assert_eq!(res.estimate.tau, 0.0);
    assert!(res.estimate.variance.is_infinite());
}

#[test]
fn horizon_one_is_single_step_bernoulli() {
    struct Coin;
    impl SimulationModel for Coin {
        type State = f64;
        fn initial_state(&self) -> f64 {
            0.0
        }
        fn step(&self, _s: &f64, _t: Time, rng: &mut SimRng) -> f64 {
            use rand::RngExt;
            if rng.random::<f64>() < 0.3 {
                1.0
            } else {
                0.0
            }
        }
    }
    let model = Coin;
    let vf = RatioValue::new(|s: &f64| *s, 1.0);
    let problem = Problem::new(&model, &vf, 1);
    let res = SrsSampler::new(RunControl::budget(200_000)).run(problem, &mut rng_from_seed(5));
    assert!((res.estimate.tau - 0.3).abs() < 0.01);
    assert_eq!(res.estimate.steps, res.estimate.n_roots);
}

#[test]
fn smlss_survives_all_boundaries_identical_region() {
    // Degenerate-ish plan: boundaries bunched into a sliver. Must still
    // produce a valid probability without panicking.
    struct Up;
    impl SimulationModel for Up {
        type State = f64;
        fn initial_state(&self) -> f64 {
            0.0
        }
        fn step(&self, s: &f64, _t: Time, rng: &mut SimRng) -> f64 {
            use rand::RngExt;
            (s + rng.random::<f64>() * 0.1).min(1.0)
        }
    }
    let model = Up;
    let vf = RatioValue::new(|s: &f64| *s, 1.0);
    let problem = Problem::new(&model, &vf, 50);
    let plan = PartitionPlan::new(vec![0.8999, 0.9, 0.9001]).unwrap();
    let cfg = SMlssConfig::new(plan, RunControl::budget(50_000)).with_ratio(3);
    let res = SMlssSampler::new(cfg).run(problem, &mut rng_from_seed(6));
    assert!((0.0..=1.0).contains(&res.estimate.tau));
}

#[test]
fn db_recovers_from_truncated_files() {
    use mlss_db::{execute, load, save, Database};
    let dir = std::env::temp_dir().join(format!("mlss-failure-inj-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Database::new();
    execute(&db, "CREATE TABLE a (x INT)").unwrap();
    execute(&db, "CREATE TABLE b (y INT)").unwrap();
    execute(&db, "INSERT INTO a VALUES (1), (2)").unwrap();
    execute(&db, "INSERT INTO b VALUES (3)").unwrap();
    save(&db, &dir).unwrap();

    // Truncate one table file mid-way (simulated crash during write is
    // impossible thanks to temp+rename, so simulate disk corruption).
    let victim = dir.join("a.table.json");
    let bytes = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &bytes[..bytes.len() / 3]).unwrap();

    let report = load(&dir).unwrap();
    assert_eq!(report.skipped.len(), 1);
    assert_eq!(report.skipped[0].0, "a");
    // The intact table survived.
    let res = execute(&report.db, "SELECT COUNT(*) FROM b").unwrap();
    assert_eq!(res.scalar(), Some(&mlss_db::Value::Int(1)));
    let _ = std::fs::remove_dir_all(&dir);
}
