//! Adaptive batch width: the policy must never show up in result bits.
//!
//! `batch_width=auto` picks a launch width per query — a static table
//! for cheap kernels, a one-off micro-probe (memoized in the plan
//! cache) for everything else — and the budget-boundary clamp narrows
//! the final cohort so speculation never runs past the budget. None of
//! that may perturb results: the committed shard is a pure function of
//! the master RNG state and the budget, independent of width.
//!
//! Pinned here:
//! * `batch_width=auto` is bit-identical to pinning the width it
//!   resolves to, end to end through the SQL layer;
//! * `EXPLAIN` reports the resolution (`auto -> W (probe)`) and the
//!   second look is served from the plan cache's width memo
//!   (`cached-probe`) — with the same winner;
//! * a pause / detach / `with_batch_width` / resubmit cycle — a width
//!   change mid-query — stays bit-identical to one uninterrupted run;
//! * the boundary clamp launches **zero** doomed speculation when the
//!   budget is an exact multiple of the per-root cost, while a raw
//!   full-width chunk on the same budget discards a whole cohort's
//!   worth;
//! * `SHOW DIAGNOSTICS` surfaces the speculation ledger.

use durability_mlss::models::{surplus_score, CompoundPoisson, RandomWalk};
use mlss_core::estimator::run_sequential_batched;
use mlss_core::prelude::*;
use mlss_core::spec::{ExecMode, Method, QuerySpec};
use mlss_core::width::{self, AUTO_WIDTH};
use mlss_db::{Session, SessionConfig, Value};

type CppVf = RatioValue<fn(&f64) -> f64>;

fn cpp_vf(beta: f64) -> CppVf {
    RatioValue::new(surplus_score as fn(&f64) -> f64, beta)
}

fn session() -> Session {
    Session::new(SessionConfig {
        workers: 1,
        seed: 7,
        shard_store_capacity: 0,
        ..SessionConfig::default()
    })
    .unwrap()
}

fn results_rows(s: &Session) -> Vec<Vec<Value>> {
    s.db()
        .with_table("results", |t| t.scan().map(|r| r.to_vec()).collect())
        .unwrap_or_default()
}

/// Compare the estimate-bearing columns of two `results` rows
/// bit-for-bit (model, method, beta, horizon, tau, variance, steps,
/// n_roots — millis and provenance legitimately differ).
fn assert_rows_bit_identical(x: &[Value], y: &[Value], what: &str) {
    for c in 0..8 {
        match (&x[c], &y[c]) {
            (Value::Float(a), Value::Float(b)) => {
                assert_eq!(a.to_bits(), b.to_bits(), "{what}: col {c}: {a} != {b}")
            }
            (a, b) => assert_eq!(a, b, "{what}: col {c}"),
        }
    }
}

fn cpp_sql(seed: u64, batch_width: Option<usize>) -> String {
    let mut spec = QuerySpec::new("cpp", 40.0, 80, 0.3);
    spec.method = Method::Srs;
    spec.options.seed = Some(seed);
    spec.options.mode = ExecMode::Sync;
    spec.options.batch_width = batch_width;
    spec.render()
}

/// The `width` row of `EXPLAIN <sql>`, e.g. `"auto -> 128 (probe)"`.
fn explain_width_row(s: &Session, sql: &str) -> String {
    let result = s.execute(&format!("EXPLAIN {sql}")).unwrap();
    let mlss_db::ExecResult::Rows { rows, .. } = result else {
        panic!("EXPLAIN must return rows");
    };
    rows.iter()
        .find(|r| r[0] == Value::Text("width".into()))
        .map(|r| match &r[1] {
            Value::Text(t) => t.clone(),
            other => panic!("width row value: {other:?}"),
        })
        .expect("width row")
}

#[test]
fn auto_width_is_bit_identical_to_its_resolved_width() {
    // Resolve `auto` via EXPLAIN, then run the same pinned-seed
    // statement once at `auto` and once at the width it resolved to, in
    // separate cold sessions. The probe draws only from a throwaway RNG
    // keyed off the plan fingerprint — never from the query stream — so
    // the rows must agree in every estimate-bearing column.
    let auto = session();
    let sql_auto = cpp_sql(23, Some(AUTO_WIDTH));

    let first = explain_width_row(&auto, &sql_auto);
    let resolved: usize = first
        .strip_prefix("auto -> ")
        .and_then(|rest| rest.split(' ').next())
        .and_then(|w| w.parse().ok())
        .unwrap_or_else(|| panic!("width row {first:?} must read 'auto -> W (src)'"));
    assert!(
        first.ends_with("(probe)"),
        "first resolution must come from the micro-probe: {first:?}"
    );
    // Second look: the winner is memoized per plan fingerprint.
    let second = explain_width_row(&auto, &sql_auto);
    assert_eq!(
        second,
        format!("auto -> {resolved} (cached-probe)"),
        "repeat resolution must hit the width memo"
    );

    auto.execute(&sql_auto).unwrap();

    let pinned = session();
    let sql_pinned = cpp_sql(23, Some(resolved));
    assert!(
        explain_width_row(&pinned, &sql_pinned).ends_with("(requested)"),
        "an explicit width is its own provenance"
    );
    pinned.execute(&sql_pinned).unwrap();

    let a = results_rows(&auto);
    let b = results_rows(&pinned);
    assert_eq!(a.len(), 1);
    assert_eq!(b.len(), 1);
    assert_rows_bit_identical(&a[0], &b[0], "auto vs resolved");
}

#[test]
fn mid_run_width_change_preserves_bit_identity() {
    // A scheduler query paused mid-run, detached, rewidened from 16 to
    // 48 lanes, and resubmitted must land on the same bits as one
    // uninterrupted sequential run: chunk boundaries always drain the
    // frontier, so the width in force for any given chunk is invisible.
    let model = CompoundPoisson::zero_drift_default();
    let v = cpp_vf(40.0);
    let problem = Problem::new(&model, &v, 80);
    let control = RunControl::budget(120_000);
    let seed = 17u64;

    let seq = run_sequential_batched(
        &SrsEstimator,
        problem,
        control,
        &mut StreamFactory::new(seed).stream(0),
        16,
    )
    .estimate;

    let sched = Scheduler::new(SchedulerConfig {
        workers: 1,
        slice_budget: 10_000,
        max_retries: 0,
        batch_width: 16,
        tenant_weights: Vec::new(),
    });
    let id = sched.submit(
        CompoundPoisson::zero_drift_default(),
        cpp_vf(40.0),
        80,
        SrsEstimator,
        control,
        seed,
        0,
    );
    loop {
        let p = sched.progress(id).unwrap();
        if p.steps > 0 {
            break;
        }
        std::thread::yield_now();
    }
    sched.pause(id);
    loop {
        if matches!(sched.progress(id).unwrap().status, QueryStatus::Paused) {
            break;
        }
        std::thread::yield_now();
    }
    let job = sched.detach(id).expect("paused job detaches");
    let mid_steps = job.steps();
    assert!(mid_steps > 0 && mid_steps < 120_000, "checkpoint mid-run");

    // Rewiden the detached job: nonzero -> nonzero is safe at any slice
    // boundary, and a detached job sits exactly on one.
    let q = job
        .into_any()
        .downcast::<EstimatorQuery<CompoundPoisson, CppVf, SrsEstimator>>()
        .expect("detached job downcasts to its concrete query");
    let id2 = sched.submit_query(Box::new(q.with_batch_width(48)), 0);
    let est = *sched.wait(id2).unwrap().estimate().unwrap();

    assert_eq!(est.steps, seq.steps);
    assert_eq!(est.n_roots, seq.n_roots);
    assert_eq!(est.hits, seq.hits);
    assert_eq!(est.tau.to_bits(), seq.tau.to_bits());
}

#[test]
fn boundary_shrink_launches_zero_doomed_speculation() {
    // With an unreachable threshold, every random-walk root runs
    // exactly `horizon` steps, so a budget that is an exact multiple of
    // the horizon pays for a whole number of roots — and the driver's
    // first-chunk assumption (one horizon per root) is exact. The clamp
    // must then launch exactly the roots the budget pays for — zero
    // discarded speculation in the frontier ledger — while a raw
    // full-width chunk on the same budget launches a 64-lane cohort and
    // throws most of it away.
    let model = RandomWalk::new(0.3, 0.3, 0);
    type WalkVf = RatioValue<fn(&i64) -> f64>;
    fn walk_score(s: &i64) -> f64 {
        *s as f64
    }
    let v: WalkVf = RatioValue::new(walk_score as fn(&i64) -> f64, 1e15);
    let problem = Problem::new(&model, &v, 80);
    let budget = 25 * 80u64; // exactly 25 roots

    // Raw chunk at width 64: the unclamped baseline speculates.
    width::take_thread_stats();
    let mut raw = <SrsEstimator as Estimator<RandomWalk, WalkVf>>::shard(&SrsEstimator);
    SrsEstimator.run_chunk_batched(problem, &mut raw, budget, &mut rng_from_seed(7), 64);
    let unclamped = width::take_thread_stats();
    assert!(
        unclamped.discarded() > 0,
        "a raw width-64 chunk on a 25-root budget must discard speculation"
    );

    // The driver's clamp: same budget, zero discard.
    let driven = run_sequential_batched(
        &SrsEstimator,
        problem,
        RunControl::budget(budget),
        &mut rng_from_seed(7),
        64,
    );
    let clamped = width::take_thread_stats();
    assert_eq!(
        clamped.discarded(),
        0,
        "the clamp must launch zero past-budget speculation \
         (launched {} committed {})",
        clamped.launched,
        clamped.committed
    );
    assert_eq!(clamped.committed, 25, "budget pays for exactly 25 roots");

    // And clamping changed nothing about the committed result.
    assert_eq!(driven.shard.steps(), raw.steps());
    assert_eq!(driven.shard.n_roots(), raw.n_roots());
}

#[test]
fn regime_drift_triggers_a_reprobe_with_surfaced_provenance() {
    // A memoized probe winner is only as good as the cost regime it was
    // measured in. When a family's observed steps/root drifts >2x from
    // the probe's baseline, the next `auto` resolution must re-probe —
    // and say so, both in EXPLAIN provenance and the `reprobed` counter
    // of the width_policy diagnostics block.
    let s = session();
    let sql = cpp_sql(29, Some(AUTO_WIDTH));

    assert!(
        explain_width_row(&s, &sql).ends_with("(probe)"),
        "cold family: micro-probe"
    );
    // A completed run anchors the memo's steps/root baseline.
    s.execute(&sql).unwrap();
    assert!(
        explain_width_row(&s, &sql).ends_with("(cached-probe)"),
        "undrifted memo keeps serving"
    );

    // The family's fingerprint, exactly as dispatch computes it.
    let mut spec = QuerySpec::new("cpp", 40.0, 80, 0.3);
    spec.method = Method::Srs;
    spec.options.seed = Some(29);
    spec.options.mode = ExecMode::Sync;
    spec.options.batch_width = Some(AUTO_WIDTH);
    let (_, fp, _) = s.models().build_spec(s.db(), &spec).unwrap();
    let memo = s.plan_cache().width_memo(fp).expect("probe is memoized");
    let baseline = memo
        .probed_regime
        .expect("a completed run anchors the baseline");

    // Inject a >2x drift, as a completed run with a changed workload
    // shape would report it.
    let before = width::reprobe_count();
    s.plan_cache().observe_regime(fp, baseline * 8.0);

    let re = explain_width_row(&s, &sql);
    assert!(
        re.ends_with("(re-probe)"),
        "a drifted memo must re-calibrate: {re:?}"
    );
    assert!(width::reprobe_count() > before);
    // The re-probe re-anchors the baseline at the drifted regime: the
    // family is served from the memo again.
    assert!(
        explain_width_row(&s, &sql).ends_with("(cached-probe)"),
        "re-probe must re-anchor the memo"
    );

    let result = s.execute("SHOW DIAGNOSTICS").unwrap();
    let mlss_db::ExecResult::Rows { rows, .. } = result else {
        panic!("SHOW DIAGNOSTICS must return rows");
    };
    let reprobed = rows
        .iter()
        .find(|r| {
            r[0] == Value::Text("width_policy".into()) && r[1] == Value::Text("reprobed".into())
        })
        .and_then(|r| r[2].as_f64())
        .expect("width_policy surfaces the reprobed counter");
    assert!(reprobed >= 1.0, "the ledger counts the re-probe");
}

#[test]
fn diagnostics_expose_the_speculation_ledger() {
    // `SHOW DIAGNOSTICS` must surface the width policy's global
    // counters after a batched statement runs.
    let s = session();
    s.execute(&cpp_sql(31, Some(16))).unwrap();

    let result = s.execute("SHOW DIAGNOSTICS").unwrap();
    let mlss_db::ExecResult::Rows { rows, .. } = result else {
        panic!("SHOW DIAGNOSTICS must return rows");
    };
    let counter = |name: &str| -> f64 {
        rows.iter()
            .find(|r| {
                r[0] == Value::Text("width_policy".into()) && r[1] == Value::Text(name.into())
            })
            .and_then(|r| r[2].as_f64())
            .unwrap_or_else(|| panic!("width_policy {name} counter"))
    };
    assert!(counter("frontier_chunks") >= 1.0);
    let launched = counter("roots_launched");
    let committed = counter("roots_committed");
    assert!(launched >= committed && committed > 0.0);
    assert_eq!(counter("speculation_discarded"), launched - committed);
    assert!(counter("effective_width") > 0.0);
}
