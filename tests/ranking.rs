//! End-to-end `ESTIMATE … RANK BY`: the racing subsystem driven through
//! the SQL dialect, pinned for determinism across execution paths.
//!
//! The race is **one** sliceable query whose every slice advances exactly
//! one unfrozen arm by one round budget, so the arm order, the round
//! evaluation points, and the RNG consumption are identical whether the
//! loop runs inline (`SYNC`) or under the scheduler (`ASYNC`) — pinned
//! seeds must therefore give bit-identical standings on both paths, and
//! across fresh sessions.

use mlss_db::{ExecResult, Session, SessionConfig, Value};

/// Four walk arms spread over `up`; the sweep order is ascending, the
/// standings order must be descending in durability (up=0.42 first).
const RACE: &str = "ESTIMATE DURABILITY OF walk(beta=6) SWEEP up FROM 0.30 TO 0.42 STEP 0.04 \
     WITHIN 50 USING srs TARGET RE 0.5 \
     RANK BY TOP 2 (rounds=5, round_budget=4000) WITH (seed=7)";

fn rows_of(res: ExecResult) -> (Vec<String>, Vec<Vec<Value>>) {
    match res {
        ExecResult::Rows { columns, rows } => (columns, rows),
        other => panic!("expected rows, got {other:?}"),
    }
}

/// A bit-stable fingerprint of a result row (floats by `to_bits`, so two
/// rows compare equal only if every float is identical to the last bit).
fn fingerprint(rows: &[Vec<Value>]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|row| {
            row.iter()
                .map(|v| match v {
                    Value::Float(f) => format!("f{:016x}", f.to_bits()),
                    other => format!("{other:?}"),
                })
                .collect()
        })
        .collect()
}

#[test]
fn rank_by_returns_sorted_standings() {
    let session = Session::new(SessionConfig::default()).unwrap();
    let (columns, rows) = rows_of(session.execute(RACE).unwrap());
    assert_eq!(
        columns,
        [
            "rank",
            "arm",
            "tau",
            "ci_lo",
            "ci_hi",
            "frozen_round",
            "reason",
            "steps"
        ]
    );
    assert_eq!(rows.len(), 4, "one standings row per sweep arm");
    // Ranks are 1..=n and taus are non-increasing.
    let taus: Vec<f64> = rows
        .iter()
        .map(|r| match r[2] {
            Value::Float(f) => f,
            ref other => panic!("tau column should be a float, got {other:?}"),
        })
        .collect();
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row[0], Value::Int(i as i64 + 1));
        if i > 0 {
            assert!(taus[i] <= taus[i - 1], "standings must be sorted: {taus:?}");
        }
    }
    // The most durable arm is the highest up-probability.
    match &rows[0][1] {
        Value::Text(label) => assert!(label.contains("up=0.42"), "winner was {label}"),
        other => panic!("arm column should be text, got {other:?}"),
    }
    // Every freeze carries a provenance the subsystem defines.
    for row in &rows {
        match &row[6] {
            Value::Text(reason) => assert!(
                ["in", "out", "definitive", "resolved", "budget"].contains(&reason.as_str()),
                "unknown freeze reason {reason}"
            ),
            other => panic!("reason column should be text, got {other:?}"),
        }
    }
}

#[test]
fn pinned_seed_standings_are_bit_identical_across_sessions() {
    let a = rows_of(
        Session::new(SessionConfig::default())
            .unwrap()
            .execute(RACE)
            .unwrap(),
    );
    let b = rows_of(
        Session::new(SessionConfig::default())
            .unwrap()
            .execute(RACE)
            .unwrap(),
    );
    assert_eq!(fingerprint(&a.1), fingerprint(&b.1));
}

#[test]
fn sync_and_scheduled_races_agree_bit_for_bit() {
    // Sync: the inline race loop.
    let sync_rows = rows_of(
        Session::new(SessionConfig::default())
            .unwrap()
            .execute(RACE)
            .unwrap(),
    )
    .1;

    // Async: the same race as one sliceable scheduler query.
    let session = Session::new(SessionConfig::default()).unwrap();
    let (columns, rows) = rows_of(session.execute(&format!("{RACE} ASYNC")).unwrap());
    assert_eq!(columns, ["query_id"]);
    let id = match rows[0][0] {
        Value::Int(id) => id as u64,
        ref other => panic!("query_id should be an int, got {other:?}"),
    };
    session.wait(id).unwrap().expect("known id");
    let outcome = session
        .rank_standings(id)
        .unwrap()
        .expect("race finalized after wait");

    assert_eq!(outcome.standings.len(), sync_rows.len());
    for (standing, row) in outcome.standings.iter().zip(&sync_rows) {
        assert_eq!(Value::Text(standing.label.clone()), row[1]);
        let sync_tau = match row[2] {
            Value::Float(f) => f,
            ref other => panic!("tau should be a float, got {other:?}"),
        };
        assert_eq!(
            standing.estimate.tau.to_bits(),
            sync_tau.to_bits(),
            "τ̂ must be bit-identical across drivers for {}",
            standing.label
        );
        assert_eq!(
            Value::Int(standing.frozen_at.map(|r| r as i64).unwrap_or(-1)),
            row[5],
            "freeze round must match for {}",
            standing.label
        );
        assert_eq!(
            Value::Int(standing.estimate.steps as i64),
            row[7],
            "per-arm steps must match for {}",
            standing.label
        );
    }
}

#[test]
fn races_record_rankings_and_per_arm_results_rows() {
    let session = Session::new(SessionConfig::default()).unwrap();
    rows_of(session.execute(RACE).unwrap());
    let (_, rankings) = rows_of(session.execute("SELECT * FROM rankings").unwrap());
    assert_eq!(rankings.len(), 4, "one rankings row per arm");
    let (_, results) = rows_of(session.execute("SELECT * FROM results").unwrap());
    assert_eq!(results.len(), 4, "one journaling results row per arm");

    // The async path records on wait, identically.
    let (_, rows) = rows_of(session.execute(&format!("{RACE} ASYNC")).unwrap());
    let id = match rows[0][0] {
        Value::Int(id) => id as u64,
        ref other => panic!("query_id should be an int, got {other:?}"),
    };
    session.wait(id).unwrap();
    let (_, rankings) = rows_of(session.execute("SELECT * FROM rankings").unwrap());
    assert_eq!(rankings.len(), 8);
    let (_, results) = rows_of(session.execute("SELECT * FROM results").unwrap());
    assert_eq!(results.len(), 8);
}

#[test]
fn explain_rank_reports_the_racing_plan() {
    let session = Session::new(SessionConfig::default()).unwrap();
    let (columns, rows) = rows_of(session.execute(&format!("EXPLAIN {RACE}")).unwrap());
    assert_eq!(columns, ["property", "value"]);
    let get = |key: &str| -> String {
        rows.iter()
            .find(|r| r[0] == Value::Text(key.to_string()))
            .unwrap_or_else(|| panic!("missing EXPLAIN property {key}"))[1]
            .to_string()
    };
    assert_eq!(get("arms"), "4");
    assert_eq!(get("top_k"), "2");
    assert_eq!(get("rounds"), "5");
    assert_eq!(get("round_budget"), "4000");
    assert!(get("budget_worst_case").contains("4 arms x 5 rounds"));
    // Each sweep value is its own query family (the swept parameter is
    // part of the fingerprint) — four arms, four families.
    assert!(get("shared_pilots").contains("4 distinct plan families"));
    assert!(get("seed").contains('7'));
}

#[test]
fn show_diagnostics_exposes_the_ranking_ledger() {
    let session = Session::new(SessionConfig::default()).unwrap();
    rows_of(session.execute(RACE).unwrap());
    let (_, rows) = rows_of(session.execute("SHOW DIAGNOSTICS").unwrap());
    let ranking: Vec<&Vec<Value>> = rows
        .iter()
        .filter(|r| r[0] == Value::Text("ranking".to_string()))
        .collect();
    assert!(
        !ranking.is_empty(),
        "SHOW DIAGNOSTICS must carry a ranking block"
    );
    let counter = |name: &str| -> f64 {
        ranking
            .iter()
            .find(|r| r[1] == Value::Text(name.to_string()))
            .map(|r| match r[2] {
                Value::Float(f) => f,
                ref other => panic!("counter should be a float, got {other:?}"),
            })
            .unwrap_or_else(|| panic!("missing ranking counter {name}"))
    };
    // The ledger is process-wide (other tests race too): lower bounds.
    assert!(counter("races") >= 1.0);
    assert!(counter("arms") >= 4.0);
    assert!(counter("steps") > 0.0);
}
