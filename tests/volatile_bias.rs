//! Integration test for the §6.2 phenomenon: on processes with level
//! skipping, blindly applied s-MLSS under-estimates while g-MLSS remains
//! unbiased (Table 6).

use mlss_core::prelude::*;
use mlss_core::smlss::{SMlssConfig, SMlssSampler};
use mlss_models::{surplus_score, volatile_cpp, CompoundPoisson};

#[allow(clippy::type_complexity)]
fn problem_setup() -> (
    impl SimulationModel<State = f64>,
    RatioValue<fn(&f64) -> f64>,
) {
    let model = volatile_cpp(CompoundPoisson::zero_drift_default(), 500);
    fn score(s: &f64) -> f64 {
        surplus_score(s)
    }
    let vf = RatioValue::new(score as fn(&f64) -> f64, 620.0);
    (model, vf)
}

#[test]
fn smlss_is_biased_low_and_gmlss_is_not() {
    let (model, vf) = problem_setup();
    let problem = Problem::new(&model, &vf, 500);
    let plan = PartitionPlan::uniform(8);
    let budget = 120_000;
    let reps = 12;

    let mut srs_sum = 0.0;
    let mut s_sum = 0.0;
    let mut g_sum = 0.0;
    let mut skips = 0u64;
    for rep in 0..reps {
        let seed = 900 + rep;
        srs_sum += SrsSampler::new(RunControl::budget(budget))
            .run(problem, &mut rng_from_seed(seed))
            .estimate
            .tau;
        let s_cfg = SMlssConfig::new(plan.clone(), RunControl::budget(budget)).with_ratio(3);
        s_sum += SMlssSampler::new(s_cfg)
            .run(problem, &mut rng_from_seed(seed ^ 0xF0))
            .estimate
            .tau;
        let g_cfg = GMlssConfig::new(plan.clone(), RunControl::budget(budget)).with_ratio(3);
        let g = GMlssSampler::new(g_cfg).run(problem, &mut rng_from_seed(seed ^ 0x0F));
        skips += g.skip_events;
        g_sum += g.estimate.tau;
    }
    let srs = srs_sum / reps as f64;
    let smlss = s_sum / reps as f64;
    let gmlss = g_sum / reps as f64;

    assert!(skips > 0, "volatile process must exhibit level skipping");
    // s-MLSS loses the level-skipping mass: expect less than half the SRS
    // answer on this impulse-dominated query.
    assert!(
        smlss < 0.5 * srs,
        "s-MLSS should under-estimate: s-MLSS {smlss} vs SRS {srs}"
    );
    // g-MLSS stays in the same ballpark as SRS (within 50% relative).
    assert!(
        (gmlss - srs).abs() / srs < 0.5,
        "g-MLSS {gmlss} should track SRS {srs}"
    );
}

#[test]
fn gmlss_variance_shrinks_with_budget() {
    let (model, vf) = problem_setup();
    let problem = Problem::new(&model, &vf, 500);
    let plan = PartitionPlan::uniform(8);

    let run = |budget: u64| {
        let cfg = GMlssConfig::new(plan.clone(), RunControl::budget(budget)).with_ratio(3);
        GMlssSampler::new(cfg)
            .run(problem, &mut rng_from_seed(7))
            .estimate
            .variance
    };
    let v_small = run(60_000);
    let v_large = run(600_000);
    assert!(
        v_large < v_small,
        "variance should shrink with budget: {v_small} → {v_large}"
    );
}
