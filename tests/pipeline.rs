//! End-to-end pipeline tests spanning crates: DB-hosted estimation, the
//! RNN black box under MLSS, and parallel-vs-sequential consistency.

use mlss_core::prelude::*;
use mlss_db::{seed_default_models, Database, ProcRegistry, Value};
use mlss_models::synthetic_price_series;
use mlss_nn::{rnn_price_score, NetConfig, RnnStockModel};

#[test]
fn db_hosted_estimates_agree_between_methods() {
    let db = Database::new();
    seed_default_models(&db).unwrap();
    let registry = ProcRegistry::with_builtins();
    let mut rng = rng_from_seed(71);

    let run = |method: &str, rng: &mut SimRng| -> f64 {
        let args: Vec<Value> = vec![
            "cpp".into(),
            method.into(),
            50.0.into(),
            Value::Int(500),
            0.2.into(),
        ];
        registry
            .call(&db, "mlss_estimate", &args, rng)
            .unwrap()
            .as_f64()
            .unwrap()
    };
    let srs = run("srs", &mut rng);
    let mlss = run("mlss", &mut rng);
    // Both target 20% RE on a ~5% query; they must agree within ~3σ.
    assert!(
        (srs - mlss).abs() / srs < 0.8,
        "srs {srs} vs mlss {mlss} disagree"
    );
    // Both runs recorded.
    let n = db.with_table("results", |t| t.len()).unwrap();
    assert_eq!(n, 2);
}

#[test]
fn rnn_black_box_works_under_mlss() {
    let prices = synthetic_price_series(400, &mut rng_from_seed(2015));
    let cfg = NetConfig {
        hidden: 12,
        mixtures: 2,
        seq_len: 25,
        epochs: 8,
        lr: 5e-3,
        grad_clip: 5.0,
    };
    let (model, _) = RnnStockModel::train_on_prices(&prices, &cfg, &mut rng_from_seed(7));

    let beta = model.initial_price * 1.2;
    let vf = RatioValue::new(rnn_price_score, beta);
    let problem = Problem::new(&model, &vf, 120);

    let srs = SrsSampler::new(RunControl::budget(400_000)).run(problem, &mut rng_from_seed(8));
    let plan = PartitionPlan::new(vec![0.9, 0.95]).unwrap();
    let cfg = GMlssConfig::new(plan, RunControl::budget(400_000));
    let mlss = GMlssSampler::new(cfg).run(problem, &mut rng_from_seed(9));

    assert!(srs.estimate.tau > 0.0, "rally should be reachable");
    let diff = (srs.estimate.tau - mlss.estimate.tau).abs();
    let tol = 5.0 * (srs.estimate.variance + mlss.estimate.variance.max(0.0)).sqrt();
    assert!(
        diff <= tol.max(5e-3),
        "SRS {} vs MLSS {} on the RNN model",
        srs.estimate.tau,
        mlss.estimate.tau
    );
}

#[test]
fn parallel_driver_matches_sequential_on_queue() {
    use mlss_models::{queue2_score, TandemQueue};
    let model = TandemQueue::paper_default();
    let vf = RatioValue::new(queue2_score, 30.0);
    let problem = Problem::new(&model, &vf, 200);
    let plan = PartitionPlan::new(vec![0.4, 0.7]).unwrap();

    let seq_cfg = GMlssConfig::new(plan.clone(), RunControl::budget(600_000));
    let seq = GMlssSampler::new(seq_cfg).run(problem, &mut rng_from_seed(21));

    let base = GMlssConfig::new(plan, RunControl::budget(1));
    let par = run_parallel(
        problem,
        &base,
        RunControl::budget(600_000),
        &ParallelConfig {
            threads: 4,
            sync_every: 50_000,
            seed: 22,
            bootstrap_resamples: 50,
            batch_width: 0,
        },
    );

    let diff = (seq.estimate.tau - par.estimate.tau).abs();
    let tol = 5.0 * (seq.estimate.variance.max(0.0) + par.estimate.variance.max(0.0)).sqrt();
    assert!(
        diff <= tol.max(2e-3),
        "sequential {} vs parallel {}",
        seq.estimate.tau,
        par.estimate.tau
    );
}

#[test]
fn step_counter_meters_black_box_invocations() {
    use mlss_core::model::StepCounter;
    use mlss_models::{queue2_score, TandemQueue};
    let metered = StepCounter::new(TandemQueue::paper_default());
    let vf = RatioValue::new(queue2_score, 25.0);
    let problem = Problem::new(&metered, &vf, 100);
    let res = SrsSampler::new(RunControl::budget(50_000)).run(problem, &mut rng_from_seed(31));
    assert_eq!(metered.steps(), res.estimate.steps);
}
