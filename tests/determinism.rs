//! Cross-driver determinism: the same seed and plan must produce the
//! same samples — and therefore identical estimates — no matter which
//! execution path runs them.
//!
//! Three paths share one RNG stream convention (worker 0 of
//! `StreamFactory::new(seed)`):
//!
//! 1. the sequential driver `run_sequential`, handed that stream
//!    directly;
//! 2. the parallel driver `run_parallel` at 1 thread, whose single
//!    worker draws the same stream;
//! 3. the scheduler with 1 worker, whose `EstimatorQuery::from_seed`
//!    seeds the job identically.
//!
//! Chunk boundaries differ wildly between the three (one monolithic
//! chunk vs `sync_every` chunks vs scheduler slices), but the chunk
//! contract — complete every root path you start; shards merge exactly —
//! makes the boundaries invisible, so in budget mode all counters and
//! the point estimate agree **bit-for-bit**.
//!
//! Intentional divergences (documented, not bugs):
//! * **Target mode** consumes RNG in quality checks (bootstrap variance
//!   draws), and the three paths check at different cadences, so their
//!   streams separate; estimates then agree statistically, not exactly.
//! * **Multi-worker runs** split work across streams; totals depend on
//!   scheduling and agree statistically.
//! * **Bootstrap variances** (g-MLSS under skips) depend on resampling
//!   draws; only the point estimate τ̂ is exactly reproducible there.

use mlss_core::prelude::*;
use mlss_core::smlss::SMlssConfig;
use rand::RngExt;

#[derive(Clone)]
struct Walk {
    up: f64,
}

impl SimulationModel for Walk {
    type State = f64;

    fn initial_state(&self) -> f64 {
        0.0
    }

    fn step(&self, s: &f64, _t: Time, rng: &mut SimRng) -> f64 {
        (s + if rng.random::<f64>() < self.up {
            0.05
        } else {
            -0.05
        })
        .clamp(0.0, 1.0)
    }
}

type Vf = RatioValue<fn(&f64) -> f64>;

fn vf() -> Vf {
    fn score(s: &f64) -> f64 {
        *s
    }
    RatioValue::new(score as fn(&f64) -> f64, 1.0)
}

/// Run one estimator through all three drivers and demand bit-identical
/// counters and point estimate (plus variance when `exact_variance`).
fn check_cross_driver<E>(name: &str, estimator: E, seed: u64, budget: u64)
where
    E: Estimator<Walk, Vf> + Clone + Send + Sync + 'static,
    E::Shard: Send + Clone + 'static,
{
    let model = Walk { up: 0.48 };
    let v = vf();
    let problem = Problem::new(&model, &v, 70);
    let control = RunControl::budget(budget);

    // 1. Sequential driver over the canonical worker-0 stream.
    let seq = run_sequential(
        &estimator,
        problem,
        control,
        &mut StreamFactory::new(seed).stream(0),
    )
    .estimate;

    // 2. Parallel driver at 1 thread (multiple sync_every-sized chunks).
    let par = run_parallel(
        problem,
        &estimator,
        control,
        &ParallelConfig {
            threads: 1,
            sync_every: 7_000,
            seed,
            bootstrap_resamples: 50,
            batch_width: 0,
        },
    )
    .estimate;

    // 3. Scheduler with 1 worker (yet another slicing).
    let sched = Scheduler::new(SchedulerConfig {
        workers: 1,
        slice_budget: 9_000,
        max_retries: 0,
        batch_width: 0,
        tenant_weights: Vec::new(),
    });
    let id = sched.submit(model.clone(), v, 70, estimator.clone(), control, seed, 0);
    let via_sched = *sched
        .wait(id)
        .unwrap()
        .estimate()
        .expect("scheduler completes the query");

    for (path, est) in [("parallel@1", par), ("scheduler@1", via_sched)] {
        assert_eq!(est.steps, seq.steps, "{name}/{path}: steps");
        assert_eq!(est.n_roots, seq.n_roots, "{name}/{path}: roots");
        assert_eq!(est.hits, seq.hits, "{name}/{path}: hits");
        assert_eq!(
            est.tau.to_bits(),
            seq.tau.to_bits(),
            "{name}/{path}: τ̂ {} vs sequential {}",
            est.tau,
            seq.tau
        );
        assert_eq!(
            est.variance.to_bits(),
            seq.variance.to_bits(),
            "{name}/{path}: variance {} vs sequential {}",
            est.variance,
            seq.variance
        );
    }
}

#[test]
fn srs_is_deterministic_across_drivers() {
    check_cross_driver("srs", SrsEstimator, 17, 60_000);
}

#[test]
fn smlss_is_deterministic_across_drivers() {
    let cfg = SMlssConfig::new(
        PartitionPlan::new(vec![0.4, 0.7]).unwrap(),
        RunControl::budget(1), // superseded by the driver's control
    );
    check_cross_driver("smlss", cfg, 23, 60_000);
}

#[test]
fn gmlss_is_deterministic_across_drivers() {
    // No-skip model ⇒ the per-root-hit variance applies and even the
    // variance is bit-identical. (Under skips only τ̂ would be; the
    // bootstrap consumes driver-specific RNG.)
    let cfg = GMlssConfig::new(
        PartitionPlan::new(vec![0.4, 0.7]).unwrap(),
        RunControl::budget(1),
    );
    check_cross_driver("gmlss", cfg, 29, 60_000);
}

/// Target mode is the documented divergence: quality checks consume RNG
/// at driver-specific cadences, so the paths agree statistically (same
/// quality target) but not bit-for-bit.
#[test]
fn target_mode_diverges_statistically_only() {
    let model = Walk { up: 0.48 };
    let v = vf();
    let problem = Problem::new(&model, &v, 70);
    let control = RunControl::Target {
        target: QualityTarget::RelativeError {
            target: 0.15,
            reference: None,
        },
        check_every: 256,
        max_steps: 50_000_000,
    };
    let seed = 31u64;

    let seq = run_sequential(
        &SrsEstimator,
        problem,
        control,
        &mut StreamFactory::new(seed).stream(0),
    )
    .estimate;

    let sched = Scheduler::new(SchedulerConfig {
        workers: 1,
        slice_budget: 9_000,
        max_retries: 0,
        batch_width: 0,
        tenant_weights: Vec::new(),
    });
    let id = sched.submit(model.clone(), v, 70, SrsEstimator, control, seed, 0);
    let via_sched = *sched.wait(id).unwrap().estimate().unwrap();

    // Both reach the target…
    assert!(seq.self_relative_error() <= 0.15);
    assert!(via_sched.self_relative_error() <= 0.15);
    // …and agree within the combined statistical tolerance.
    let diff = (seq.tau - via_sched.tau).abs();
    let tol = 5.0 * (seq.variance.max(0.0) + via_sched.variance.max(0.0)).sqrt();
    assert!(
        diff <= tol.max(1e-3),
        "target mode: sequential {} vs scheduler {}",
        seq.tau,
        via_sched.tau
    );
}
