//! Integration tests for the §5 level-design machinery on real models:
//! the greedy strategy must find plans that beat SRS on rare queries, and
//! its answers must remain unbiased.

use mlss_core::partition::{balanced_plan, evaluate_plan, GreedyConfig, GreedyPartition};
use mlss_core::prelude::*;
use mlss_models::{queue2_score, TandemQueue};

#[allow(clippy::type_complexity)]
fn tiny_queue_problem() -> (TandemQueue, RatioValue<fn(&mlss_models::QueueState) -> f64>) {
    fn score(s: &mlss_models::QueueState) -> f64 {
        queue2_score(s)
    }
    (
        TandemQueue::paper_default(),
        RatioValue::new(score as fn(&mlss_models::QueueState) -> f64, 45.0),
    )
}

#[test]
fn greedy_beats_trivial_plan_on_rare_queue_query() {
    let (model, vf) = tiny_queue_problem();
    let problem = Problem::new(&model, &vf, 500);

    let driver = GreedyPartition::new(GreedyConfig {
        ratio: 3,
        trial_budget: 80_000,
        candidates_per_round: 4,
        max_rounds: 6,
    });
    let mut rng = rng_from_seed(31);
    let outcome = driver.search(problem, &mut rng);
    assert!(
        outcome.plan.num_levels() >= 2,
        "rare query warrants at least one boundary, got {}",
        outcome.plan
    );

    // The chosen plan's surrogate cost must beat the trivial plan's.
    let trivial = evaluate_plan(
        problem,
        &PartitionPlan::trivial(),
        3,
        160_000,
        &mut rng_from_seed(32),
    );
    assert!(
        outcome.eval < trivial.eval,
        "greedy eval {} should beat trivial {}",
        outcome.eval,
        trivial.eval
    );
}

#[test]
fn greedy_plan_produces_consistent_estimates() {
    let (model, vf) = tiny_queue_problem();
    let problem = Problem::new(&model, &vf, 500);

    let driver = GreedyPartition::new(GreedyConfig {
        ratio: 3,
        trial_budget: 60_000,
        candidates_per_round: 3,
        max_rounds: 4,
    });
    let outcome = driver.search(problem, &mut rng_from_seed(41));

    // Run the found plan and a balanced plan; both unbiased, so they must
    // agree within combined uncertainty.
    let cfg_g = GMlssConfig::new(outcome.plan, RunControl::budget(2_000_000)).with_ratio(3);
    let res_g = GMlssSampler::new(cfg_g).run(problem, &mut rng_from_seed(42));

    let (bal, _) = balanced_plan(problem, 5, 3000, &mut rng_from_seed(43));
    let cfg_b = GMlssConfig::new(bal, RunControl::budget(2_000_000)).with_ratio(3);
    let res_b = GMlssSampler::new(cfg_b).run(problem, &mut rng_from_seed(44));

    let diff = (res_g.estimate.tau - res_b.estimate.tau).abs();
    let tol = 5.0 * (res_g.estimate.variance.max(0.0) + res_b.estimate.variance.max(0.0)).sqrt();
    assert!(
        diff <= tol.max(2e-3),
        "greedy-plan estimate {} vs balanced-plan estimate {}",
        res_g.estimate.tau,
        res_b.estimate.tau
    );
}

#[test]
fn balanced_plan_levels_monotone() {
    let (model, vf) = tiny_queue_problem();
    let problem = Problem::new(&model, &vf, 500);
    let (plan, _) = balanced_plan(problem, 6, 4000, &mut rng_from_seed(51));
    let b = plan.interior();
    assert_eq!(plan.num_levels(), 6);
    assert!(b.windows(2).all(|w| w[0] < w[1]));
    assert!(b.iter().all(|&v| v > 0.0 && v < 1.0));
}
