//! Cross-query shard reuse: the correctness invariant behind the
//! planner.
//!
//! A **warm-started** query — one that resumes a stored checkpoint and
//! simulates only the marginal roots to a tighter target — must be
//! **bit-identical** to a single cold query run straight to that tighter
//! target with the same seed. The stored checkpoint is the shard plus
//! the RNG position at its last chunk boundary; since chunk boundaries
//! are invisible (shards merge exactly; every chunk drains its
//! frontier), the continuation replays the exact stream the longer cold
//! run would have used — including the target-mode quality-check draws,
//! which happen at the same shard states in both runs.
//!
//! Pinned here:
//! * warm ≡ cold-at-tighter-target for all four estimators (SRS,
//!   s-MLSS, g-MLSS, IS): estimate bits, counters, and the master RNG's
//!   final position;
//! * the same invariant end-to-end through the SQL layer: `results`
//!   rows of a tighten-after-loose session match a cold session
//!   bit-for-bit in every estimate-bearing column;
//! * LRU eviction under capacity pressure forces later queries cold
//!   (and shows up in `SHOW DIAGNOSTICS`);
//! * fingerprint isolation: a parameter change never reuses another
//!   model's shards;
//! * store-on ≡ store-off for every pinned statement: a looser-target
//!   pinned repeat and a pinned parallel re-run both ignore the store
//!   and match a storeless session bit-for-bit;
//! * `EXPLAIN` previews the reuse verdict without counted lookups (no
//!   hit/miss counter or LRU perturbation).

use durability_mlss::models::{surplus_score, CompoundPoisson};
use mlss_core::estimator::{run_sequential_batched, run_sequential_batched_from};
use mlss_core::is::IsEstimator;
use mlss_core::planner::{plan_reuse, ReusePlan};
use mlss_core::prelude::*;
use mlss_core::shard_store::{shard_key, ShardStore, StoredShard};
use mlss_core::smlss::SMlssConfig;
use mlss_core::spec::{ExecMode, Method, QuerySpec};
use mlss_db::{Session, SessionConfig, Value};
use rand::RngExt;

type CppVf = RatioValue<fn(&f64) -> f64>;

fn cpp_vf(beta: f64) -> CppVf {
    RatioValue::new(surplus_score as fn(&f64) -> f64, beta)
}

fn target(re: f64) -> RunControl {
    RunControl::Target {
        target: QualityTarget::RelativeError {
            target: re,
            reference: None,
        },
        // The serving layer's cadence (spec::TARGET_CHECK_EVERY).
        check_every: 256,
        max_steps: 50_000_000,
    }
}

/// Run loose → deposit → plan → warm-continue to a tighter target, and
/// demand the result is bit-identical to one cold run straight to that
/// target. The tighter target is set to half the loose run's *achieved*
/// RE (quality checks overshoot their target by a cadence-dependent
/// amount, so a fixed pair of targets could land on `stored`).
fn check_warm_equals_cold<M, V, E>(
    name: &str,
    estimator: &E,
    problem: Problem<'_, M, V>,
    loose: f64,
    seed: u64,
) where
    M: SimulationModel,
    V: ValueFunction<M::State>,
    E: Estimator<M, V>,
    E::Shard: Send + Clone + 'static,
{
    let width = 8;

    // The loose run, deposited as a bit-exact checkpoint.
    let mut rng = StreamFactory::new(seed).stream(0);
    let first = run_sequential_batched(estimator, problem, target(loose), &mut rng, width);
    let tight = first.estimate.self_relative_error() * 0.5;
    assert!(tight.is_finite() && tight > 0.0, "{name}: costable RE");

    // The reference: one uninterrupted run to the tight target.
    let mut cold_rng = StreamFactory::new(seed).stream(0);
    let cold = run_sequential_batched(estimator, problem, target(tight), &mut cold_rng, width);
    assert!(cold.estimate.self_relative_error() <= tight, "{name}: cold");

    let store = ShardStore::new(4);
    let key = shard_key(0xfeed, name, None);
    store.deposit(
        key.clone(),
        StoredShard::new(
            &first.shard,
            first.resume_rng.clone(),
            first.estimate,
            Some(seed),
            loose,
            true,
        ),
    );

    // The planner must choose warm (the stored RE misses the tighter
    // target) with a positive marginal-root estimate.
    let plan = plan_reuse(&store, &key, tight, Some(seed), true);
    let ReusePlan::Warm {
        entry,
        stored_re,
        est_marginal_roots,
    } = plan
    else {
        panic!(
            "{name}: expected warm (stored_re {} vs target {tight})",
            first.estimate.self_relative_error()
        );
    };
    assert!(stored_re > tight, "{name}: warm only when target unmet");
    assert!(est_marginal_roots > 0, "{name}: marginal cost is positive");
    assert!(
        entry.n_roots() < cold.estimate.n_roots,
        "{name}: checkpoint must be a strict prefix of the cold run"
    );

    // Continue from the checkpoint: shard + RNG position.
    let shard = entry
        .shard_as::<E::Shard>()
        .expect("method-keyed entry downcasts")
        .clone();
    let mut warm_rng = entry.rng.clone();
    let warm = run_sequential_batched_from(
        estimator,
        problem,
        target(tight),
        &mut warm_rng,
        shard,
        width,
    );

    assert_eq!(warm.estimate.steps, cold.estimate.steps, "{name}: steps");
    assert_eq!(
        warm.estimate.n_roots, cold.estimate.n_roots,
        "{name}: roots"
    );
    assert_eq!(warm.estimate.hits, cold.estimate.hits, "{name}: hits");
    assert_eq!(
        warm.estimate.tau.to_bits(),
        cold.estimate.tau.to_bits(),
        "{name}: τ̂ {} vs {}",
        warm.estimate.tau,
        cold.estimate.tau
    );
    assert_eq!(
        warm.estimate.variance.to_bits(),
        cold.estimate.variance.to_bits(),
        "{name}: variance"
    );
    assert_eq!(
        Ledger::steps(&warm.shard),
        Ledger::steps(&cold.shard),
        "{name}: shard steps"
    );
    assert_eq!(
        Ledger::n_roots(&warm.shard),
        Ledger::n_roots(&cold.shard),
        "{name}: shard roots"
    );
    // Both streams ended at the same position — the continuation really
    // replayed the cold run's tail, not a statistically-similar one.
    assert_eq!(
        warm_rng.random::<u64>(),
        cold_rng.random::<u64>(),
        "{name}: final RNG position"
    );
}

#[test]
fn srs_warm_start_is_bit_identical_to_cold_at_tighter_target() {
    let model = CompoundPoisson::zero_drift_default();
    let v = cpp_vf(40.0);
    check_warm_equals_cold("srs", &SrsEstimator, Problem::new(&model, &v, 80), 0.2, 41);
}

#[test]
fn smlss_warm_start_is_bit_identical_to_cold_at_tighter_target() {
    let model = CompoundPoisson::zero_drift_default();
    let v = cpp_vf(40.0);
    let cfg = SMlssConfig::new(
        PartitionPlan::new(vec![0.4, 0.7]).unwrap(),
        RunControl::budget(1),
    );
    check_warm_equals_cold("smlss", &cfg, Problem::new(&model, &v, 80), 0.2, 43);
}

#[test]
fn gmlss_warm_start_is_bit_identical_to_cold_at_tighter_target() {
    // g-MLSS consumes RNG in its bootstrap-bearing quality checks; the
    // continuation must replay those draws too.
    let model = CompoundPoisson::zero_drift_default();
    let v = cpp_vf(40.0);
    let cfg = GMlssConfig::new(
        PartitionPlan::new(vec![0.4, 0.5]).unwrap(),
        RunControl::budget(1),
    );
    check_warm_equals_cold("gmlss", &cfg, Problem::new(&model, &v, 80), 0.2, 47);
}

#[test]
fn is_warm_start_is_bit_identical_to_cold_at_tighter_target() {
    let model = CompoundPoisson::zero_drift_default();
    let v = cpp_vf(40.0);
    check_warm_equals_cold(
        "is",
        &IsEstimator::new(0.3),
        Problem::new(&model, &v, 80),
        0.2,
        53,
    );
}

// ---------------------------------------------------------------------
// End-to-end through the SQL layer.
// ---------------------------------------------------------------------

fn session(capacity: usize) -> Session {
    Session::new(SessionConfig {
        workers: 1,
        seed: 7,
        shard_store_capacity: capacity,
        ..SessionConfig::default()
    })
    .unwrap()
}

fn results_rows(s: &Session) -> Vec<Vec<Value>> {
    s.db()
        .with_table("results", |t| t.scan().map(|r| r.to_vec()).collect())
        .unwrap_or_default()
}

fn estimate_sql(model: &str, method: Method, re: f64, seed: u64) -> String {
    let mut spec = QuerySpec::new(model, 3.0, 40, re);
    spec.method = method;
    if method.needs_plan() {
        spec.levels = 3;
    }
    spec.options.seed = Some(seed);
    spec.options.mode = ExecMode::Sync;
    spec.render()
}

fn estimate_sql_threads(model: &str, method: Method, re: f64, seed: u64, threads: usize) -> String {
    let mut spec = QuerySpec::new(model, 3.0, 40, re);
    spec.method = method;
    spec.options.seed = Some(seed);
    spec.options.mode = ExecMode::Sync;
    spec.options.threads = threads;
    spec.render()
}

/// Provenance column of the last `results` row.
fn last_reuse(s: &Session) -> String {
    let rows = results_rows(s);
    match rows.last().and_then(|r| r.get(10)) {
        Some(Value::Text(t)) => t.clone(),
        other => panic!("shard_reuse column: {other:?}"),
    }
}

/// Compare the estimate-bearing columns of two `results` rows
/// bit-for-bit: model, method, beta, horizon, tau, variance, steps,
/// n_roots (millis, plan_cache, shard_reuse legitimately differ).
fn assert_rows_bit_identical(x: &[Value], y: &[Value], what: &str) {
    for c in 0..8 {
        match (&x[c], &y[c]) {
            (Value::Float(a), Value::Float(b)) => {
                assert_eq!(a.to_bits(), b.to_bits(), "{what}: col {c}: {a} != {b}")
            }
            (a, b) => assert_eq!(a, b, "{what}: col {c}"),
        }
    }
}

/// One shard-store counter out of `SHOW DIAGNOSTICS`.
fn shard_store_counter(s: &Session, name: &str) -> f64 {
    let result = s.execute("SHOW DIAGNOSTICS").unwrap();
    let mlss_db::ExecResult::Rows { rows, .. } = result else {
        panic!("SHOW DIAGNOSTICS must return rows");
    };
    rows.iter()
        .find(|r| r[0] == Value::Text("shard_store".into()) && r[1] == Value::Text(name.into()))
        .and_then(|r| r[2].as_f64())
        .unwrap_or_else(|| panic!("{name} counter"))
}

#[test]
fn tightening_session_rows_match_a_cold_session_bit_for_bit() {
    // Session A: loose then tight (the tight query warm-starts the loose
    // checkpoint). Session B: tight only, cold. The tight rows must
    // agree bit-for-bit in every estimate-bearing column — the SQL-level
    // restatement of the warm ≡ cold invariant.
    let seed = 4242u64;
    for method in [Method::Srs, Method::SMlss, Method::GMlss] {
        let a = session(16);
        a.execute(&estimate_sql("ar", method, 0.5, seed)).unwrap();
        // Tighten to half the achieved RE (σ/τ̂ of the recorded row):
        // quality checks overshoot their target, so a fixed tighter
        // target could already be met and plan `stored` instead.
        let loose_row = results_rows(&a).pop().unwrap();
        let (tau, var) = match (&loose_row[4], &loose_row[5]) {
            (Value::Float(t), Value::Float(v)) => (*t, *v),
            other => panic!("tau/variance columns: {other:?}"),
        };
        let tight = var.max(0.0).sqrt() / tau * 0.5;
        a.execute(&estimate_sql("ar", method, tight, seed)).unwrap();
        assert_eq!(last_reuse(&a), "warm", "{method:?}: tighten warm-starts");

        let b = session(16);
        b.execute(&estimate_sql("ar", method, tight, seed)).unwrap();
        assert_eq!(last_reuse(&b), "cold", "{method:?}: fresh store is cold");

        let warm_row = results_rows(&a).pop().unwrap();
        let cold_row = results_rows(&b).pop().unwrap();
        assert_rows_bit_identical(&warm_row, &cold_row, &format!("{method:?}"));
    }
}

#[test]
fn pinned_looser_repeat_ignores_the_store() {
    // Session A runs tight then loose under one pinned seed. The loose
    // statement must NOT be answered from the tight run's checkpoint,
    // even though the stored RE meets its target: a storeless session's
    // loose run stops at an earlier quality check (fewer roots), and
    // pinned bits must not depend on store presence. Session B is that
    // storeless reference.
    let seed = 777u64;
    let a = session(16);
    a.execute(&estimate_sql("ar", Method::Srs, 0.2, seed))
        .unwrap();
    a.execute(&estimate_sql("ar", Method::Srs, 0.5, seed))
        .unwrap();
    assert_eq!(last_reuse(&a), "cold", "looser pinned repeat runs cold");

    let b = session(16);
    b.execute(&estimate_sql("ar", Method::Srs, 0.5, seed))
        .unwrap();

    assert_rows_bit_identical(
        &results_rows(&a).pop().unwrap(),
        &results_rows(&b).pop().unwrap(),
        "pinned looser repeat",
    );
}

#[test]
fn pinned_parallel_run_ignores_the_store() {
    // A sequential run deposits a bit-exact checkpoint; re-running the
    // same pinned statement on the parallel driver must not consume it
    // (neither served nor warm-started) — the merged result would
    // include a shard a storeless parallel session never held. The
    // parallel driver's chunk scheduling is not run-to-run
    // deterministic, so the observable here is provenance plus store
    // traffic, not result bits: the pinned parallel statement plans
    // cold without so much as a counted lookup.
    let seed = 888u64;
    let a = session(16);
    a.execute(&estimate_sql("ar", Method::Srs, 0.3, seed))
        .unwrap();
    let hits = shard_store_counter(&a, "shard_store_hits");
    let misses = shard_store_counter(&a, "shard_store_misses");
    a.execute(&estimate_sql_threads("ar", Method::Srs, 0.3, seed, 4))
        .unwrap();
    assert_eq!(last_reuse(&a), "cold", "pinned parallel never reuses");
    assert_eq!(
        shard_store_counter(&a, "shard_store_hits"),
        hits,
        "the store was never consulted"
    );
    assert_eq!(shard_store_counter(&a, "shard_store_misses"), misses);

    // An *unpinned* parallel run of the same statement pools the stored
    // sample freely — replayability only gates pinned seeds.
    let mut spec = QuerySpec::new("ar", 3.0, 40, 0.3);
    spec.method = Method::Srs;
    spec.options.mode = ExecMode::Sync;
    spec.options.threads = 4;
    a.execute(&spec.render()).unwrap();
    assert_ne!(last_reuse(&a), "cold", "unpinned parallel reuses");
}

#[test]
fn explain_previews_reuse_without_perturbing_the_store() {
    // EXPLAIN must preview the planner's verdict without counted
    // lookups: hit/miss counters and the LRU order belong to executed
    // statements only.
    let s = session(16);
    let sql = estimate_sql("ar", Method::Srs, 0.4, 31);
    s.execute(&sql).unwrap();
    let hits = shard_store_counter(&s, "shard_store_hits");
    let misses = shard_store_counter(&s, "shard_store_misses");

    for _ in 0..2 {
        let result = s.execute(&format!("EXPLAIN {sql}")).unwrap();
        let mlss_db::ExecResult::Rows { rows, .. } = result else {
            panic!("EXPLAIN must return rows");
        };
        let reuse = rows
            .iter()
            .find(|r| r[0] == Value::Text("reuse".into()))
            .map(|r| r[1].clone())
            .expect("reuse row");
        assert_eq!(reuse, Value::Text("stored".into()), "verdict previewed");
    }
    assert_eq!(shard_store_counter(&s, "shard_store_hits"), hits);
    assert_eq!(shard_store_counter(&s, "shard_store_misses"), misses);

    // The preview matches what execution then does.
    s.execute(&sql).unwrap();
    assert_eq!(last_reuse(&s), "stored");
}

#[test]
fn repeated_statement_is_served_from_the_store() {
    let s = session(16);
    let sql = estimate_sql("ar", Method::GMlss, 0.4, 99);
    s.execute(&sql).unwrap();
    assert_eq!(last_reuse(&s), "cold");
    s.execute(&sql).unwrap();
    assert_eq!(last_reuse(&s), "stored");
    // Stored serves are free: the two rows carry the identical estimate.
    let rows = results_rows(&s);
    let (a, b) = (&rows[rows.len() - 2], &rows[rows.len() - 1]);
    for c in [4usize, 5, 6, 7] {
        match (&a[c], &b[c]) {
            (Value::Float(x), Value::Float(y)) => assert_eq!(x.to_bits(), y.to_bits(), "col {c}"),
            (x, y) => assert_eq!(x, y, "col {c}"),
        }
    }
}

#[test]
fn capacity_pressure_evicts_and_forces_cold() {
    // Capacity 1: the walk deposit evicts the ar checkpoint, so
    // repeating the ar statement runs cold again — and the eviction is
    // visible through SHOW DIAGNOSTICS.
    let s = session(1);
    let ar = estimate_sql("ar", Method::Srs, 0.4, 11);
    let walk = estimate_sql("walk", Method::Srs, 0.4, 12);
    s.execute(&ar).unwrap();
    s.execute(&walk).unwrap();
    s.execute(&ar).unwrap();
    assert_eq!(last_reuse(&s), "cold", "evicted checkpoint cannot serve");

    let result = s.execute("SHOW DIAGNOSTICS").unwrap();
    let mlss_db::ExecResult::Rows { columns, rows } = result else {
        panic!("SHOW DIAGNOSTICS must return rows");
    };
    assert_eq!(columns, ["component", "counter", "value"]);
    let evictions = rows
        .iter()
        .find(|r| {
            r[0] == Value::Text("shard_store".into())
                && r[1] == Value::Text("shard_store_evictions".into())
        })
        .and_then(|r| r[2].as_f64())
        .expect("shard_store_evictions counter");
    assert!(evictions >= 1.0, "eviction shows in diagnostics");
}

#[test]
fn fingerprint_mismatch_never_reuses_another_models_shards() {
    // A β change alters the model fingerprint: the second statement must
    // run cold even though model name, method, and target all match.
    let s = session(16);
    let mut spec = QuerySpec::new("ar", 3.0, 40, 0.4);
    spec.options.seed = Some(21);
    s.execute(&spec.render()).unwrap();
    assert_eq!(last_reuse(&s), "cold");

    let mut shifted = QuerySpec::new("ar", 3.5, 40, 0.4);
    shifted.options.seed = Some(21);
    s.execute(&shifted.render()).unwrap();
    assert_eq!(last_reuse(&s), "cold", "different β never reuses");

    // Each fingerprint still serves its own repeats.
    s.execute(&shifted.render()).unwrap();
    assert_eq!(last_reuse(&s), "stored");
}
