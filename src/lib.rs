//! # durability-mlss
//!
//! Umbrella crate for the *Efficiently Answering Durability Prediction
//! Queries* (SIGMOD 2021) reproduction. Re-exports the workspace crates:
//!
//! * [`core`](mlss_core) — MLSS samplers, estimators, and level-design
//!   optimization;
//! * [`models`](mlss_models) — stochastic process substrates (tandem
//!   queues, compound-Poisson, AR, Markov chains, random walks, GBM, and
//!   volatile variants);
//! * [`nn`](mlss_nn) — the from-scratch LSTM-MDN black-box simulator;
//! * [`analytic`](mlss_analytic) — exact first-hitting-time ground truth;
//! * [`db`](mlss_db) — the embedded mini-DBMS hosting the whole pipeline.
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `DESIGN.md` / `EXPERIMENTS.md` for the reproduction map.

pub use mlss_analytic as analytic;
pub use mlss_core as core;
pub use mlss_db as db;
pub use mlss_models as models;
pub use mlss_nn as nn;

pub use mlss_core::prelude;
